//! No-op `#[derive(Serialize, Deserialize)]` implementations.
//!
//! The workspace derives the serde traits on most public types as forward
//! API surface, but never serialises anything (no `serde_json` or other
//! format crate is in the dependency graph). These derives therefore only
//! need to accept the syntax; they expand to nothing, and the marker
//! traits in the vendored `serde` crate are blanket-implemented.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

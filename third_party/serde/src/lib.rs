//! A minimal offline stand-in for the `serde` facade.
//!
//! The workspace only ever writes `use serde::{Deserialize, Serialize}`
//! plus `#[derive(Serialize, Deserialize)]`; no serialisation format crate
//! exists in the graph, so nothing is ever actually serialised. The
//! derives (re-exported from the vendored `serde_derive`) expand to
//! nothing, and the traits here are empty markers with blanket
//! implementations so bounds like `T: Serialize` would still be met.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::ser::Serialize`.
pub trait SerializeMarker {}
impl<T: ?Sized> SerializeMarker for T {}

/// Marker stand-in for `serde::de::Deserialize`.
pub trait DeserializeMarker {}
impl<T: ?Sized> DeserializeMarker for T {}

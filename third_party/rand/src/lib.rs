//! A minimal, self-contained subset of the `rand` crate API, vendored so
//! the workspace builds without network access to a crates registry.
//!
//! Only the surface this workspace uses is provided:
//!
//! * [`Rng`] — the core trait (raw word generation), used as a generic
//!   bound (`R: Rng + ?Sized`);
//! * [`RngExt`] — the extension trait with the high-level sampling
//!   methods `random_range` and `random_bool`, blanket-implemented for
//!   every [`Rng`];
//! * [`SeedableRng`] — `seed_from_u64` construction;
//! * [`rngs::SmallRng`] — a small, fast, deterministic generator
//!   (xoshiro256++ seeded via SplitMix64).
//!
//! Determinism note: every seeded stream is stable across runs and
//! platforms. The exact values differ from the upstream `rand` crate —
//! which is fine here, because every consumer in this workspace treats
//! seeded streams as opaque reproducible noise.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// Core random generator trait: produces raw 64-bit words.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` without modulo bias (Lemire's method with
/// rejection).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let (hi, lo) = widening_mul(x, bound);
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is a valid sample.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )+};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The generator's full internal state, for checkpointing. A
        /// generator rebuilt with [`SmallRng::from_state`] continues the
        /// exact same stream.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restores a generator from a state captured by
        /// [`SmallRng::state`].
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is not reachable from any
        /// seed and would make xoshiro256++ emit zeros forever.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "the all-zero state is not a valid xoshiro256++ state");
            Self { s }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = rng.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn all_values_of_small_ranges_are_hit() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            let _ = rng.next_u64();
        }
        let mut resumed = SmallRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn zero_state_rejected() {
        let _ = SmallRng::from_state([0; 4]);
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..10)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(sample(&mut rng) < 10);
    }
}

//! A minimal, offline stand-in for the `criterion` benchmarking crate.
//!
//! This subset keeps the structural API the workspace's benches use
//! (`Criterion`, `benchmark_group`, `Bencher::iter` /
//! `iter_batched_ref`, `criterion_group!` / `criterion_main!`) and
//! reports wall-clock per-iteration times measured with
//! `std::time::Instant`. There are no statistics, plots, or baselines —
//! each benchmark is calibrated to a target measurement time and its
//! mean iteration time is printed.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How setup output is passed between batches in `iter_batched*`.
/// Only a hint in real criterion; ignored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    /// Iterations to run in the measured phase.
    iters: u64,
    /// Total measured time, accumulated by the `iter*` methods.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` value per iteration; only the
    /// routine (given `&mut` access to the value) is measured.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            total += start.elapsed();
            drop(input);
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched_ref`] but passing the value by move.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark harness state.
pub struct Criterion {
    measurement_time: Duration,
    /// Nominal sample count; scales the measurement budget slightly so
    /// `sample_size(10)` runs shorter than the default 100.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(500),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the nominal sample count (scales the measurement budget).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.into(), self.budget(), f);
        self
    }

    /// Opens a named group; benchmark ids are prefixed `group/label`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Prints the closing line (upstream prints a summary; here it only
    /// marks the end of the run).
    pub fn final_summary(&mut self) {
        println!("\nbenchmarks complete");
    }

    fn budget(&self) -> Duration {
        // Scale the budget with sample_size relative to the default 100,
        // clamped so tiny groups still measure something meaningful.
        let scaled = self.measurement_time.as_secs_f64() * (self.sample_size as f64 / 100.0);
        Duration::from_secs_f64(scaled.max(0.05))
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the target measurement time for this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let mut budget = self.criterion.budget();
        if let Some(n) = self.sample_size {
            let scaled = self.criterion.measurement_time.as_secs_f64() * (n as f64 / 100.0);
            budget = Duration::from_secs_f64(scaled.max(0.05));
        }
        run_benchmark(&full, budget, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Calibrates an iteration count to roughly fill `budget`, measures, and
/// prints the mean per-iteration time.
fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, budget: Duration, mut f: F) {
    // Warm-up / calibration pass: single iteration to estimate cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));

    let iters = (budget.as_secs_f64() / per_iter.as_secs_f64())
        .clamp(1.0, 1_000_000.0) as u64;
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);

    let mean = bencher.elapsed.as_secs_f64() / iters as f64;
    println!("{id:<50} {:>14}  ({iters} iters)", format_time(mean));
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} \u{00b5}s/iter", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms/iter", secs * 1e3)
    } else {
        format!("{secs:.3} s/iter")
    }
}

/// Re-export for benches written against older criterion idiom
/// (`criterion::black_box`); prefer `std::hint::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and possibly filters); this
            // subset runs everything and ignores the arguments.
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_prefix_and_batch() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut sum = 0u64;
        group.bench_function("inner", |b| {
            b.iter_batched_ref(|| vec![1u64, 2, 3], |v| sum += v.iter().sum::<u64>(), BatchSize::SmallInput);
        });
        group.finish();
        assert!(sum > 0);
    }
}

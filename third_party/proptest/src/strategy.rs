//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type
/// (the expansion of `prop_oneof!`).
#[derive(Debug)]
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds the choice; `arms` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // Closed-interval sampling: scale a 53-bit integer drawn from an
        // inclusive range onto [start, end].
        let steps = (1u64 << 53) + 1;
        let t = rng.below(steps) as f64 * (1.0 / (1u64 << 53) as f64);
        start + t * (end - start)
    }
}

impl Strategy for RangeInclusive<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let steps = (1u64 << 53) + 1;
        let t = (rng.below(steps) as f64 * (1.0 / (1u64 << 53) as f64)) as f32;
        start + t * (end - start)
    }
}

/// `"[class]{m,n}"` string patterns (and literal fallback).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategies!(A);
tuple_strategies!(A B);
tuple_strategies!(A B C);
tuple_strategies!(A B C D);
tuple_strategies!(A B C D E);
tuple_strategies!(A B C D E F);
tuple_strategies!(A B C D E F G);
tuple_strategies!(A B C D E F G H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0..n)).prop_map(|(n, i)| (n, i));
        for _ in 0..200 {
            let (n, i) = s.generate(&mut rng);
            assert!(i < n && n < 5);
        }
    }

    #[test]
    fn one_of_hits_every_arm() {
        let s = OneOf::new(vec![Just(0u8).boxed(), Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::for_case("arms", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn inclusive_ranges_hit_both_ends() {
        let mut rng = TestRng::for_case("ends", 0);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..500 {
            match (3u8..=5).generate(&mut rng) {
                3 => lo = true,
                5 => hi = true,
                4 => {}
                other => panic!("{other} out of range"),
            }
        }
        assert!(lo && hi);
    }
}

//! A minimal, deterministic subset of the `proptest` API, vendored so the
//! workspace's property tests run without network access to a registry.
//!
//! Differences from upstream proptest, by design:
//!
//! * generation is purely random (seeded deterministically per test name
//!   and case index) — there is no shrinking;
//! * failures report the case index and the failed assertion so a run can
//!   be reproduced by re-running the test (the stream is stable);
//! * only the strategy combinators this workspace uses are provided:
//!   integer/float ranges, [`strategy::Just`], [`arbitrary::any`], tuples,
//!   `prop_map`, `prop_flat_map`, `boxed`, [`collection::vec`], simple
//!   `"[class]{m,n}"` string patterns, and the `prop_oneof!` /
//!   `proptest!` / `prop_assert!` family of macros.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The single-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Module-style access (`prop::collection::vec(...)`).
    pub use crate as prop;
}

/// Builds a strategy choosing uniformly between the given strategies
/// (all of the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$($strategy),+]
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case fails with the stringified condition (or a formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l
            ));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        ::core::stringify!($name),
                        __case,
                    );
                    let __outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| {
                            $(
                                let $pat = $crate::strategy::Strategy::generate(
                                    &($strat),
                                    &mut __rng,
                                );
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__msg) = __outcome {
                        ::core::panic!(
                            "property '{}' failed at case {}/{}:\n{}",
                            ::core::stringify!($name),
                            __case,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0u8..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn tuples_and_patterns((a, b) in arb_pair(), mut acc in 0u32..1) {
            acc += u32::from(a) + u32::from(b);
            prop_assert!(acc < 20);
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..3, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn string_patterns(s in "[ab]{1,3}") {
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn flat_map_dependent(
            (n, i) in (1usize..6).prop_flat_map(|n| (Just(n), 0..n))
        ) {
            prop_assert!(i < n);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..1000, prop::collection::vec(0u8..7, 1..9));
        let mut r1 = crate::test_runner::TestRng::for_case("det", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("det", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u8..10) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}

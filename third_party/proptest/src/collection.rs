//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes, converted from the usual range types
/// or a fixed `usize`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.max - self.min) as u64 + 1;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_vec() {
        let s = vec(0u8..4, 7);
        let mut rng = TestRng::for_case("fixed", 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn ranged_size_vec_hits_all_lengths() {
        let s = vec(0u8..4, 1..=3);
        let mut rng = TestRng::for_case("ranged", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}

//! Deterministic case generation: configuration and the per-case RNG.

/// Runner configuration; only `cases` is honoured by this subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The generator driving all strategies: xoshiro256++ seeded from the
/// test name and case index, so every run of a test is identical.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The RNG for one case of one named property.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value below `bound` (Lemire with rejection; no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below zero");
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            let lo = wide as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_case_same_stream() {
        let mut a = TestRng::for_case("x", 5);
        let mut b = TestRng::for_case("x", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 6);
        let mut d = TestRng::for_case("y", 5);
        let head = TestRng::for_case("x", 5).next_u64();
        assert_ne!(head, c.next_u64());
        assert_ne!(head, d.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_case("below", 0);
        for bound in [1u64, 2, 3, 7, 1000] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}

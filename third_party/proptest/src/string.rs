//! Tiny regex-flavoured string generation: `&'static str` strategies.
//!
//! Supported shapes, matching what upstream proptest accepts for the
//! patterns this workspace actually writes:
//!
//! * `"[abc]{m,n}"` — a character class repeated between `m` and `n` times
//!   (also `{n}` for exactly `n`, and `a-z` ranges inside the class);
//! * `"[abc]*"` / `"[abc]+"` — 0..=8 / 1..=8 repetitions;
//! * anything else — treated as a literal and returned verbatim.

use crate::test_runner::TestRng;

/// Generates a string for `pattern` (see module docs for the subset).
#[must_use]
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    match parse(pattern) {
        Some((chars, min, max)) => {
            let len = min + rng.below((max - min) as u64 + 1) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
        None => pattern.to_string(),
    }
}

/// `[class]{m,n}` → (expanded class, min, max); `None` for literals.
fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = expand_class(&rest[..close]);
    if class.is_empty() {
        return None;
    }
    let reps = &rest[close + 1..];
    let (min, max) = match reps {
        "*" => (0, 8),
        "+" => (1, 8),
        _ => {
            let inner = reps.strip_prefix('{')?.strip_suffix('}')?;
            match inner.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n = inner.trim().parse().ok()?;
                    (n, n)
                }
            }
        }
    };
    if min > max {
        return None;
    }
    Some((class, min, max))
}

/// Expands `a-z` ranges; other characters stand for themselves.
fn expand_class(class: &str) -> Vec<char> {
    let chars: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo <= hi {
                out.extend((lo..=hi).filter(|c| c.is_ascii()));
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_counted_reps() {
        let mut rng = TestRng::for_case("class", 0);
        for _ in 0..100 {
            let s = generate_pattern("[abc]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
    }

    #[test]
    fn ranged_class() {
        let mut rng = TestRng::for_case("range", 0);
        let s = generate_pattern("[a-z]{10}", &mut rng);
        assert_eq!(s.len(), 10);
        assert!(s.chars().all(|c| c.is_ascii_lowercase()));
    }

    #[test]
    fn star_and_plus() {
        let mut rng = TestRng::for_case("star", 0);
        for _ in 0..50 {
            assert!(!generate_pattern("[x]+", &mut rng).is_empty());
            assert!(generate_pattern("[x]*", &mut rng).len() <= 8);
        }
    }

    #[test]
    fn literal_fallback() {
        let mut rng = TestRng::for_case("lit", 0);
        assert_eq!(generate_pattern("hello", &mut rng), "hello");
    }
}

//! `any::<T>()` for the primitive types the workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u8>()`, `any::<bool>()`, ...).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain generator for one primitive type.
#[derive(Debug, Clone, Copy)]
pub struct FullDomain<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Default for FullDomain<T> {
    fn default() -> Self {
        Self {
            _marker: std::marker::PhantomData,
        }
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;
            fn arbitrary() -> Self::Strategy {
                FullDomain::default()
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullDomain<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullDomain<bool>;
    fn arbitrary() -> Self::Strategy {
        FullDomain::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domain() {
        let s = any::<bool>();
        let mut rng = TestRng::for_case("any_bool", 0);
        let (mut t, mut f) = (false, false);
        for _ in 0..100 {
            if s.generate(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }

    #[test]
    fn any_u8_reaches_extremes_eventually() {
        let s = any::<u8>();
        let mut rng = TestRng::for_case("any_u8", 0);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 250);
    }
}

//! Golden-fixture regression for the published agents' exact `t_comm`
//! values on the paper's 16×16 torus.
//!
//! `tests/fixtures/golden_tcomm.json` stores, for each grid family and
//! `k ∈ {4, 16, 64}`, the communication times of 32 fixed seeded
//! placements. Both engines — the bit-packed kernel and the reference
//! `World` — must reproduce every value exactly, so any change to
//! perception, arbitration, movement or exchange order shows up as a
//! diff against the fixture. The fixture also pins the paper's density
//! observation that `k = 4` is the slowest of the sampled densities.
//!
//! Regenerate after an *intended* semantics change with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p a2a --test golden
//! ```

use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::{simulate, BatchRunner, InitialConfig, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;

const FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures/golden_tcomm.json");
const FIELD: u16 = 16;
const AGENT_COUNTS: [usize; 3] = [4, 16, 64];
const SEEDS: u64 = 32;
const T_MAX: u32 = 5000;
const KINDS: [GridKind; 2] = [GridKind::Square, GridKind::Triangulate];

fn kind_label(kind: GridKind) -> &'static str {
    match kind {
        GridKind::Square => "S",
        GridKind::Triangulate => "T",
    }
}

/// The fixed placement stream: one fresh rng per (kind-independent) seed.
fn placement(kind: GridKind, k: usize, seed: u64) -> InitialConfig {
    let cfg = WorldConfig::paper(kind, FIELD);
    let mut rng = SmallRng::seed_from_u64(seed);
    InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap()
}

/// Kernel-side times for one (kind, k) cell of the fixture.
fn kernel_times(kind: GridKind, k: usize) -> Vec<u32> {
    let cfg = WorldConfig::paper(kind, FIELD);
    let runner = BatchRunner::from_genome(&cfg, best_agent(kind), T_MAX).unwrap();
    (0..SEEDS)
        .map(|seed| {
            runner
                .outcome_for(&placement(kind, k, seed))
                .unwrap()
                .t_comm
                .expect("published agents solve every golden scenario")
        })
        .collect()
}

fn compute_all() -> Vec<(GridKind, usize, Vec<u32>)> {
    KINDS
        .iter()
        .flat_map(|&kind| AGENT_COUNTS.iter().map(move |&k| (kind, k, kernel_times(kind, k))))
        .collect()
}

fn render_fixture(all: &[(GridKind, usize, Vec<u32>)]) -> String {
    let mut out = String::from("{\n");
    writeln!(out, "  \"field\": {FIELD},").unwrap();
    writeln!(out, "  \"seeds\": {SEEDS},").unwrap();
    writeln!(out, "  \"t_max\": {T_MAX},").unwrap();
    out.push_str("  \"entries\": [\n");
    for (i, (kind, k, times)) in all.iter().enumerate() {
        let list = times.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
        let comma = if i + 1 == all.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"kind\": \"{}\", \"k\": {k}, \"t_comm\": [{list}]}}{comma}",
            kind_label(*kind)
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal scanning parser for the fixture's fixed shape (the workspace
/// deliberately has no JSON dependency).
fn parse_fixture(text: &str) -> Vec<(String, usize, Vec<u32>)> {
    let mut entries = Vec::new();
    let mut cursor = 0;
    while let Some(at) = text[cursor..].find("\"kind\":") {
        let rest = &text[cursor + at..];
        let q1 = "\"kind\": \"".len();
        let q2 = q1 + rest[q1..].find('"').expect("unterminated kind string");
        let kind = rest[q1..q2].to_string();
        let kpos = rest.find("\"k\":").expect("entry without k") + "\"k\":".len();
        let kend = kpos + rest[kpos..].find(',').expect("unterminated k");
        let k: usize = rest[kpos..kend].trim().parse().expect("k is a number");
        let tpos = rest.find("\"t_comm\": [").expect("entry without t_comm") + "\"t_comm\": [".len();
        let tend = tpos + rest[tpos..].find(']').expect("unterminated t_comm list");
        let times = rest[tpos..tend]
            .split(',')
            .map(|s| s.trim().parse().expect("t_comm values are numbers"))
            .collect();
        entries.push((kind, k, times));
        cursor += at + tend;
    }
    entries
}

fn load_fixture() -> Vec<(String, usize, Vec<u32>)> {
    let text = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — regenerate with GOLDEN_REGEN=1 cargo test -p a2a --test golden");
    parse_fixture(&text)
}

#[test]
fn golden_fixture_matches_both_engines() {
    let computed = compute_all();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(FIXTURE, render_fixture(&computed)).unwrap();
    }
    let golden = load_fixture();
    assert_eq!(golden.len(), KINDS.len() * AGENT_COUNTS.len(), "fixture shape changed");
    for ((kind, k, fast), (gkind, gk, gtimes)) in computed.iter().zip(&golden) {
        assert_eq!(kind_label(*kind), gkind, "fixture entry order changed");
        assert_eq!(k, gk, "fixture entry order changed");
        assert_eq!(gtimes.len(), SEEDS as usize, "{gkind} k={gk}: seed count changed");
        assert_eq!(fast, gtimes, "{gkind} k={gk}: kernel diverged from golden times");
    }
    // The reference oracle reproduces the fixture independently.
    for (kind, k, gtimes) in KINDS
        .iter()
        .flat_map(|&kind| AGENT_COUNTS.iter().map(move |&k| (kind, k)))
        .zip(&golden)
        .map(|((kind, k), g)| (kind, k, &g.2))
    {
        let cfg = WorldConfig::paper(kind, FIELD);
        for (seed, &expect) in gtimes.iter().enumerate() {
            let init = placement(kind, k, seed as u64);
            let got = simulate(&cfg, best_agent(kind), &init, T_MAX).unwrap().t_comm;
            assert_eq!(
                got,
                Some(expect),
                "oracle diverged from golden at {} k={k} seed={seed}",
                kind_label(kind)
            );
        }
    }
}

#[test]
fn golden_fixture_matches_multi_engine() {
    // The fused lockstep kernel reproduces every golden time through its
    // chunked whole-batch path (all 32 placements of a cell in one
    // `run_all`), pinning the third engine to the same semantics.
    let golden = load_fixture();
    for ((kind, k), (gkind, gk, gtimes)) in KINDS
        .iter()
        .flat_map(|&kind| AGENT_COUNTS.iter().map(move |&k| (kind, k)))
        .zip(&golden)
    {
        assert_eq!(kind_label(kind), gkind, "fixture entry order changed");
        assert_eq!(k, *gk, "fixture entry order changed");
        let cfg = WorldConfig::paper(kind, FIELD);
        let runner = BatchRunner::from_genome(&cfg, best_agent(kind), T_MAX).unwrap();
        let inits: Vec<InitialConfig> =
            (0..SEEDS).map(|seed| placement(kind, k, seed)).collect();
        let times: Vec<u32> = runner
            .run_all(&inits)
            .unwrap()
            .into_iter()
            .map(|o| o.t_comm.expect("published agents solve every golden scenario"))
            .collect();
        assert_eq!(&times, gtimes, "{gkind} k={gk}: multi kernel diverged from golden times");
    }
}

#[test]
fn low_density_is_slowest_in_fixture() {
    // Table 1's non-monotone density curve: the sparse k = 4 row is the
    // slowest sampled density in both grids.
    let golden = load_fixture();
    for kind in ["S", "T"] {
        let mean = |k: usize| -> f64 {
            let (_, _, times) = golden
                .iter()
                .find(|(g, gk, _)| g == kind && *gk == k)
                .unwrap_or_else(|| panic!("fixture misses {kind} k={k}"));
            f64::from(times.iter().sum::<u32>()) / times.len() as f64
        };
        assert!(mean(4) > mean(16), "{kind}: k=4 not slower than k=16");
        assert!(mean(4) > mean(64), "{kind}: k=4 not slower than k=64");
    }
}

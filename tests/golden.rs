//! Golden-fixture regression for the published agents' exact `t_comm`
//! values, across densities and field sizes.
//!
//! `tests/fixtures/golden_tcomm.json` stores two sections:
//!
//! * the **density sweep** — for each grid family and
//!   `k ∈ {4, 16, 64, 128, 256}` on the paper's 16×16 torus, the
//!   communication times of 32 fixed seeded placements (`k > 64`
//!   exercises the multi-word infoset path in every engine);
//! * the **big fields** — `M ∈ {64, 512, 1024}` with `k = 16` agents
//!   and 4 seeds each, recording `(t_comm | -1, informed)` under a
//!   short horizon: at these sparsities the task is deliberately not
//!   finishable in the budget, so the pinned value is the exact
//!   partial progress, which is just as sensitive to semantic drift.
//!
//! Every engine must reproduce every value exactly: the bit-packed
//! kernel and the reference `World` for the sweep, and both batch
//! paths — the run-major `run_all_multi` and the bit-sliced
//! `run_all_sliced` — for both sections. The fixture also pins the
//! paper's density observation that `k = 4` is the slowest sampled
//! density.
//!
//! Regenerate after an *intended* semantics change with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p a2a --test golden
//! ```

use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::{simulate, BatchRunner, InitialConfig, RunOutcome, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;

const FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures/golden_tcomm.json");
const FIELD: u16 = 16;
const AGENT_COUNTS: [usize; 5] = [4, 16, 64, 128, 256];
const SEEDS: u64 = 32;
const T_MAX: u32 = 5000;
const KINDS: [GridKind; 2] = [GridKind::Square, GridKind::Triangulate];

/// Big-field section: M ∈ {64, 512, 1024}, a few seeds under a short
/// horizon, partial progress pinned exactly.
const BIG_FIELDS: [u16; 3] = [64, 512, 1024];
const BIG_K: usize = 16;
const BIG_SEEDS: u64 = 4;
const BIG_T_MAX: u32 = 4096;

fn kind_label(kind: GridKind) -> &'static str {
    match kind {
        GridKind::Square => "S",
        GridKind::Triangulate => "T",
    }
}

/// The fixed placement stream: one fresh rng per (kind-independent) seed.
fn placement(kind: GridKind, m: u16, k: usize, seed: u64) -> InitialConfig {
    let cfg = WorldConfig::paper(kind, m);
    let mut rng = SmallRng::seed_from_u64(seed);
    InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap()
}

/// Kernel-side times for one (kind, k) cell of the density sweep.
fn kernel_times(kind: GridKind, k: usize) -> Vec<u32> {
    let cfg = WorldConfig::paper(kind, FIELD);
    let runner = BatchRunner::from_genome(&cfg, best_agent(kind), T_MAX).unwrap();
    (0..SEEDS)
        .map(|seed| {
            runner
                .outcome_for(&placement(kind, FIELD, k, seed))
                .unwrap()
                .t_comm
                .expect("published agents solve every golden sweep scenario")
        })
        .collect()
}

/// One big-field cell as `(t_comm | -1, informed)` pairs, computed on
/// the run-major batch path (the sliced path is asserted equal in the
/// fixture test).
fn big_field_records(kind: GridKind, m: u16) -> Vec<(i64, usize)> {
    let cfg = WorldConfig::paper(kind, m);
    let runner = BatchRunner::from_genome(&cfg, best_agent(kind), BIG_T_MAX).unwrap();
    let inits: Vec<InitialConfig> =
        (0..BIG_SEEDS).map(|seed| placement(kind, m, BIG_K, seed)).collect();
    runner
        .run_all_multi(&inits)
        .unwrap()
        .into_iter()
        .map(|o| (o.t_comm.map_or(-1, i64::from), o.informed))
        .collect()
}

fn compute_sweep() -> Vec<(GridKind, usize, Vec<u32>)> {
    KINDS
        .iter()
        .flat_map(|&kind| AGENT_COUNTS.iter().map(move |&k| (kind, k, kernel_times(kind, k))))
        .collect()
}

/// One big-field series: grid kind, field edge, per-config
/// `(fitness, informed)` records.
type BigFieldSeries = (GridKind, u16, Vec<(i64, usize)>);

fn compute_big_fields() -> Vec<BigFieldSeries> {
    KINDS
        .iter()
        .flat_map(|&kind| BIG_FIELDS.iter().map(move |&m| (kind, m, big_field_records(kind, m))))
        .collect()
}

fn render_fixture(
    sweep: &[(GridKind, usize, Vec<u32>)],
    big: &[BigFieldSeries],
) -> String {
    let mut out = String::from("{\n");
    writeln!(out, "  \"field\": {FIELD},").unwrap();
    writeln!(out, "  \"seeds\": {SEEDS},").unwrap();
    writeln!(out, "  \"t_max\": {T_MAX},").unwrap();
    out.push_str("  \"entries\": [\n");
    for (i, (kind, k, times)) in sweep.iter().enumerate() {
        let list = times.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
        let comma = if i + 1 == sweep.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"kind\": \"{}\", \"k\": {k}, \"t_comm\": [{list}]}}{comma}",
            kind_label(*kind)
        )
        .unwrap();
    }
    out.push_str("  ],\n");
    out.push_str("  \"big_fields\": {\n");
    writeln!(out, "    \"k\": {BIG_K},").unwrap();
    writeln!(out, "    \"seeds\": {BIG_SEEDS},").unwrap();
    writeln!(out, "    \"t_max\": {BIG_T_MAX},").unwrap();
    out.push_str("    \"entries\": [\n");
    for (i, (kind, m, records)) in big.iter().enumerate() {
        let times = records.iter().map(|(t, _)| t.to_string()).collect::<Vec<_>>().join(", ");
        let informed =
            records.iter().map(|(_, n)| n.to_string()).collect::<Vec<_>>().join(", ");
        let comma = if i + 1 == big.len() { "" } else { "," };
        writeln!(
            out,
            "      {{\"kind\": \"{}\", \"m\": {m}, \"t_comm\": [{times}], \"informed\": [{informed}]}}{comma}",
            kind_label(*kind)
        )
        .unwrap();
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

/// Scans one `"name": [v, v, ...]` list of integers out of `text`.
fn scan_list<T: std::str::FromStr>(text: &str, name: &str) -> Vec<T>
where
    T::Err: std::fmt::Debug,
{
    let tag = format!("\"{name}\": [");
    let at = text.find(&tag).unwrap_or_else(|| panic!("entry without {name}")) + tag.len();
    let end = at + text[at..].find(']').expect("unterminated list");
    text[at..end]
        .split(',')
        .map(|s| s.trim().parse().expect("list values are numbers"))
        .collect()
}

/// Minimal scanning parser for the fixture's fixed shape (the workspace
/// deliberately has no JSON dependency): the density-sweep entries and
/// the big-field entries, split at the `big_fields` key.
#[allow(clippy::type_complexity)]
fn parse_fixture(
    text: &str,
) -> (Vec<(String, usize, Vec<u32>)>, Vec<(String, u16, Vec<i64>, Vec<usize>)>) {
    let split = text.find("\"big_fields\"").expect("fixture without big_fields section");
    let (sweep_text, big_text) = text.split_at(split);

    let mut sweep = Vec::new();
    let mut cursor = 0;
    while let Some(at) = sweep_text[cursor..].find("\"kind\":") {
        let rest = &sweep_text[cursor + at..];
        let q1 = "\"kind\": \"".len();
        let q2 = q1 + rest[q1..].find('"').expect("unterminated kind string");
        let kind = rest[q1..q2].to_string();
        let kpos = rest.find("\"k\":").expect("entry without k") + "\"k\":".len();
        let kend = kpos + rest[kpos..].find(',').expect("unterminated k");
        let k: usize = rest[kpos..kend].trim().parse().expect("k is a number");
        sweep.push((kind, k, scan_list(rest, "t_comm")));
        cursor += at + kend;
    }

    let mut big = Vec::new();
    let mut cursor = 0;
    while let Some(at) = big_text[cursor..].find("\"kind\":") {
        let rest = &big_text[cursor + at..];
        let q1 = "\"kind\": \"".len();
        let q2 = q1 + rest[q1..].find('"').expect("unterminated kind string");
        let kind = rest[q1..q2].to_string();
        let mpos = rest.find("\"m\":").expect("entry without m") + "\"m\":".len();
        let mend = mpos + rest[mpos..].find(',').expect("unterminated m");
        let m: u16 = rest[mpos..mend].trim().parse().expect("m is a number");
        big.push((kind, m, scan_list(rest, "t_comm"), scan_list(rest, "informed")));
        cursor += at + mend;
    }
    (sweep, big)
}

#[allow(clippy::type_complexity)]
fn load_fixture() -> (Vec<(String, usize, Vec<u32>)>, Vec<(String, u16, Vec<i64>, Vec<usize>)>) {
    let text = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — regenerate with GOLDEN_REGEN=1 cargo test -p a2a --test golden");
    parse_fixture(&text)
}

#[test]
fn golden_fixture_matches_both_engines() {
    let computed = compute_sweep();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(FIXTURE, render_fixture(&computed, &compute_big_fields())).unwrap();
    }
    let (golden, _) = load_fixture();
    assert_eq!(golden.len(), KINDS.len() * AGENT_COUNTS.len(), "fixture shape changed");
    for ((kind, k, fast), (gkind, gk, gtimes)) in computed.iter().zip(&golden) {
        assert_eq!(kind_label(*kind), gkind, "fixture entry order changed");
        assert_eq!(k, gk, "fixture entry order changed");
        assert_eq!(gtimes.len(), SEEDS as usize, "{gkind} k={gk}: seed count changed");
        assert_eq!(fast, gtimes, "{gkind} k={gk}: kernel diverged from golden times");
    }
    // The reference oracle reproduces the fixture independently.
    for (kind, k, gtimes) in KINDS
        .iter()
        .flat_map(|&kind| AGENT_COUNTS.iter().map(move |&k| (kind, k)))
        .zip(&golden)
        .map(|((kind, k), g)| (kind, k, &g.2))
    {
        let cfg = WorldConfig::paper(kind, FIELD);
        for (seed, &expect) in gtimes.iter().enumerate() {
            let init = placement(kind, FIELD, k, seed as u64);
            let got = simulate(&cfg, best_agent(kind), &init, T_MAX).unwrap().t_comm;
            assert_eq!(
                got,
                Some(expect),
                "oracle diverged from golden at {} k={k} seed={seed}",
                kind_label(kind)
            );
        }
    }
}

#[test]
fn golden_fixture_matches_batch_engines() {
    // Both lockstep batch paths reproduce every sweep time through
    // their chunked whole-batch APIs (all 32 placements of a cell in
    // one call), pinning the run-major and bit-sliced engines to the
    // same semantics.
    let (golden, _) = load_fixture();
    for ((kind, k), (gkind, gk, gtimes)) in KINDS
        .iter()
        .flat_map(|&kind| AGENT_COUNTS.iter().map(move |&k| (kind, k)))
        .zip(&golden)
    {
        assert_eq!(kind_label(kind), gkind, "fixture entry order changed");
        assert_eq!(k, *gk, "fixture entry order changed");
        let cfg = WorldConfig::paper(kind, FIELD);
        let runner = BatchRunner::from_genome(&cfg, best_agent(kind), T_MAX).unwrap();
        let inits: Vec<InitialConfig> =
            (0..SEEDS).map(|seed| placement(kind, FIELD, k, seed)).collect();
        for (engine, outcomes) in [
            ("multi", runner.run_all_multi(&inits).unwrap()),
            ("sliced", runner.run_all_sliced(&inits).unwrap()),
        ] {
            let times: Vec<u32> = outcomes
                .into_iter()
                .map(|o| o.t_comm.expect("published agents solve every golden sweep scenario"))
                .collect();
            assert_eq!(
                &times, gtimes,
                "{gkind} k={gk}: {engine} kernel diverged from golden times"
            );
        }
    }
}

#[test]
fn golden_big_fields_match_batch_engines() {
    // M up to 1024: exact partial progress under the short horizon,
    // identical on the run-major and bit-sliced paths.
    let (_, golden) = load_fixture();
    assert_eq!(golden.len(), KINDS.len() * BIG_FIELDS.len(), "big-field shape changed");
    for ((kind, m), (gkind, gm, gtimes, ginformed)) in KINDS
        .iter()
        .flat_map(|&kind| BIG_FIELDS.iter().map(move |&m| (kind, m)))
        .zip(&golden)
    {
        assert_eq!(kind_label(kind), gkind, "big-field entry order changed");
        assert_eq!(m, *gm, "big-field entry order changed");
        let cfg = WorldConfig::paper(kind, m);
        let runner = BatchRunner::from_genome(&cfg, best_agent(kind), BIG_T_MAX).unwrap();
        let inits: Vec<InitialConfig> =
            (0..BIG_SEEDS).map(|seed| placement(kind, m, BIG_K, seed)).collect();
        for (engine, outcomes) in [
            ("multi", runner.run_all_multi(&inits).unwrap()),
            ("sliced", runner.run_all_sliced(&inits).unwrap()),
        ] {
            let got: Vec<(i64, usize)> = outcomes
                .iter()
                .map(|o: &RunOutcome| (o.t_comm.map_or(-1, i64::from), o.informed))
                .collect();
            let want: Vec<(i64, usize)> =
                gtimes.iter().copied().zip(ginformed.iter().copied()).collect();
            assert_eq!(got, want, "{gkind} M={gm}: {engine} diverged from golden records");
        }
    }
}

#[test]
fn low_density_is_slowest_in_fixture() {
    // Table 1's non-monotone density curve: the sparse k = 4 row is the
    // slowest sampled density in both grids.
    let (golden, _) = load_fixture();
    for kind in ["S", "T"] {
        let mean = |k: usize| -> f64 {
            let (_, _, times) = golden
                .iter()
                .find(|(g, gk, _)| g == kind && *gk == k)
                .unwrap_or_else(|| panic!("fixture misses {kind} k={k}"));
            f64::from(times.iter().sum::<u32>()) / times.len() as f64
        };
        for denser in &AGENT_COUNTS[1..] {
            assert!(mean(4) > mean(*denser), "{kind}: k=4 not slower than k={denser}");
        }
    }
}

//! Differential harness: the bit-packed [`FastWorld`] kernel and the
//! fused lockstep [`MultiWorld`] kernel against the reference [`World`]
//! oracle, all three driven in lockstep on randomized scenarios.
//!
//! Every scenario steps the engines together and asserts identical
//! positions, directions, control states, colour fields, infosets,
//! informed counts and, at the end, the same `t_comm`. The scenario pool
//! (>200 randomized cases across the two grid families) covers bordered
//! fields, obstacles, highest-ID arbitration, colour patterns,
//! time-shuffled behaviours and full-density packings.

use a2a_fsm::{best_agent, FsmSpec, Genome, TurnSet};
use a2a_grid::{GridKind, Lattice, Pos};
use a2a_sim::{
    Behaviour, ColorInit, ConflictPolicy, FastWorld, InitStatePolicy, InitialConfig, MultiWorld,
    World, WorldConfig,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Asserts that all three engines expose byte-identical observable
/// state. The multi-run engine carries the scenario in run slot 0.
fn assert_same_state(world: &World, fast: &FastWorld, multi: &MultiWorld, ctx: &str) {
    assert_eq!(world.time(), fast.time(), "{ctx}: time diverged");
    assert_eq!(world.time(), multi.time(), "{ctx}: multi time diverged");
    let positions = fast.positions();
    let dirs = fast.dirs();
    let states = fast.states();
    let m_positions = multi.positions(0);
    let m_dirs = multi.dirs(0);
    let m_states = multi.states(0);
    assert_eq!(world.agents().len(), fast.agent_count(), "{ctx}: agent count");
    assert_eq!(world.agents().len(), multi.agent_count(0), "{ctx}: multi agent count");
    for (i, agent) in world.agents().iter().enumerate() {
        assert_eq!(agent.pos(), positions[i], "{ctx}: agent {i} position");
        assert_eq!(agent.dir(), dirs[i], "{ctx}: agent {i} direction");
        assert_eq!(agent.state(), states[i], "{ctx}: agent {i} state");
        assert_eq!(*agent.info(), fast.agent_info(i), "{ctx}: agent {i} infoset");
        assert_eq!(agent.pos(), m_positions[i], "{ctx}: agent {i} multi position");
        assert_eq!(agent.dir(), m_dirs[i], "{ctx}: agent {i} multi direction");
        assert_eq!(agent.state(), m_states[i], "{ctx}: agent {i} multi state");
        assert_eq!(*agent.info(), multi.agent_info(0, i), "{ctx}: agent {i} multi infoset");
    }
    assert_eq!(world.colors(), &fast.colors()[..], "{ctx}: colour field");
    assert_eq!(world.colors(), &multi.colors(0)[..], "{ctx}: multi colour field");
    assert_eq!(world.informed_count(), fast.informed_count(), "{ctx}: informed count");
    assert_eq!(world.informed_count(), multi.informed_count(0), "{ctx}: multi informed count");
    assert_eq!(world.all_informed(), fast.all_informed(), "{ctx}: completion flag");
    let m_done = multi.informed_count(0) == multi.agent_count(0);
    assert_eq!(world.all_informed(), m_done, "{ctx}: multi completion flag");
}

/// Runs all three engines in lockstep for up to `t_max` counted steps,
/// comparing the full state after every step and the resulting `t_comm`.
fn lockstep(cfg: &WorldConfig, behaviour: &Behaviour, init: &InitialConfig, t_max: u32, ctx: &str) {
    let mut world = World::with_behaviour(cfg, behaviour.clone(), init)
        .unwrap_or_else(|e| panic!("{ctx}: oracle rejected scenario: {e}"));
    let mut fast = FastWorld::with_behaviour(cfg, behaviour.clone(), init)
        .unwrap_or_else(|e| panic!("{ctx}: kernel rejected scenario: {e}"));
    let mut multi = MultiWorld::with_behaviour(cfg, behaviour.clone())
        .unwrap_or_else(|e| panic!("{ctx}: multi kernel rejected scenario: {e}"));
    multi
        .load(std::slice::from_ref(init))
        .unwrap_or_else(|e| panic!("{ctx}: multi kernel rejected placement: {e}"));
    assert_same_state(&world, &fast, &multi, &format!("{ctx} @t=0"));
    let mut t_slow = world.all_informed().then_some(0u32);
    let mut t_fast = fast.all_informed().then_some(0u32);
    let mut t_multi = (multi.informed_count(0) == multi.agent_count(0)).then_some(0u32);
    for t in 1..=t_max {
        world.step();
        fast.step();
        multi.step();
        assert_same_state(&world, &fast, &multi, &format!("{ctx} @t={t}"));
        if t_slow.is_none() && world.all_informed() {
            t_slow = Some(t);
        }
        if t_fast.is_none() && fast.all_informed() {
            t_fast = Some(t);
        }
        if t_multi.is_none() && multi.informed_count(0) == multi.agent_count(0) {
            t_multi = Some(t);
        }
        if t_slow.is_some() && t_fast.is_some() && t_multi.is_some() {
            break;
        }
    }
    assert_eq!(t_slow, t_fast, "{ctx}: t_comm diverged");
    assert_eq!(t_slow, t_multi, "{ctx}: multi t_comm diverged");
}

/// One fully randomized scenario: lattice shape and edge rule, policies,
/// colour pattern, obstacles, FSM spec, behaviour and placement all drawn
/// from `seed`.
fn random_scenario(kind: GridKind, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let width = rng.random_range(3u16..10);
    let height = rng.random_range(3u16..10);
    let lattice = if rng.random_bool(0.25) {
        Lattice::bordered(width, height)
    } else {
        Lattice::torus(width, height)
    };
    let mut cfg = WorldConfig::with_lattice(kind, lattice);
    if rng.random_bool(0.5) {
        cfg.conflict = ConflictPolicy::HighestId;
    }

    let turn_set = match kind {
        GridKind::Square => TurnSet::Square,
        GridKind::Triangulate => {
            if rng.random_bool(0.3) {
                TurnSet::TriangulateFull
            } else {
                TurnSet::TriangulateRestricted
            }
        }
    };
    let n_states = rng.random_range(2u8..=6);
    let n_colors = rng.random_range(2u8..=4);
    let spec = FsmSpec::new(n_states, n_colors, turn_set);

    cfg.init_states = match rng.random_range(0u8..3) {
        0 => InitStatePolicy::Uniform(rng.random_range(0..n_states)),
        1 => InitStatePolicy::IdParity,
        _ => InitStatePolicy::IdModulo(rng.random_range(2..=n_states)),
    };
    if rng.random_bool(0.4) {
        let pattern = (0..lattice.len()).map(|_| rng.random_range(0..n_colors)).collect();
        cfg.colors = ColorInit::Pattern(pattern);
    }

    let mut obstacles: Vec<Pos> = Vec::new();
    if rng.random_bool(0.3) {
        while obstacles.len() < 3 {
            let pos = lattice.pos_at(rng.random_range(0..lattice.len()));
            if !obstacles.contains(&pos) {
                obstacles.push(pos);
            }
        }
    }
    cfg.obstacles.clone_from(&obstacles);

    let free = lattice.len() - obstacles.len();
    let k = rng.random_range(1..=free.min(12));
    let init = InitialConfig::random(lattice, kind, k, &obstacles, &mut rng)
        .expect("k is clamped to the free-cell count");

    let behaviour = if rng.random_bool(0.25) {
        Behaviour::shuffled_pair(Genome::random(spec, &mut rng), Genome::random(spec, &mut rng))
    } else {
        Behaviour::Single(Genome::random(spec, &mut rng))
    };
    lockstep(&cfg, &behaviour, &init, 60, &format!("{kind} seed {seed}"));
}

#[test]
fn random_scenarios_square() {
    for seed in 0..70 {
        random_scenario(GridKind::Square, seed);
    }
}

#[test]
fn random_scenarios_triangulate() {
    for seed in 0..70 {
        random_scenario(GridKind::Triangulate, 1_000 + seed);
    }
}

#[test]
fn full_density_scenarios() {
    // Every cell occupied: maximal conflict pressure on the arbitration
    // path, and the paper's D − 1 lower-bound regime.
    for kind in [GridKind::Square, GridKind::Triangulate] {
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(40_000 + seed);
            let m = rng.random_range(3u16..8);
            let cfg = WorldConfig::paper(kind, m);
            let k = cfg.lattice.len();
            let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap();
            let behaviour = Behaviour::Single(best_agent(kind));
            lockstep(&cfg, &behaviour, &init, 80, &format!("{kind} packed seed {seed}"));
        }
    }
}

#[test]
fn published_agent_scenarios() {
    // The paper's own evaluation setting: 16×16 torus, published best
    // agents, random placements at several densities.
    for kind in [GridKind::Square, GridKind::Triangulate] {
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(90_000 + seed);
            let cfg = WorldConfig::paper(kind, 16);
            let k = rng.random_range(2usize..=32);
            let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap();
            let behaviour = Behaviour::Single(best_agent(kind));
            lockstep(&cfg, &behaviour, &init, 250, &format!("{kind} paper seed {seed}"));
        }
    }
}

#[test]
fn degenerate_fields_match() {
    // Tiny tori exercise the self-neighbour check (a 1×1 torus wraps an
    // agent onto itself) and single-row wrap-arounds.
    let mut rng = SmallRng::seed_from_u64(7);
    for kind in [GridKind::Square, GridKind::Triangulate] {
        for (w, h) in [(1u16, 1u16), (1, 4), (4, 1), (2, 2)] {
            let lattice = Lattice::torus(w, h);
            let cfg = WorldConfig::with_lattice(kind, lattice);
            let spec = FsmSpec::paper(kind);
            for k in 1..=lattice.len().min(3) {
                let init = InitialConfig::random(lattice, kind, k, &[], &mut rng).unwrap();
                let behaviour = Behaviour::Single(Genome::random(spec, &mut rng));
                lockstep(&cfg, &behaviour, &init, 40, &format!("{kind} {w}x{h} k={k}"));
            }
        }
    }
}

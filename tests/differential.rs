//! Differential harness: all four engines in lockstep — the reference
//! [`World`] oracle, the bit-packed [`FastWorld`] kernel, the fused
//! run-major [`MultiWorld`] and the bit-sliced [`SlicedWorld`] — on
//! randomized scenarios.
//!
//! Every scenario steps the engines together and asserts identical
//! positions, directions, control states, colour fields, infosets,
//! informed counts and, at the end, the same `t_comm`. The scenario pool
//! (>200 randomized cases across the two grid families) covers bordered
//! fields, obstacles, highest-ID arbitration, colour patterns,
//! time-shuffled behaviours and full-density packings; dedicated batch
//! cases pin the sliced engine's partial last lane (run counts that are
//! not multiples of 64) and its mid-batch lane-masked retirement
//! ordering.

use a2a_fsm::{best_agent, FsmSpec, Genome, TurnSet};
use a2a_grid::{GridKind, Lattice, Pos};
use a2a_sim::{
    BatchRunner, Behaviour, ColorInit, ConflictPolicy, FastWorld, InitStatePolicy, InitialConfig,
    MultiWorld, SlicedWorld, World, WorldConfig,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Asserts that all four engines expose byte-identical observable
/// state. The batch engines carry the scenario in run slot 0.
fn assert_same_state(
    world: &World,
    fast: &FastWorld,
    multi: &MultiWorld,
    sliced: &SlicedWorld,
    ctx: &str,
) {
    assert_eq!(world.time(), fast.time(), "{ctx}: time diverged");
    assert_eq!(world.time(), multi.time(), "{ctx}: multi time diverged");
    assert_eq!(world.time(), sliced.time(), "{ctx}: sliced time diverged");
    let positions = fast.positions();
    let dirs = fast.dirs();
    let states = fast.states();
    let m_positions = multi.positions(0);
    let m_dirs = multi.dirs(0);
    let m_states = multi.states(0);
    let s_positions = sliced.positions(0);
    let s_dirs = sliced.dirs(0);
    let s_states = sliced.states(0);
    assert_eq!(world.agents().len(), fast.agent_count(), "{ctx}: agent count");
    assert_eq!(world.agents().len(), multi.agent_count(0), "{ctx}: multi agent count");
    assert_eq!(world.agents().len(), sliced.agent_count(0), "{ctx}: sliced agent count");
    for (i, agent) in world.agents().iter().enumerate() {
        assert_eq!(agent.pos(), positions[i], "{ctx}: agent {i} position");
        assert_eq!(agent.dir(), dirs[i], "{ctx}: agent {i} direction");
        assert_eq!(agent.state(), states[i], "{ctx}: agent {i} state");
        assert_eq!(*agent.info(), fast.agent_info(i), "{ctx}: agent {i} infoset");
        assert_eq!(agent.pos(), m_positions[i], "{ctx}: agent {i} multi position");
        assert_eq!(agent.dir(), m_dirs[i], "{ctx}: agent {i} multi direction");
        assert_eq!(agent.state(), m_states[i], "{ctx}: agent {i} multi state");
        assert_eq!(*agent.info(), multi.agent_info(0, i), "{ctx}: agent {i} multi infoset");
        assert_eq!(agent.pos(), s_positions[i], "{ctx}: agent {i} sliced position");
        assert_eq!(agent.dir(), s_dirs[i], "{ctx}: agent {i} sliced direction");
        assert_eq!(agent.state(), s_states[i], "{ctx}: agent {i} sliced state");
        assert_eq!(*agent.info(), sliced.agent_info(0, i), "{ctx}: agent {i} sliced infoset");
    }
    assert_eq!(world.colors(), &fast.colors()[..], "{ctx}: colour field");
    assert_eq!(world.colors(), &multi.colors(0)[..], "{ctx}: multi colour field");
    assert_eq!(world.colors(), &sliced.colors(0)[..], "{ctx}: sliced colour field");
    assert_eq!(world.informed_count(), fast.informed_count(), "{ctx}: informed count");
    assert_eq!(world.informed_count(), multi.informed_count(0), "{ctx}: multi informed count");
    assert_eq!(world.informed_count(), sliced.informed_count(0), "{ctx}: sliced informed count");
    assert_eq!(world.all_informed(), fast.all_informed(), "{ctx}: completion flag");
    let m_done = multi.informed_count(0) == multi.agent_count(0);
    assert_eq!(world.all_informed(), m_done, "{ctx}: multi completion flag");
    let s_done = sliced.informed_count(0) == sliced.agent_count(0);
    assert_eq!(world.all_informed(), s_done, "{ctx}: sliced completion flag");
}

/// Runs all four engines in lockstep for up to `t_max` counted steps,
/// comparing the full state after every step and the resulting `t_comm`.
fn lockstep(cfg: &WorldConfig, behaviour: &Behaviour, init: &InitialConfig, t_max: u32, ctx: &str) {
    let mut world = World::with_behaviour(cfg, behaviour.clone(), init)
        .unwrap_or_else(|e| panic!("{ctx}: oracle rejected scenario: {e}"));
    let mut fast = FastWorld::with_behaviour(cfg, behaviour.clone(), init)
        .unwrap_or_else(|e| panic!("{ctx}: kernel rejected scenario: {e}"));
    let mut multi = MultiWorld::with_behaviour(cfg, behaviour.clone())
        .unwrap_or_else(|e| panic!("{ctx}: multi kernel rejected scenario: {e}"));
    multi
        .load(std::slice::from_ref(init))
        .unwrap_or_else(|e| panic!("{ctx}: multi kernel rejected placement: {e}"));
    let mut sliced = SlicedWorld::with_behaviour(cfg, behaviour.clone())
        .unwrap_or_else(|e| panic!("{ctx}: sliced kernel rejected scenario: {e}"));
    sliced
        .load(std::slice::from_ref(init))
        .unwrap_or_else(|e| panic!("{ctx}: sliced kernel rejected placement: {e}"));
    assert_same_state(&world, &fast, &multi, &sliced, &format!("{ctx} @t=0"));
    let mut t_slow = world.all_informed().then_some(0u32);
    let mut t_fast = fast.all_informed().then_some(0u32);
    let mut t_multi = (multi.informed_count(0) == multi.agent_count(0)).then_some(0u32);
    let mut t_sliced = (sliced.informed_count(0) == sliced.agent_count(0)).then_some(0u32);
    for t in 1..=t_max {
        world.step();
        fast.step();
        multi.step();
        sliced.step();
        assert_same_state(&world, &fast, &multi, &sliced, &format!("{ctx} @t={t}"));
        if t_slow.is_none() && world.all_informed() {
            t_slow = Some(t);
        }
        if t_fast.is_none() && fast.all_informed() {
            t_fast = Some(t);
        }
        if t_multi.is_none() && multi.informed_count(0) == multi.agent_count(0) {
            t_multi = Some(t);
        }
        if t_sliced.is_none() && sliced.informed_count(0) == sliced.agent_count(0) {
            t_sliced = Some(t);
        }
        if t_slow.is_some() && t_fast.is_some() && t_multi.is_some() && t_sliced.is_some() {
            break;
        }
    }
    assert_eq!(t_slow, t_fast, "{ctx}: t_comm diverged");
    assert_eq!(t_slow, t_multi, "{ctx}: multi t_comm diverged");
    assert_eq!(t_slow, t_sliced, "{ctx}: sliced t_comm diverged");
}

/// One fully randomized scenario: lattice shape and edge rule, policies,
/// colour pattern, obstacles, FSM spec, behaviour and placement all drawn
/// from `seed`.
fn random_scenario(kind: GridKind, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let width = rng.random_range(3u16..10);
    let height = rng.random_range(3u16..10);
    let lattice = if rng.random_bool(0.25) {
        Lattice::bordered(width, height)
    } else {
        Lattice::torus(width, height)
    };
    let mut cfg = WorldConfig::with_lattice(kind, lattice);
    if rng.random_bool(0.5) {
        cfg.conflict = ConflictPolicy::HighestId;
    }

    let turn_set = match kind {
        GridKind::Square => TurnSet::Square,
        GridKind::Triangulate => {
            if rng.random_bool(0.3) {
                TurnSet::TriangulateFull
            } else {
                TurnSet::TriangulateRestricted
            }
        }
    };
    let n_states = rng.random_range(2u8..=6);
    let n_colors = rng.random_range(2u8..=4);
    let spec = FsmSpec::new(n_states, n_colors, turn_set);

    cfg.init_states = match rng.random_range(0u8..3) {
        0 => InitStatePolicy::Uniform(rng.random_range(0..n_states)),
        1 => InitStatePolicy::IdParity,
        _ => InitStatePolicy::IdModulo(rng.random_range(2..=n_states)),
    };
    if rng.random_bool(0.4) {
        let pattern = (0..lattice.len()).map(|_| rng.random_range(0..n_colors)).collect();
        cfg.colors = ColorInit::Pattern(pattern);
    }

    let mut obstacles: Vec<Pos> = Vec::new();
    if rng.random_bool(0.3) {
        while obstacles.len() < 3 {
            let pos = lattice.pos_at(rng.random_range(0..lattice.len()));
            if !obstacles.contains(&pos) {
                obstacles.push(pos);
            }
        }
    }
    cfg.obstacles.clone_from(&obstacles);

    let free = lattice.len() - obstacles.len();
    let k = rng.random_range(1..=free.min(12));
    let init = InitialConfig::random(lattice, kind, k, &obstacles, &mut rng)
        .expect("k is clamped to the free-cell count");

    let behaviour = if rng.random_bool(0.25) {
        Behaviour::shuffled_pair(Genome::random(spec, &mut rng), Genome::random(spec, &mut rng))
    } else {
        Behaviour::Single(Genome::random(spec, &mut rng))
    };
    lockstep(&cfg, &behaviour, &init, 60, &format!("{kind} seed {seed}"));
}

#[test]
fn random_scenarios_square() {
    for seed in 0..70 {
        random_scenario(GridKind::Square, seed);
    }
}

#[test]
fn random_scenarios_triangulate() {
    for seed in 0..70 {
        random_scenario(GridKind::Triangulate, 1_000 + seed);
    }
}

#[test]
fn full_density_scenarios() {
    // Every cell occupied: maximal conflict pressure on the arbitration
    // path, and the paper's D − 1 lower-bound regime.
    for kind in [GridKind::Square, GridKind::Triangulate] {
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(40_000 + seed);
            let m = rng.random_range(3u16..8);
            let cfg = WorldConfig::paper(kind, m);
            let k = cfg.lattice.len();
            let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap();
            let behaviour = Behaviour::Single(best_agent(kind));
            lockstep(&cfg, &behaviour, &init, 80, &format!("{kind} packed seed {seed}"));
        }
    }
}

#[test]
fn published_agent_scenarios() {
    // The paper's own evaluation setting: 16×16 torus, published best
    // agents, random placements at several densities.
    for kind in [GridKind::Square, GridKind::Triangulate] {
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(90_000 + seed);
            let cfg = WorldConfig::paper(kind, 16);
            let k = rng.random_range(2usize..=32);
            let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap();
            let behaviour = Behaviour::Single(best_agent(kind));
            lockstep(&cfg, &behaviour, &init, 250, &format!("{kind} paper seed {seed}"));
        }
    }
}

#[test]
fn degenerate_fields_match() {
    // Tiny tori exercise the self-neighbour check (a 1×1 torus wraps an
    // agent onto itself) and single-row wrap-arounds.
    let mut rng = SmallRng::seed_from_u64(7);
    for kind in [GridKind::Square, GridKind::Triangulate] {
        for (w, h) in [(1u16, 1u16), (1, 4), (4, 1), (2, 2)] {
            let lattice = Lattice::torus(w, h);
            let cfg = WorldConfig::with_lattice(kind, lattice);
            let spec = FsmSpec::paper(kind);
            for k in 1..=lattice.len().min(3) {
                let init = InitialConfig::random(lattice, kind, k, &[], &mut rng).unwrap();
                let behaviour = Behaviour::Single(Genome::random(spec, &mut rng));
                lockstep(&cfg, &behaviour, &init, 40, &format!("{kind} {w}x{h} k={k}"));
            }
        }
    }
}

#[test]
fn partial_lane_batches_match_per_config_outcomes() {
    // Run counts straddling the 64-run lane width: a lone run, a lane
    // one short, exactly one lane, one over, and a two-lane batch with
    // a partial second lane. Every shape must report the same outcomes
    // through the forced sliced path, the forced run-major path and the
    // per-configuration kernel.
    let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
    let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 300).unwrap();
    let mut rng = SmallRng::seed_from_u64(64_001);
    for runs in [1usize, 63, 64, 65, 130] {
        let inits: Vec<InitialConfig> = (0..runs)
            .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng).unwrap())
            .collect();
        let singles: Vec<_> = inits.iter().map(|i| runner.outcome_for(i).unwrap()).collect();
        assert_eq!(runner.run_all_sliced(&inits).unwrap(), singles, "sliced, {runs} runs");
        assert_eq!(runner.run_all_multi(&inits).unwrap(), singles, "multi, {runs} runs");
        assert_eq!(runner.run_all(&inits).unwrap(), singles, "routed, {runs} runs");
    }
}

#[test]
fn mid_batch_retirement_preserves_outcome_order() {
    // Random placements finish at scattered times, so lane bits retire
    // out of slot order while later runs keep stepping. Outcome slots
    // must stay aligned with load order in both batch engines, and the
    // batch must actually exercise staggered retirement (many distinct
    // communication times) rather than one synchronized finish.
    let cfg = WorldConfig::paper(GridKind::Square, 16);
    let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 2_000).unwrap();
    let mut rng = SmallRng::seed_from_u64(64_002);
    let inits: Vec<InitialConfig> = (0..96)
        .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap())
        .collect();
    let singles: Vec<_> = inits.iter().map(|i| runner.outcome_for(i).unwrap()).collect();
    let mut times: Vec<_> = singles.iter().map(|o| o.t_comm).collect();
    times.sort_unstable();
    times.dedup();
    assert!(times.len() > 10, "scenario pool no longer staggers retirements");
    assert_eq!(runner.run_all_sliced(&inits).unwrap(), singles, "sliced retirement order");
    assert_eq!(runner.run_all_multi(&inits).unwrap(), singles, "multi retirement order");
}

#[test]
fn parallel_dispatch_matches_serial_engines_under_mid_batch_retirement() {
    // The deterministic dispatcher shards chunk-sized blocks across a
    // real worker pool; the ordered commit must keep outcome slots
    // bit-identical to every serial engine even while runs retire at
    // scattered times inside each block. Batch size is derived from the
    // runner's own chunk so the dispatcher genuinely fans out over
    // several blocks (plus a ragged tail) instead of degenerating to a
    // single submission.
    use a2a_ga::WorkerPool;
    use a2a_sim::Dispatch;
    use std::sync::Arc;

    let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
    let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 2_000).unwrap();
    let mut rng = SmallRng::seed_from_u64(64_003);
    let runs = runner.chunk_size(8) * 3 + 5;
    let inits: Vec<InitialConfig> = (0..runs)
        .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap())
        .collect();
    let singles: Vec<_> = inits.iter().map(|i| runner.outcome_for(i).unwrap()).collect();
    let mut times: Vec<_> = singles.iter().map(|o| o.t_comm).collect();
    times.sort_unstable();
    times.dedup();
    assert!(times.len() > 10, "scenario pool no longer staggers retirements");

    let pool: Arc<dyn Dispatch> = Arc::new(WorkerPool::new(3));
    let parallel = runner.clone().with_dispatch(Arc::clone(&pool));
    assert_eq!(parallel.dispatch_workers(), 3, "pool advertises its worker count");
    assert_eq!(parallel.run_all(&inits).unwrap(), singles, "dispatched routed path");
    assert_eq!(parallel.run_all_multi(&inits).unwrap(), singles, "dispatched frontier path");
    assert_eq!(parallel.run_all_multi_dense(&inits).unwrap(), singles, "dispatched dense path");
    assert_eq!(runner.run_all_sliced(&inits).unwrap(), singles, "sliced vs dispatched");
    // Determinism across repeated dispatched executions of the same batch.
    assert_eq!(
        parallel.run_all(&inits).unwrap(),
        parallel.run_all(&inits).unwrap(),
        "dispatched run is reproducible"
    );
}

//! Cross-crate integration tests of the analysis toolbox: bounds, usage
//! profiling, inference and charts working against real simulations.

use a2a::analysis::{
    bootstrap_mean_ci, diffusion_lower_bound, profile_usage, significantly_different,
    stationary_time, welch_t, AsciiChart, Series, XScale,
};
use a2a::ga::parallel_map;
use a2a::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The diffusion lower bound is respected by every run, and is tighter in
/// T than in S on the same placement (T distances dominate).
#[test]
fn bounds_hold_across_grids_on_shared_placements() {
    let lattice = Lattice::torus(16, 16);
    let mut rng = SmallRng::seed_from_u64(21);
    for _ in 0..10 {
        let init = InitialConfig::random(lattice, GridKind::Square, 6, &[], &mut rng).unwrap();
        let mut dirs_ok = true;
        for &(_, d) in init.placements() {
            dirs_ok &= d.is_valid_for(GridKind::Triangulate);
        }
        assert!(dirs_ok, "S directions are valid T directions");
        let bound_s = diffusion_lower_bound(lattice, GridKind::Square, &init);
        let bound_t = diffusion_lower_bound(lattice, GridKind::Triangulate, &init);
        assert!(bound_t <= bound_s);
        for (kind, bound) in [(GridKind::Square, bound_s), (GridKind::Triangulate, bound_t)] {
            let cfg = WorldConfig::paper(kind, 16);
            let out = simulate(&cfg, best_agent(kind), &init, 4000).unwrap();
            assert!(out.t_comm.unwrap() >= bound, "{kind}");
        }
    }
}

/// Stationary analysis: agents placed as a connected chain communicate
/// without moving in exactly chain-eccentricity − 1 steps under a
/// never-moving behaviour.
#[test]
fn stationary_time_is_exact_for_immobile_chains() {
    use a2a::fsm::{Entry, FsmSpec, Genome};
    let lattice = Lattice::torus(16, 16);
    let k = 6;
    let placements: Vec<(Pos, Dir)> =
        (0..k).map(|i| (Pos::new(3 + i, 5), Dir::new(0))).collect();
    let init = InitialConfig::new(placements);
    let expected = stationary_time(lattice, GridKind::Square, &init).unwrap();
    // A behaviour that never moves: chain gossip only.
    let spec = FsmSpec::paper(GridKind::Square);
    let immobile = Genome::from_entries(
        spec,
        vec![Entry { next_state: 0, action: a2a::fsm::Action::new(0, false, 0) }; 32],
    );
    let cfg = WorldConfig::paper(GridKind::Square, 16);
    let out = simulate(&cfg, immobile, &init, 100).unwrap();
    assert_eq!(out.t_comm, Some(expected));
    // A 6-chain: ends are 5 apart, so 4 counted steps after the free one.
    assert_eq!(expected, 4);
}

/// The T-vs-S difference at k = 16 is statistically significant on a
/// modest sample, and the bootstrap CIs do not overlap.
#[test]
fn t_vs_s_difference_is_significant() {
    let lattice = Lattice::torus(16, 16);
    let times = |kind: GridKind| -> Vec<f64> {
        let configs = a2a::sim::paper_config_set(lattice, kind, 16, 80, 5).unwrap();
        let cfg = WorldConfig::paper(kind, 16);
        let genome = best_agent(kind);
        parallel_map(&configs, 4, |init| {
            f64::from(simulate(&cfg, genome.clone(), init, 4000).unwrap().t_comm.unwrap())
        })
    };
    let t = times(GridKind::Triangulate);
    let s = times(GridKind::Square);
    assert!(significantly_different(&t, &s));
    let (stat, df) = welch_t(&t, &s).unwrap();
    assert!(stat < -5.0, "t = {stat}");
    assert!(df > 100.0);
    let ci_t = bootstrap_mean_ci(&t, 400, 0.95, 1).unwrap();
    let ci_s = bootstrap_mean_ci(&s, 400, 0.95, 1).unwrap();
    assert!(ci_t.hi < ci_s.lo, "CIs must separate: {ci_t:?} vs {ci_s:?}");
}

/// Usage profiling composes with the facade: the published agents
/// exercise most of their genome across a config set.
#[test]
fn usage_profile_of_published_agents() {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let env = WorldConfig::paper(kind, 16);
        let configs = a2a::sim::paper_config_set(env.lattice, kind, 8, 20, 3).unwrap();
        let p = profile_usage(&env, &best_agent(kind), &configs, 1000, 2);
        assert!(p.dead_entries().len() <= 4, "{kind}: {:?}", p.dead_entries());
        assert!(p.concentration(32) > 0.999);
        assert!(p.total_steps > 0);
    }
}

/// Charts render simulation-derived series without panicking and embed
/// every series glyph.
#[test]
fn chart_renders_simulated_series() {
    let mut points_t = Vec::new();
    let mut points_s = Vec::new();
    for (k, out_t, out_s) in [(4usize, 70.0, 110.0), (16, 40.0, 63.0), (64, 18.0, 28.0)] {
        points_t.push((k as f64, out_t));
        points_s.push((k as f64, out_s));
    }
    let chart = AsciiChart::new(48, 12, XScale::Log2)
        .series(Series::new("T", 'T', points_t))
        .series(Series::new("S", 'S', points_s));
    let text = chart.to_string();
    assert!(text.matches('T').count() >= 3);
    assert!(text.matches('S').count() >= 3);
}

//! End-to-end pipeline test: evolve agents with the Sect. 4 procedure,
//! take the best individual, validate it on held-out configurations and
//! screen it across densities — the paper's full workflow at small scale.

use a2a::ga::{screen, Evaluator, Evolution, GaConfig};
use a2a::prelude::*;

#[test]
fn evolve_validate_screen_pipeline() {
    let kind = GridKind::Triangulate;
    let env = WorldConfig::paper(kind, 16);

    // 1. Evolve on a small training set (paper: 1003 configs, k = 8).
    let train = a2a::sim::paper_config_set(env.lattice, kind, 8, 25, 77).unwrap();
    let ga = Evolution::new(
        FsmSpec::paper(kind),
        Evaluator::new(env.clone(), train).with_threads(4),
        GaConfig::paper(40, 77),
    );
    let outcome = ga.run(|_| ());
    assert_eq!(outcome.history.len(), 41);
    let best = outcome.best();

    // Evolution must have made real progress over the random pool.
    // (The pool can start lucky — seed 77's random pool already contains
    // a completely successful FSM — so require strict improvement plus a
    // completely successful winner rather than a fixed factor.)
    let initial_best = outcome.history[0].best_fitness;
    assert!(
        best.report.fitness < initial_best,
        "no progress: {initial_best} -> {}",
        best.report.fitness
    );
    assert!(best.report.is_completely_successful(), "{:?}", best.report);

    // 2. Validate on held-out configurations.
    let held_out = a2a::sim::paper_config_set(env.lattice, kind, 8, 30, 999).unwrap();
    let validation = Evaluator::new(env.clone(), held_out)
        .with_t_max(1000)
        .with_threads(4)
        .evaluate(&best.genome);
    assert!(
        validation.successes * 2 > validation.total,
        "an evolved agent should generalise to most held-out configs: {validation:?}"
    );

    // 3. Screen across densities (the paper's reliability protocol).
    // A short run rarely yields a *reliable* agent — exactly why the
    // paper ran four independent large runs and screened the winners.
    // Require a strong result at the training density and at least some
    // transfer to the others (k = 4 is the hardest density, Table 1).
    let report = screen(&best.genome, &env, &[4, 8, 16], 10, 5, 1000, 4).unwrap();
    assert_eq!(report.per_density.len(), 3);
    for d in &report.per_density {
        if d.agents == 8 {
            assert!(
                d.report.successes * 3 >= d.report.total * 2,
                "training density must stay strong: {:?}",
                d.report
            );
        } else {
            assert!(d.report.successes > 0, "density {}: {:?}", d.agents, d.report);
        }
    }
}

#[test]
fn published_agents_win_against_a_short_evolution() {
    // A short evolved run should not beat the published FSM on a fresh
    // evaluation set — sanity that our published transcription is strong.
    let kind = GridKind::Square;
    let env = WorldConfig::paper(kind, 16);
    let train = a2a::sim::paper_config_set(env.lattice, kind, 8, 15, 3).unwrap();
    let ga = Evolution::new(
        FsmSpec::paper(kind),
        Evaluator::new(env.clone(), train).with_threads(4),
        GaConfig::paper(25, 3),
    );
    let evolved = ga.run(|_| ());

    let fresh = a2a::sim::paper_config_set(env.lattice, kind, 8, 60, 1234).unwrap();
    let eval = Evaluator::new(env, fresh).with_t_max(1000).with_threads(4);
    let published_report = eval.evaluate(&best_s_agent());
    let evolved_report = eval.evaluate(&evolved.best().genome);
    assert!(
        published_report.fitness <= evolved_report.fitness,
        "published {published_report:?} must not lose to a 25-generation run {evolved_report:?}"
    );
}

//! Cross-crate integration tests asserting the paper's headline claims at
//! reduced (CI-friendly) scale. The full-scale regenerations live in the
//! `a2a-bench` experiment binaries and EXPERIMENTS.md.

use a2a::analysis::experiments::density::{
    run_density_comparison, DensityExperiment, PAPER_TABLE1_S, PAPER_TABLE1_T,
    TABLE1_AGENT_COUNTS,
};
use a2a::analysis::experiments::{distances, grid33};
use a2a::prelude::*;

/// E6 (Table 1 / Fig. 5) at reduced scale: the paper's three headline
/// observations hold — T ≈ 2/3 S everywhere, the maximum sits at k = 4,
/// and the agents are completely successful.
#[test]
fn table1_shape_holds_at_reduced_scale() {
    let exp = DensityExperiment {
        m: 16,
        agent_counts: TABLE1_AGENT_COUNTS.to_vec(),
        n_random: 150,
        seed: 2013,
        t_max: 4000,
        threads: 4,
    };
    let cmp = run_density_comparison(&exp).expect("valid experiment");

    for (t, s) in cmp.t_grid.points.iter().zip(&cmp.s_grid.points) {
        assert!(t.is_complete(), "T must solve every config: {t:?}");
        assert!(s.is_complete(), "S must solve every config: {s:?}");
        assert!(t.times.mean < s.times.mean, "T faster at k={}", t.agents);
    }
    // Ratio band of Table 1 (0.600–0.706), with slack for the small set.
    for (k, r) in TABLE1_AGENT_COUNTS.iter().zip(cmp.ratios()) {
        assert!((0.5..0.8).contains(&r), "k={k}: ratio {r}");
    }
    // Maxima at k = 4 in both grids.
    for series in [&cmp.t_grid, &cmp.s_grid] {
        let max = series
            .points
            .iter()
            .max_by(|a, b| a.times.mean.partial_cmp(&b.times.mean).unwrap())
            .unwrap();
        assert_eq!(max.agents, 4, "{:?} maximum", series.kind);
    }
}

/// E6, quantitative: with a few hundred configurations the measured means
/// land close to the published Table 1 values.
#[test]
#[ignore = "slower quantitative check; run with --ignored"]
fn table1_values_are_close_to_paper() {
    let exp = DensityExperiment {
        m: 16,
        agent_counts: TABLE1_AGENT_COUNTS.to_vec(),
        n_random: 400,
        seed: 2013,
        t_max: 5000,
        threads: 8,
    };
    let cmp = run_density_comparison(&exp).expect("valid experiment");
    for ((point, paper), k) in cmp
        .t_grid
        .points
        .iter()
        .zip(PAPER_TABLE1_T)
        .zip(TABLE1_AGENT_COUNTS)
    {
        let rel = (point.times.mean - paper).abs() / paper;
        assert!(rel < 0.10, "T k={k}: measured {} vs paper {paper}", point.times.mean);
    }
    for ((point, paper), k) in cmp
        .s_grid
        .points
        .iter()
        .zip(PAPER_TABLE1_S)
        .zip(TABLE1_AGENT_COUNTS)
    {
        let rel = (point.times.mean - paper).abs() / paper;
        assert!(rel < 0.10, "S k={k}: measured {} vs paper {paper}", point.times.mean);
    }
}

/// E10: the fully packed field degenerates to pure information diffusion,
/// taking exactly diameter − 1 counted steps (paper: 15 in S, 9 in T).
#[test]
fn fully_packed_field_takes_diameter_steps() {
    for (kind, expected) in [(GridKind::Square, 15), (GridKind::Triangulate, 9)] {
        let lattice = Lattice::torus(16, 16);
        let placements: Vec<(Pos, Dir)> = lattice.positions().map(|p| (p, Dir::new(0))).collect();
        let out = Scenario::new(kind)
            .initial(InitialConfig::new(placements))
            .run()
            .expect("valid scenario");
        assert_eq!(out.t_comm, Some(expected), "{kind}");
    }
}

/// E2/E3: Fig. 2 and the Eq. (1)–(3) constants.
#[test]
fn fig2_and_formula_ratios() {
    let s = distances::survey(GridKind::Square, 3);
    let t = distances::survey(GridKind::Triangulate, 3);
    assert_eq!((s.diameter, t.diameter), (8, 5));
    assert!((s.mean - 4.0).abs() < 1e-12);
    assert!((t.mean - 3.09).abs() < 0.02);

    // Eq. (3): D^{T/S} → 0.666, mean^{T/S} → 0.775 for large n.
    assert!((a2a::grid::diameter_ratio(10) - 0.666).abs() < 0.01);
    assert!((a2a::grid::mean_distance_ratio(10) - 0.775).abs() < 0.005);
}

/// E9: the 33×33 comparison keeps the T < S ordering and reliability.
#[test]
fn grid33_ordering_is_preserved() {
    let r = grid33::run_grid33(10, 5, 4).expect("valid run");
    assert!(r.both_reliable());
    assert!(r.t_mean() < r.s_mean(), "T {} vs S {}", r.t_mean(), r.s_mean());
}

/// The three manually designed configurations of Sect. 4 are solved by
/// the published agents at every density where they are defined.
#[test]
fn manual_configurations_are_solved() {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let lattice = Lattice::torus(16, 16);
        for k in [2usize, 4, 8, 16] {
            let manual = [
                InitialConfig::queue_east(lattice, k),
                InitialConfig::queue_west(lattice, kind, k),
                InitialConfig::diagonal_spaced(lattice, kind, k),
            ];
            for (i, cfg) in manual.into_iter().flatten().enumerate() {
                let out = Scenario::new(kind)
                    .initial(cfg)
                    .horizon(5000)
                    .run()
                    .expect("valid scenario");
                assert!(
                    out.is_successful(),
                    "{kind}, k={k}, manual config #{i} unsolved"
                );
            }
        }
    }
}

/// Both published agents are completely successful over a mixed screen of
/// densities (the paper's reliability claim, reduced scale).
#[test]
fn published_agents_are_reliable_on_reduced_screen() {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let env = WorldConfig::paper(kind, 16);
        let report = a2a::ga::screen(
            &best_agent(kind),
            &env,
            &[2, 4, 8, 16, 32, 256],
            25,
            11,
            4000,
            4,
        )
        .expect("valid screen");
        assert!(report.is_reliable(), "{kind}: {report:?}");
    }
}

//! Integration tests of the facade API: the `Scenario` builder, prelude
//! and cross-layer plumbing.

use a2a::prelude::*;
use a2a::sim::{render_colors, render_snapshot};

#[test]
fn scenario_roundtrip_through_all_layers() {
    // grid → fsm → sim through the facade, no direct sub-crate imports
    // beyond the prelude.
    let mut world = Scenario::new(GridKind::Triangulate)
        .agents(8)
        .seed(42)
        .world()
        .expect("valid scenario");
    assert_eq!(world.agents().len(), 8);
    assert_eq!(world.lattice().len(), 256);
    let steps_before = world.time();
    world.step();
    assert_eq!(world.time(), steps_before + 1);
    assert!(world.check_invariants());
}

#[test]
fn deterministic_scenarios_agree() {
    let a = Scenario::new(GridKind::Square).agents(16).seed(5).run().unwrap();
    let b = Scenario::new(GridKind::Square).agents(16).seed(5).run().unwrap();
    assert_eq!(a, b);
    let c = Scenario::new(GridKind::Square).agents(16).seed(6).run().unwrap();
    // Different placements almost surely take a different time.
    assert!(a.t_comm != c.t_comm || a.steps != c.steps);
}

#[test]
fn rendering_is_consistent_with_state() {
    let world = Scenario::new(GridKind::Square).agents(3).seed(9).world().unwrap();
    let snap = render_snapshot(&world);
    assert!(snap.contains("SGRID"));
    // Three direction glyphs in the agent layer.
    let agent_layer: String = snap.lines().take(17).collect::<Vec<_>>().join("\n");
    let glyphs = agent_layer.matches(['>', '<', '^', 'v']).count();
    assert_eq!(glyphs, 3, "{agent_layer}");
    // No colours at t = 0.
    assert!(!render_colors(&world).contains('1'));
}

#[test]
fn evolved_behaviour_plugs_into_scenario() {
    use a2a::fsm::{Genome, MutationRates};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    // Mutate the published agent slightly; the scenario must accept it.
    let mut rng = SmallRng::seed_from_u64(1);
    let variant = a2a::fsm::offspring(&best_t_agent(), MutationRates::uniform(0.05), &mut rng);
    let out = Scenario::new(GridKind::Triangulate)
        .behaviour(variant.clone())
        .agents(8)
        .seed(3)
        .run()
        .expect("valid scenario");
    // A light mutation usually still solves the task; if not, the outcome
    // must still be well-formed.
    assert_eq!(out.agents, 8);
    assert!(out.informed <= 8);
    let _roundtrip: Genome = variant;
}

#[test]
fn scenario_rejects_wrong_grid_behaviour() {
    let err = Scenario::new(GridKind::Square)
        .behaviour(best_t_agent())
        .run()
        .unwrap_err();
    assert!(matches!(err, SimError::SpecMismatch(_)));
}

#[test]
fn prelude_surface_compiles_and_links() {
    // One item from every re-exported layer.
    let _kind: GridKind = GridKind::Triangulate;
    let _lattice = Lattice::torus(4, 4);
    let _genome = best_s_agent();
    let _cfg = WorldConfig::paper(GridKind::Square, 8);
    let _ = a2a::grid::diameter_formula(GridKind::Square, 4);
    let _ = a2a::analysis::f2(1.0);
    let _ = a2a::ga::default_threads();
}

//! Integration tests of the `a2a` command-line binary.

use std::process::Command;

fn a2a(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_a2a"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_lists_commands() {
    let out = a2a(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["simulate", "table1", "distances", "trace", "grid33", "evolve"] {
        assert!(text.contains(cmd), "missing {cmd} in help:\n{text}");
    }
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = a2a(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = a2a(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn simulate_solves_and_reports() {
    let out = a2a(&["simulate", "--grid", "t", "--agents", "8", "--seed", "5"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("solved"), "{text}");
    assert!(text.contains("8 agents"), "{text}");
}

#[test]
fn simulate_snapshots_render_layers() {
    let out = a2a(&["simulate", "--agents", "4", "--snapshots"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("colors"), "{text}");
    assert!(text.contains("visited"), "{text}");
}

#[test]
fn distances_prints_fig2_values() {
    let out = a2a(&["distances"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("D = 8"), "{text}");
    assert!(text.contains("D = 5"), "{text}");
    assert!(text.contains("D_T/S"), "{text}");
}

#[test]
fn table1_quick_run_prints_ratio_row() {
    let out = a2a(&["table1", "--configs", "3", "--seed", "1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("T-grid"), "{text}");
    assert!(text.contains("T/S"), "{text}");
    assert!(text.contains("paper reference"), "{text}");
}

#[test]
fn evolve_tiny_run_prints_genome() {
    let out = a2a(&[
        "evolve", "--grid", "s", "--generations", "3", "--configs", "4", "--agents", "4",
        "--threads", "1",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best evolved FSM"), "{text}");
    assert!(text.contains("genome digits"), "{text}");
}

#[test]
fn render_writes_svg_artifacts() {
    let dir = std::env::temp_dir().join("a2a_cli_render_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = a2a(&[
        "render", "--grid", "t", "--agents", "3", "--seed", "4", "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(entries.len(), 2, "field + paths SVGs");
    for e in entries {
        let content = std::fs::read_to_string(e.unwrap().path()).unwrap();
        assert!(content.starts_with("<svg"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decide_proves_solvability() {
    let out = a2a(&["decide", "--grid", "t", "--agents", "4", "--seed", "8"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PROVEN solvable"), "{text}");
}

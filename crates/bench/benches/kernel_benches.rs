//! World vs. FastWorld: the reference engine against the bit-packed batch
//! kernel on the two workloads that dominate wall-clock time — the GA
//! fitness evaluation (16×16, 16 agents, many configurations) and the
//! full-density 33×33 step (E9's field, maximal exchange pressure) —
//! plus the run-major vs. run-transposed engines on a full 64-run lane
//! (the pairing behind the DESIGN.md §11 engine-selection matrix).

use a2a_fsm::best_agent;
use a2a_grid::{Dir, GridKind, Lattice};
use a2a_sim::{
    run_to_completion, BatchRunner, FastWorld, InitialConfig, World, WorldConfig,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const T_MAX: u32 = 200;

fn fitness_configs(kind: GridKind, k: usize, n: usize) -> (WorldConfig, Vec<InitialConfig>) {
    let cfg = WorldConfig::paper(kind, 16);
    let mut rng = SmallRng::seed_from_u64(2013);
    let configs = (0..n)
        .map(|_| {
            InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)
                .expect("agents fit the field")
        })
        .collect();
    (cfg, configs)
}

/// The GA inner loop: one genome, 32 random 16×16 configurations with 16
/// agents, run to completion — reference engine vs. batch kernel.
fn bench_fitness_workload(c: &mut Criterion) {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let (cfg, configs) = fitness_configs(kind, 16, 32);
        let genome = best_agent(kind);
        let mut group =
            c.benchmark_group(format!("fitness_16x16_k16_{}", kind.label()));

        group.bench_function("world", |b| {
            b.iter(|| {
                for init in &configs {
                    let mut world = World::new(&cfg, genome.clone(), black_box(init))
                        .expect("valid world");
                    black_box(run_to_completion(&mut world, T_MAX));
                }
            });
        });

        group.bench_function("fastworld", |b| {
            let runner = BatchRunner::from_genome(&cfg, genome.clone(), T_MAX)
                .expect("valid environment");
            b.iter(|| {
                for init in &configs {
                    black_box(runner.outcome_for(black_box(init)).expect("valid placement"));
                }
            });
        });

        group.bench_function("multiworld", |b| {
            let runner = BatchRunner::from_genome(&cfg, genome.clone(), T_MAX)
                .expect("valid environment");
            b.iter(|| {
                black_box(runner.run_all(black_box(&configs)).expect("valid placement"));
            });
        });

        group.finish();
    }
}

/// Run-major vs. run-transposed on a full 64-run lane: the head-to-head
/// that keeps the DESIGN.md §11 engine-selection matrix honest. The
/// sliced engine is expected to trail here — that measurement is why
/// `run_all` routes every batch to `MultiWorld`.
fn bench_engine_lane(c: &mut Criterion) {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let (cfg, configs) = fitness_configs(kind, 16, 64);
        let genome = best_agent(kind);
        let runner = BatchRunner::from_genome(&cfg, genome, T_MAX)
            .expect("valid environment");
        assert!(runner.sliced_eligible(&configs), "64 uniform runs fill a lane");
        let mut group = c.benchmark_group(format!("lane_64runs_k16_{}", kind.label()));

        group.bench_function("multiworld", |b| {
            b.iter(|| {
                black_box(runner.run_all_multi(black_box(&configs)).expect("valid placement"));
            });
        });

        group.bench_function("slicedworld", |b| {
            b.iter(|| {
                black_box(runner.run_all_sliced(black_box(&configs)).expect("valid placement"));
            });
        });

        group.finish();
    }
}

fn packed_init(m: u16) -> InitialConfig {
    let lattice = Lattice::torus(m, m);
    InitialConfig::new(lattice.positions().map(|p| (p, Dir::new(0))).collect())
}

/// One synchronous step of the fully packed 33×33 field (E9): 1089 agents,
/// pure exchange pressure — the per-step cost ceiling of both engines.
fn bench_packed_33_step(c: &mut Criterion) {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let cfg = WorldConfig::paper(kind, 33);
        let genome = best_agent(kind);
        let mut group = c.benchmark_group(format!("packed_33x33_step_{}", kind.label()));

        group.bench_function("world", |b| {
            b.iter_batched_ref(
                || {
                    World::new(&cfg, genome.clone(), &packed_init(33)).expect("valid world")
                },
                |world| world.step(),
                BatchSize::SmallInput,
            );
        });

        group.bench_function("fastworld", |b| {
            b.iter_batched_ref(
                || {
                    FastWorld::new(&cfg, genome.clone(), &packed_init(33))
                        .expect("valid world")
                },
                |world| world.step(),
                BatchSize::SmallInput,
            );
        });

        group.finish();
    }
}

criterion_group!(benches, bench_fitness_workload, bench_engine_lane, bench_packed_33_step);
criterion_main!(benches);

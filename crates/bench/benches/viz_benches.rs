//! Benchmarks of the SVG renderers: a full 16×16 field snapshot and a
//! long trajectory plot.

use a2a_fsm::best_t_agent;
use a2a_grid::GridKind;
use a2a_sim::{record_trajectory, InitialConfig, World, WorldConfig};
use a2a_viz::{render_field, render_trajectory, Theme};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn prepared() -> (World, a2a_sim::Trajectory) {
    let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
    let mut rng = SmallRng::seed_from_u64(5);
    let init = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
    let mut world = World::new(&cfg, best_t_agent(), &init).unwrap();
    let (_, traj) = record_trajectory(&mut world, 1000);
    (world, traj)
}

fn bench_render_field(c: &mut Criterion) {
    let (world, _) = prepared();
    let theme = Theme::default();
    c.bench_function("svg_render_field_16x16", |b| {
        b.iter(|| render_field(black_box(&world), &theme));
    });
}

fn bench_render_trajectory(c: &mut Criterion) {
    let (world, traj) = prepared();
    let theme = Theme::default();
    c.bench_function("svg_render_trajectory_8_agents", |b| {
        b.iter(|| render_trajectory(world.lattice(), black_box(&traj), &theme));
    });
}

criterion_group!(benches, bench_render_field, bench_render_trajectory);
criterion_main!(benches);

//! Overhead of the observability layer — the "near-zero when disabled"
//! acceptance gate. Three angles:
//!
//! 1. the `event!` macro with everything off (must be ~a relaxed atomic
//!    load, no allocation),
//! 2. the same event with a `MemorySink` attached (the enabled cost),
//! 3. the instrumented fitness workload (16×16, k = 16) with metrics on
//!    vs. off — the end-to-end regression the issue bounds at < 2%.
//!
//! Level/sink state is process-global, so each benchmark sets it
//! explicitly and the group order keeps the disabled cases first.

use a2a_fsm::best_t_agent;
use a2a_grid::GridKind;
use a2a_obs::{Event, Level, Sink};
use a2a_sim::{BatchRunner, InitialConfig, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sink that only counts — measures dispatch cost without unbounded
/// accumulation (a `MemorySink` would grow by millions of events here).
#[derive(Debug, Default)]
struct CountingSink(AtomicU64);

impl Sink for CountingSink {
    fn record(&self, event: &Event) {
        black_box(event);
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    fn verbosity(&self) -> Level {
        Level::Info
    }
}

fn bench_event_macro(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_event");

    a2a_obs::set_level(Level::Off);
    a2a_obs::set_metrics(false);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            a2a_obs::event!(Level::Info, "bench.noop",
                "i" => black_box(42u64), "label" => "payload");
        });
    });

    // Sinks are attached for the process lifetime; later groups turn
    // dispatch back off by resetting the level ceiling.
    a2a_obs::attach_sink(Arc::new(CountingSink::default()));
    group.bench_function("counting_sink", |b| {
        b.iter(|| {
            a2a_obs::event!(Level::Info, "bench.noop",
                "i" => black_box(42u64), "label" => "payload");
        });
    });
    a2a_obs::set_level(Level::Off);

    group.finish();
}

/// Flight-recorder cost, both sides of the gate: `flight::record` with
/// the recorder disabled must stay branch-free-cheap (the acceptance
/// bound is ≤ 1 ns/event — one relaxed load and a predictable branch),
/// and the enabled path must stay in the tens of nanoseconds (interning
/// lookup + four relaxed stores + one release store into the ring).
fn bench_flight(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_flight");

    a2a_obs::flight::disable();
    group.bench_function("record_disabled", |b| {
        b.iter(|| {
            a2a_obs::flight::record(
                a2a_obs::flight::Kind::Event,
                "bench.flight",
                black_box(1),
                black_box(2),
            );
        });
    });

    a2a_obs::flight::set_capacity(1024);
    a2a_obs::flight::enable();
    group.bench_function("record_enabled", |b| {
        b.iter(|| {
            a2a_obs::flight::record(
                a2a_obs::flight::Kind::Event,
                "bench.flight",
                black_box(1),
                black_box(2),
            );
        });
    });
    a2a_obs::flight::disable();

    // The `event!` macro with the level off but the flight recorder on:
    // events keep flowing into the black box with no sink attached.
    a2a_obs::set_level(Level::Off);
    a2a_obs::flight::enable();
    group.bench_function("event_macro_flight_only", |b| {
        b.iter(|| {
            a2a_obs::event!(Level::Info, "bench.noop",
                "i" => black_box(42u64), "label" => "payload");
        });
    });
    a2a_obs::flight::disable();

    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_registry");
    a2a_obs::set_metrics(true);
    let counter = a2a_obs::global().counter("bench.counter");
    let hist = a2a_obs::global().histogram("bench.histogram");
    group.bench_function("counter_incr", |b| b.iter(|| counter.add(black_box(1))));
    group.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(12345)));
    });
    a2a_obs::set_metrics(false);
    group.finish();
}

/// The acceptance workload: one genome over 32 random 16×16/k=16
/// configurations on the batch kernel, instrumentation off vs. on.
fn bench_instrumented_fitness(c: &mut Criterion) {
    let kind = GridKind::Triangulate;
    let cfg = WorldConfig::paper(kind, 16);
    let mut rng = SmallRng::seed_from_u64(2013);
    let configs: Vec<InitialConfig> = (0..32)
        .map(|_| {
            InitialConfig::random(cfg.lattice, kind, 16, &[], &mut rng)
                .expect("agents fit the field")
        })
        .collect();
    let runner =
        BatchRunner::from_genome(&cfg, best_t_agent(), 200).expect("valid environment");
    let workload = |runner: &BatchRunner, configs: &[InitialConfig]| {
        for init in configs {
            black_box(runner.outcome_for(black_box(init)).expect("valid placement"));
        }
    };

    let mut group = c.benchmark_group("fitness_16x16_k16_obs");

    a2a_obs::set_level(Level::Off);
    a2a_obs::set_metrics(false);
    group.bench_function("disabled", |b| b.iter(|| workload(&runner, &configs)));

    a2a_obs::set_metrics(true);
    group.bench_function("metrics_on", |b| b.iter(|| workload(&runner, &configs)));
    a2a_obs::set_metrics(false);

    group.finish();
}

criterion_group!(
    benches,
    bench_event_macro,
    bench_flight,
    bench_registry,
    bench_instrumented_fitness
);
criterion_main!(benches);

//! Microbenchmarks of the simulation core: stepping, exchange, world
//! construction, FSM lookup and BFS distances — the building blocks every
//! experiment and GA generation is made of.

use a2a_fsm::{best_agent, Percept};
use a2a_grid::{bfs_distances, GridKind, Lattice, Pos};
use a2a_sim::{run_to_completion, InitialConfig, World, WorldConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn world_with(kind: GridKind, k: usize, seed: u64) -> World {
    let cfg = WorldConfig::paper(kind, 16);
    let mut rng = SmallRng::seed_from_u64(seed);
    let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)
        .expect("agents fit the field");
    World::new(&cfg, best_agent(kind), &init).expect("valid world")
}

/// One CA step, 16 agents on 16×16 — S vs T (the T step visits 6
/// neighbours per exchange instead of 4).
fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_step_16_agents");
    for kind in [GridKind::Square, GridKind::Triangulate] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched_ref(
                || world_with(kind, 16, 42),
                |world| {
                    for _ in 0..50 {
                        world.step();
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The degenerate fully packed field: pure exchange, no movement — the
/// upper bound of per-step communication cost.
fn bench_packed_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("fully_packed_step_256_agents");
    for kind in [GridKind::Square, GridKind::Triangulate] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched_ref(
                || {
                    let lattice = Lattice::torus(16, 16);
                    let placements: Vec<_> = lattice
                        .positions()
                        .map(|p| (p, a2a_grid::Dir::new(0)))
                        .collect();
                    let cfg = WorldConfig::paper(kind, 16);
                    World::new(&cfg, best_agent(kind), &InitialConfig::new(placements))
                        .expect("valid world")
                },
                |world| world.step(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The 33×33 fully packed field: 1089 agents exercise the heap-backed
/// communication vectors (> 256 bits), the InfoSet slow path.
fn bench_packed_exchange_33(c: &mut Criterion) {
    let mut group = c.benchmark_group("fully_packed_step_33x33_1089_agents");
    group.sample_size(20);
    for kind in [GridKind::Square, GridKind::Triangulate] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched_ref(
                || {
                    let lattice = Lattice::torus(33, 33);
                    let placements: Vec<_> = lattice
                        .positions()
                        .map(|p| (p, a2a_grid::Dir::new(0)))
                        .collect();
                    let cfg = WorldConfig::with_lattice(kind, lattice);
                    World::new(&cfg, best_agent(kind), &InitialConfig::new(placements))
                        .expect("valid world")
                },
                |world| world.step(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// End-to-end: one full communication run, 16 agents (the unit of work a
/// fitness evaluation repeats ~1000×).
fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run_16_agents");
    for kind in [GridKind::Square, GridKind::Triangulate] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched_ref(
                || world_with(kind, 16, 7),
                |world| black_box(run_to_completion(world, 1000)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// World assembly (allocation + placement + the free exchange).
fn bench_world_construction(c: &mut Criterion) {
    c.bench_function("world_construction_16_agents", |b| {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let mut rng = SmallRng::seed_from_u64(3);
        let init = InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng).unwrap();
        let genome = best_agent(GridKind::Triangulate);
        b.iter(|| World::new(&cfg, genome.clone(), black_box(&init)).expect("valid world"));
    });
}

/// Raw FSM table lookup (the inner loop of the act phase).
fn bench_fsm_lookup(c: &mut Criterion) {
    let genome = best_agent(GridKind::Triangulate);
    c.bench_function("fsm_lookup_all_inputs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for x in 0..8usize {
                for s in 0..4u8 {
                    let e = genome.lookup(Percept::decode(black_box(x), 2), s);
                    acc += u32::from(e.next_state);
                }
            }
            acc
        });
    });
}

/// BFS distance field on the 16×16 tori (used by Fig. 2 regeneration and
/// formula validation).
fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_distances_16x16");
    let lattice = Lattice::torus(16, 16);
    for kind in [GridKind::Square, GridKind::Triangulate] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| bfs_distances(lattice, kind, black_box(Pos::new(3, 3))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_step,
    bench_packed_exchange,
    bench_packed_exchange_33,
    bench_full_run,
    bench_world_construction,
    bench_fsm_lookup,
    bench_bfs,
);
criterion_main!(benches);

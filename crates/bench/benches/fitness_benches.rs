//! Adaptive fitness pipeline vs. the PR-1 baseline: whole-population
//! evaluation (the acceptance workload at reduced config count for
//! iteration speed), the cold/warm cache split, and the pruned
//! selection step. The recorded full-scale numbers land in
//! `BENCH_fitness.json` via `all_experiments`; this harness is for
//! relative comparison and CI's `--test` smoke.

use a2a_bench::fitness::{baseline_population_eval, standard_workload, STANDARD_POPULATION};
use a2a_fsm::Genome;
use a2a_ga::Evaluator;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Duration;

const BENCH_CONFIGS: usize = 30;
const THREADS: usize = 2;

fn bench_population_eval(c: &mut Criterion) {
    let w = standard_workload(BENCH_CONFIGS, 2013);
    let mut group = c.benchmark_group("fitness_pop20");
    group.sample_size(10).measurement_time(Duration::from_secs(8));

    group.bench_function("baseline_fresh_worlds", |b| {
        b.iter(|| black_box(baseline_population_eval(&w, THREADS)));
    });

    // Cold: every iteration starts with an empty cache (the first epoch
    // of a run) but keeps the persistent pool + world arenas.
    group.bench_function("adaptive_cold", |b| {
        b.iter_batched(
            || Evaluator::new(w.config.clone(), w.configs.clone()).with_threads(THREADS),
            |evaluator| black_box(evaluator.evaluate_all(&w.population)),
            BatchSize::LargeInput,
        );
    });

    // Warm: the island-epoch case — the pool was already evaluated.
    let prewarmed =
        Evaluator::new(w.config.clone(), w.configs.clone()).with_threads(THREADS);
    let _ = prewarmed.evaluate_all(&w.population);
    group.bench_function("adaptive_warm_cache", |b| {
        b.iter(|| black_box(prewarmed.evaluate_all(&w.population)));
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let w = standard_workload(BENCH_CONFIGS, 2013);
    let evaluator = Evaluator::new(w.config.clone(), w.configs.clone()).with_threads(THREADS);
    let incumbents: Vec<f64> =
        evaluator.evaluate_all(&w.population).iter().map(|r| r.fitness).collect();
    let pool_digits: HashSet<String> =
        w.population.iter().map(Genome::to_digits).collect();
    let fresh: Vec<Genome> =
        w.children.iter().filter(|g| !pool_digits.contains(&g.to_digits())).cloned().collect();

    let mut group = c.benchmark_group("fitness_selection");
    group.sample_size(10).measurement_time(Duration::from_secs(8));

    // Exhaustive: every child runs the full configuration set.
    group.bench_function("children_exhaustive", |b| {
        b.iter_batched(
            || Evaluator::new(w.config.clone(), w.configs.clone()).with_threads(THREADS),
            |cold| black_box(cold.evaluate_all(&fresh)),
            BatchSize::LargeInput,
        );
    });

    // Pruned: hopeless children stop after a provably sufficient prefix.
    group.bench_function("children_pruned", |b| {
        b.iter_batched(
            || {
                let cold =
                    Evaluator::new(w.config.clone(), w.configs.clone()).with_threads(THREADS);
                // Prime only the incumbents (as in a real generation).
                let _ = cold.evaluate_all(&w.population);
                cold
            },
            |cold| black_box(cold.evaluate_selection(&fresh, STANDARD_POPULATION, &incumbents)),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_population_eval, bench_selection);
criterion_main!(benches);

//! Benchmarks of the experiment-level units: one Table 1 measurement
//! point (reduced configuration count), one GA generation and a
//! reliability screen — so regressions in experiment wall-time are caught
//! before a full regeneration run.

use a2a_analysis::experiments::density::{run_series, DensityExperiment};
use a2a_fsm::{best_agent, FsmSpec};
use a2a_ga::{Evaluator, Evolution, GaConfig};
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// One Table 1 measurement point: 20 configurations at k = 16.
fn bench_table1_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_point_k16_20cfg");
    group.sample_size(20);
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let exp = DensityExperiment {
            m: 16,
            agent_counts: vec![16],
            n_random: 20,
            seed: 1,
            t_max: 1000,
            threads: 1, // single-threaded: measure the work, not the pool
        };
        let genome = best_agent(kind);
        group.bench_function(kind.label(), |b| {
            b.iter(|| run_series(kind, black_box(&genome), &exp).expect("valid experiment"));
        });
    }
    group.finish();
}

/// One full fitness evaluation (the GA's unit of work): one genome over
/// 50 configurations of 8 agents.
fn bench_fitness_evaluation(c: &mut Criterion) {
    let kind = GridKind::Triangulate;
    let env = WorldConfig::paper(kind, 16);
    let configs = paper_config_set(env.lattice, kind, 8, 50, 5).unwrap();
    let evaluator = Evaluator::new(env, configs).with_threads(1);
    let genome = best_agent(kind);
    let mut group = c.benchmark_group("fitness_evaluation_8_agents_50cfg");
    group.sample_size(20);
    group.bench_function("published_t_agent", |b| {
        b.iter(|| evaluator.evaluate(black_box(&genome)));
    });
    group.finish();
}

/// A tiny but complete evolution run (pool 20, 3 generations, 10
/// configurations) — the generational overhead on top of raw fitness.
fn bench_ga_generations(c: &mut Criterion) {
    let kind = GridKind::Square;
    let env = WorldConfig::paper(kind, 16);
    let configs = paper_config_set(env.lattice, kind, 8, 10, 9).unwrap();
    let mut group = c.benchmark_group("ga_3_generations_10cfg");
    group.sample_size(10);
    group.bench_function("pool20", |b| {
        b.iter(|| {
            let ga = Evolution::new(
                FsmSpec::paper(kind),
                Evaluator::new(env.clone(), configs.clone()).with_threads(1),
                GaConfig::paper(3, 11),
            );
            black_box(ga.run(|_| ()))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_point,
    bench_fitness_evaluation,
    bench_ga_generations,
);
criterion_main!(benches);

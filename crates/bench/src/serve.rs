//! Load harness for the `a2a-serve` service: hammers an in-process
//! server with concurrent tiny evolution jobs, counts every admission
//! decision, and distills the run into the sealed `BENCH_serve.json`
//! snapshot (schema `a2a-obs/serve-bench/v1`, gated in CI by
//! `obs_validate --serve`).
//!
//! Two deterministic probe phases follow the stochastic load phase, so
//! the artifact's backpressure/quota evidence never depends on thread
//! timing: a one-slot server with a pinned executor *must* answer `429
//! queue_full`, and a one-queued-job tenant cap *must* answer `429
//! tenant_quota`.

use a2a_obs::json::Json;
use a2a_obs::schema::{self, SERVE_BENCH_SCHEMA};
use a2a_serve::{client, QueueConfig, ServeConfig, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-phase shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Jobs to push through the service (the artifact wants ≥ 1000).
    pub jobs: usize,
    /// Concurrent submitter threads.
    pub clients: usize,
    /// Distinct tenants cycling over the jobs.
    pub tenants: usize,
    /// Global queue capacity (small on purpose: backpressure is part
    /// of the measurement).
    pub queue_capacity: usize,
    /// Per-tenant queued-jobs cap.
    pub tenant_max_queued: usize,
    /// Executor threads in the server under test.
    pub executors: usize,
    /// Scratch directory for the durable job stores.
    pub store_root: std::path::PathBuf,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            jobs: 1000,
            clients: 16,
            tenants: 4,
            queue_capacity: 8,
            tenant_max_queued: 4,
            executors: 8,
            store_root: std::env::temp_dir()
                .join(format!("a2a_serve_bench_{}", std::process::id())),
        }
    }
}

#[derive(Debug, Default)]
struct Tally {
    accepted: AtomicU64,
    completed: AtomicU64,
    lost: AtomicU64,
    duplicated: AtomicU64,
    queue_full_429: AtomicU64,
    quota_429: AtomicU64,
    /// `429`s whose reply was missing `Retry-After` (must stay 0).
    naked_429: AtomicU64,
}

fn tiny_job(id: &str, tenant: &str, seed: u64) -> String {
    Json::object()
        .with("tenant", tenant)
        .with("id", id)
        .with("seed", seed)
        .with("m", 4u64)
        .with("k", 2u64)
        .with("configs", 1u64)
        .with("generations", 1u64)
        .with("population", 2u64)
        .with("t_max", 100u64)
        .to_string()
}

/// Submits one job until accepted, then waits for its result; returns
/// the accept→complete latency in milliseconds.
fn drive_job(addr: &str, id: &str, tenant: &str, seed: u64, tally: &Tally) -> Result<f64, String> {
    let body = tiny_job(id, tenant, seed);
    let accepted_at = loop {
        let reply = client::post(addr, "/jobs", &body).map_err(|e| format!("POST: {e}"))?;
        match reply.status {
            202 => break Instant::now(),
            409 => {
                // A refused submission must leave no durable trace; an
                // id that "already exists" means the service invented a
                // duplicate of a shed job.
                tally.duplicated.fetch_add(1, Ordering::Relaxed);
                break Instant::now();
            }
            429 => {
                if reply.body.contains("tenant_quota") {
                    tally.quota_429.fetch_add(1, Ordering::Relaxed);
                } else {
                    tally.queue_full_429.fetch_add(1, Ordering::Relaxed);
                }
                if reply.header("retry-after").is_none() {
                    tally.naked_429.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            500 | 503 => std::thread::sleep(Duration::from_millis(5)),
            other => return Err(format!("job {id}: unexpected status {other}: {}", reply.body)),
        }
    };
    tally.accepted.fetch_add(1, Ordering::Relaxed);

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = client::get(addr, &format!("/jobs/{id}/result"))
            .map_err(|e| format!("GET result: {e}"))?;
        if reply.status == 200 {
            tally.completed.fetch_add(1, Ordering::Relaxed);
            return Ok(accepted_at.elapsed().as_secs_f64() * 1e3);
        }
        if Instant::now() > deadline {
            tally.lost.fetch_add(1, Ordering::Relaxed);
            return Err(format!("job {id} never completed: {}", reply.body));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Deterministic `429` probes on a dedicated one-executor server: a
/// long-running hog pins the executor, the one queue slot fills, and
/// the next submissions must shed — first on capacity, then (with the
/// queue widened per-tenant) on the tenant cap.
fn probe_rejections(store: &std::path::Path, tally: &Tally) -> Result<(), String> {
    let cfg = ServeConfig {
        store_root: store.to_path_buf(),
        queue: QueueConfig { capacity: 1, tenant_max_queued: 1, tenant_max_running: 1 },
        executors: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).map_err(|e| format!("probe server: {e}"))?;
    let addr = server.addr().to_string();

    let hog = Json::object()
        .with("tenant", "hog")
        .with("id", "hog")
        .with("m", 8u64)
        .with("k", 4u64)
        .with("configs", 2u64)
        .with("generations", 1_000_000u64)
        .with("population", 4u64)
        .with("t_max", 300u64)
        .to_string();
    let reply = client::post(&addr, "/jobs", &hog).map_err(|e| e.to_string())?;
    if reply.status != 202 {
        return Err(format!("hog refused: {}", reply.body));
    }
    let wait = Instant::now();
    loop {
        let running = client::get(&addr, "/healthz")
            .ok()
            .and_then(|r| r.json().ok())
            .and_then(|d| d.get("running").and_then(Json::as_f64))
            .unwrap_or(0.0);
        if running >= 1.0 {
            break;
        }
        if wait.elapsed() > Duration::from_secs(10) {
            return Err("hog never started running".to_string());
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Queue slot 1/1: a *different* tenant fills it (the hog tenant is
    // at its own queued cap of 0 used / 1 max — either works, but a
    // second tenant keeps the two refusal kinds cleanly separated).
    let filler = tiny_job("filler", "filler-tenant", 1);
    let reply = client::post(&addr, "/jobs", &filler).map_err(|e| e.to_string())?;
    if reply.status != 202 {
        return Err(format!("filler refused: {}", reply.body));
    }
    // Capacity exhausted → queue_full, with Retry-After.
    let shed = client::post(&addr, "/jobs", &tiny_job("shed", "third", 2))
        .map_err(|e| e.to_string())?;
    if shed.status != 429 || !shed.body.contains("queue_full") {
        return Err(format!("expected queue_full 429, got {}: {}", shed.status, shed.body));
    }
    tally.queue_full_429.fetch_add(1, Ordering::Relaxed);
    if shed.header("retry-after").is_none() {
        tally.naked_429.fetch_add(1, Ordering::Relaxed);
    }
    server.stop();

    // Second probe server: roomy queue, tight tenant cap.
    let cfg = ServeConfig {
        store_root: store.join("quota"),
        queue: QueueConfig { capacity: 64, tenant_max_queued: 1, tenant_max_running: 1 },
        executors: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).map_err(|e| format!("quota server: {e}"))?;
    let addr = server.addr().to_string();
    let hog = Json::object()
        .with("tenant", "greedy")
        .with("id", "hog2")
        .with("m", 8u64)
        .with("k", 4u64)
        .with("configs", 2u64)
        .with("generations", 1_000_000u64)
        .with("population", 4u64)
        .with("t_max", 300u64)
        .to_string();
    if client::post(&addr, "/jobs", &hog).map_err(|e| e.to_string())?.status != 202 {
        return Err("quota hog refused".to_string());
    }
    let wait = Instant::now();
    while client::get(&addr, "/healthz")
        .ok()
        .and_then(|r| r.json().ok())
        .and_then(|d| d.get("running").and_then(Json::as_f64))
        .unwrap_or(0.0)
        < 1.0
    {
        if wait.elapsed() > Duration::from_secs(10) {
            return Err("quota hog never started".to_string());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    if client::post(&addr, "/jobs", &tiny_job("q1", "greedy", 3))
        .map_err(|e| e.to_string())?
        .status
        != 202
    {
        return Err("greedy's first queued job refused".to_string());
    }
    let capped = client::post(&addr, "/jobs", &tiny_job("q2", "greedy", 4))
        .map_err(|e| e.to_string())?;
    if capped.status != 429 || !capped.body.contains("tenant_quota") {
        return Err(format!("expected tenant_quota 429, got {}: {}", capped.status, capped.body));
    }
    tally.quota_429.fetch_add(1, Ordering::Relaxed);
    if capped.header("retry-after").is_none() {
        tally.naked_429.fetch_add(1, Ordering::Relaxed);
    }
    server.stop();
    Ok(())
}

/// Runs the whole measurement and returns the sealed snapshot.
///
/// # Errors
///
/// Any transport failure, refused probe, or lost job.
pub fn run_load(cfg: &LoadConfig) -> Result<Json, String> {
    let _ = std::fs::remove_dir_all(&cfg.store_root);
    let tally = Arc::new(Tally::default());

    let server = Server::start(ServeConfig {
        store_root: cfg.store_root.join("load"),
        queue: QueueConfig {
            capacity: cfg.queue_capacity,
            tenant_max_queued: cfg.tenant_max_queued,
            tenant_max_running: cfg.executors,
        },
        executors: cfg.executors,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("load server: {e}"))?;
    let addr = server.addr().to_string();

    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..cfg.clients {
        let addr = addr.clone();
        let tally = Arc::clone(&tally);
        let (jobs, clients, tenants) = (cfg.jobs, cfg.clients, cfg.tenants);
        handles.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut latencies = Vec::new();
            for i in (c..jobs).step_by(clients) {
                let id = format!("load-{i}");
                let tenant = format!("tenant-{}", i % tenants);
                latencies.push(drive_job(&addr, &id, &tenant, i as u64, &tally)?);
            }
            Ok(latencies)
        }));
    }
    let mut latencies: Vec<f64> = Vec::with_capacity(cfg.jobs);
    for h in handles {
        latencies.extend(h.join().map_err(|_| "client thread panicked".to_string())??);
    }
    let elapsed = started.elapsed();
    server.stop();

    probe_rejections(&cfg.store_root.join("probe"), &tally)?;

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let accepted = tally.accepted.load(Ordering::Relaxed);
    let completed = tally.completed.load(Ordering::Relaxed);
    let snapshot = schema::seal(
        Json::object()
            .with("schema", SERVE_BENCH_SCHEMA)
            .with(
                "workload",
                Json::object()
                    .with("jobs", cfg.jobs as u64)
                    .with("tenants", cfg.tenants as u64)
                    .with("clients", cfg.clients as u64),
            )
            .with(
                "jobs",
                Json::object()
                    .with("submitted", accepted)
                    .with("completed", completed)
                    .with("lost", tally.lost.load(Ordering::Relaxed))
                    .with("duplicated", tally.duplicated.load(Ordering::Relaxed)),
            )
            .with(
                "backpressure",
                Json::object()
                    .with("rejected_429", tally.queue_full_429.load(Ordering::Relaxed))
                    .with("retry_after", tally.naked_429.load(Ordering::Relaxed) == 0),
            )
            .with(
                "quota",
                Json::object().with("rejected_429", tally.quota_429.load(Ordering::Relaxed)),
            )
            .with(
                "throughput",
                Json::object()
                    .with("jobs_per_sec", completed as f64 / elapsed.as_secs_f64())
                    .with("elapsed_us", elapsed.as_micros() as f64),
            )
            .with(
                "latency_ms",
                Json::object()
                    .with("p50", percentile(&latencies, 0.50))
                    .with("p90", percentile(&latencies, 0.90))
                    .with("p99", percentile(&latencies, 0.99)),
            ),
    );
    let _ = std::fs::remove_dir_all(&cfg.store_root);
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down load run must already produce a snapshot that
    /// passes the CI gate (the full 1000-job artifact just runs longer).
    #[test]
    fn small_load_run_seals_a_valid_snapshot() {
        let cfg = LoadConfig {
            jobs: 40,
            clients: 8,
            tenants: 4,
            queue_capacity: 4,
            tenant_max_queued: 2,
            executors: 4,
            store_root: std::env::temp_dir()
                .join(format!("a2a_serve_bench_test_{}", std::process::id())),
        };
        let doc = run_load(&cfg).expect("load run succeeds");
        schema::validate_serve_snapshot(&doc).expect("snapshot passes the gate");
    }
}

//! Process-mode driver and throughput measurement for the campaign
//! engine (`a2a_run::campaign`): spawns N shard worker processes of the
//! `campaign_run` binary against one store, supervises them crash-only
//! (a dead shard is respawned and resumes from its durable deltas), and
//! distills the interleaved 1-shard vs N-shard measurement into the
//! sealed `BENCH_campaign.json` snapshot (schema
//! `a2a-obs/campaign-bench/v1`) gated in CI by `obs_validate
//! --campaign`.
//!
//! Honest-measurement notes (the PR 6/8 conventions):
//!
//! * the two arms are **interleaved** (single, sharded, single,
//!   sharded), each rep on a fresh store, and each arm reports its
//!   minimum elapsed time — ambient noise inflates both arms equally
//!   and the minimum discards it;
//! * every shard of both arms runs **one worker thread**, so the
//!   ratio measures process sharding itself, not thread-count
//!   asymmetry;
//! * the ≥ 2× shard-scaling gate is armed by the validator only when
//!   the host actually has ≥ 4 cores — a single-core runner records
//!   the ratio without pretending to bind it.

use a2a_grid::GridKind;
use a2a_obs::json::Json;
use a2a_obs::schema::{self, CAMPAIGN_BENCH_SCHEMA};
use a2a_run::campaign::{coordinate, CampaignOutcome, CampaignSpec, CampaignStore, NicheKey};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How often a dead shard may be respawned before the campaign is
/// declared crash-looping.
const MAX_RESPAWNS_PER_SHARD: usize = 4;

/// Parsed niche-grid parameters of a campaign invocation.
#[derive(Debug, Clone)]
pub struct CampaignParams {
    /// Grid kinds (`--grids s,t`).
    pub grids: Vec<GridKind>,
    /// Field edge lengths (`--m 8`).
    pub ms: Vec<u16>,
    /// Agent counts (`--k 4,8`).
    pub ks: Vec<usize>,
    /// Worker shard processes (`--shards`).
    pub shards: usize,
    /// Synchronous rounds (`--rounds`).
    pub rounds: usize,
    /// Base candidate budget per niche per round (`--batch`).
    pub batch: usize,
    /// Seeded random configurations per niche (`--configs`).
    pub configs: usize,
    /// Simulation horizon (`--t-max`).
    pub t_max: u32,
    /// Campaign seed (`--seed`).
    pub seed: u64,
}

impl Default for CampaignParams {
    fn default() -> Self {
        Self {
            grids: vec![GridKind::Square, GridKind::Triangulate],
            ms: vec![8],
            ks: vec![4, 6, 8, 10],
            shards: 2,
            rounds: 3,
            batch: 4,
            configs: 6,
            t_max: 200,
            seed: 2013,
        }
    }
}

/// Parses a comma-separated grid list (`s`, `t`).
///
/// # Errors
///
/// An unknown grid letter.
pub fn parse_grids(arg: &str) -> Result<Vec<GridKind>, String> {
    arg.split(',')
        .map(|p| match p.trim() {
            "s" | "S" => Ok(GridKind::Square),
            "t" | "T" => Ok(GridKind::Triangulate),
            other => Err(format!("unknown grid `{other}` (use s,t)")),
        })
        .collect()
}

/// Parses a comma-separated numeric list.
///
/// # Errors
///
/// A non-numeric element.
pub fn parse_list<T: std::str::FromStr>(arg: &str, flag: &str) -> Result<Vec<T>, String> {
    arg.split(',')
        .map(|p| p.trim().parse().map_err(|_| format!("bad {flag} element `{p}`")))
        .collect()
}

impl CampaignParams {
    /// The campaign spec: the (grid, m, k) cross product in canonical
    /// order.
    #[must_use]
    pub fn spec(&self) -> CampaignSpec {
        let mut niches = Vec::new();
        for &kind in &self.grids {
            for &m in &self.ms {
                for &k in &self.ks {
                    niches.push(NicheKey { kind, m, k });
                }
            }
        }
        CampaignSpec {
            niches,
            shards: self.shards,
            rounds: self.rounds,
            batch: self.batch,
            configs: self.configs,
            t_max: self.t_max,
            seed: self.seed,
        }
    }

    /// The canonical argument list reproducing these parameters (what
    /// the parent passes to shard worker children).
    #[must_use]
    pub fn to_args(&self, store: &Path, threads: usize) -> Vec<String> {
        let grids: Vec<&str> = self
            .grids
            .iter()
            .map(|g| match g {
                GridKind::Square => "s",
                GridKind::Triangulate => "t",
            })
            .collect();
        let join = |v: Vec<String>| v.join(",");
        vec![
            "--store".into(),
            store.display().to_string(),
            "--grids".into(),
            grids.join(","),
            "--m".into(),
            join(self.ms.iter().map(ToString::to_string).collect()),
            "--k".into(),
            join(self.ks.iter().map(ToString::to_string).collect()),
            "--shards".into(),
            self.shards.to_string(),
            "--rounds".into(),
            self.rounds.to_string(),
            "--batch".into(),
            self.batch.to_string(),
            "--configs".into(),
            self.configs.to_string(),
            "--t-max".into(),
            self.t_max.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--threads".into(),
            threads.to_string(),
            "--quiet".into(),
        ]
    }
}

/// One supervised shard child.
#[derive(Debug)]
struct ShardChild {
    shard: usize,
    child: Option<Child>,
    respawns: usize,
    done: bool,
}

/// Outcome of a process-mode campaign run.
#[derive(Debug)]
pub struct ProcessCampaign {
    /// The merged outcome (identical to an inline run of the same spec).
    pub outcome: CampaignOutcome,
    /// Shard children respawned after dying mid-campaign.
    pub respawns: usize,
    /// Wall-clock of the whole campaign (spawn → final seal).
    pub elapsed: Duration,
}

fn spawn_shard(
    exe: &Path,
    params: &CampaignParams,
    store: &Path,
    threads: usize,
    shard: usize,
    clear_fault_env: bool,
) -> Result<Child, String> {
    let mut cmd = Command::new(exe);
    cmd.args(params.to_args(store, threads))
        .arg("--shard-worker")
        .arg(shard.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if clear_fault_env {
        // A respawned shard must not re-arm the fault schedule that
        // just killed it — resume is the point of the respawn.
        cmd.env_remove("A2A_FAULT");
    }
    cmd.spawn().map_err(|e| format!("cannot spawn shard {shard}: {e}"))
}

/// Runs a campaign with `spec.shards` worker processes of `exe`
/// (the `campaign_run` binary itself, invoked in `--shard-worker`
/// mode), supervising them crash-only: a shard that exits before the
/// campaign is complete is respawned (with `A2A_FAULT` scrubbed) and
/// resumes from its durable deltas. `on_respawn` is called with the
/// shard index and exit code of every death.
///
/// # Errors
///
/// Spawn failures, a crash-looping shard, store I/O failures or a
/// wedged barrier.
pub fn run_process_campaign(
    exe: &Path,
    params: &CampaignParams,
    store_root: &Path,
    threads: usize,
    mut on_respawn: impl FnMut(usize, Option<i32>),
) -> Result<ProcessCampaign, String> {
    let spec = params.spec();
    let store = CampaignStore::new(store_root);
    store.init(&spec)?;
    let started = Instant::now();
    let mut children: Vec<ShardChild> = (0..spec.shards)
        .map(|shard| {
            spawn_shard(exe, params, store_root, threads, shard, false).map(|child| ShardChild {
                shard,
                child: Some(child),
                respawns: 0,
                done: false,
            })
        })
        .collect::<Result<_, _>>()?;
    let mut respawns = 0usize;

    let outcome = coordinate(&store, &spec, |_round| {
        for slot in &mut children {
            if slot.done {
                continue;
            }
            let Some(child) = slot.child.as_mut() else { continue };
            match child.try_wait() {
                Ok(None) => {}
                Ok(Some(status)) if status.success() => {
                    slot.done = true;
                    slot.child = None;
                }
                Ok(Some(status)) => {
                    // Mid-campaign death (SIGKILL, injected fault,
                    // panic): crash-only supervision respawns it and
                    // the durable deltas make the redo bit-identical.
                    slot.respawns += 1;
                    respawns += 1;
                    if slot.respawns > MAX_RESPAWNS_PER_SHARD {
                        return Err(format!(
                            "shard {} is crash-looping ({} respawns)",
                            slot.shard, slot.respawns
                        ));
                    }
                    on_respawn(slot.shard, status.code());
                    slot.child =
                        Some(spawn_shard(exe, params, store_root, threads, slot.shard, true)?);
                }
                Err(e) => return Err(format!("cannot reap shard {}: {e}", slot.shard)),
            }
        }
        Ok(())
    });

    // Reap every child regardless of how coordination ended.
    for slot in &mut children {
        if let Some(mut child) = slot.child.take() {
            if outcome.is_err() {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
    }
    Ok(ProcessCampaign { outcome: outcome?, respawns, elapsed: started.elapsed() })
}

/// Scale of the `--bench` measurement.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Niche/budget parameters of both arms (`shards` is overridden
    /// per arm).
    pub params: CampaignParams,
    /// Shard count of the sharded arm.
    pub shards: usize,
    /// Interleaved repetitions per arm (min elapsed wins).
    pub reps: usize,
    /// Scratch directory for the per-rep stores.
    pub scratch: PathBuf,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            params: CampaignParams {
                shards: 1,
                rounds: 4,
                batch: 8,
                configs: 8,
                ..CampaignParams::default()
            },
            shards: 4,
            reps: 2,
            scratch: std::env::temp_dir().join("a2a-campaign-bench"),
        }
    }
}

fn arm_elapsed(
    exe: &Path,
    params: &CampaignParams,
    store: &Path,
) -> Result<(Duration, CampaignOutcome), String> {
    let _ = std::fs::remove_dir_all(store);
    let run = run_process_campaign(exe, params, store, 1, |_, _| {})?;
    Ok((run.elapsed, run.outcome))
}

/// Runs the interleaved 1-shard vs N-shard measurement and returns the
/// sealed `BENCH_campaign.json` snapshot.
///
/// # Errors
///
/// Any campaign failure of either arm.
pub fn run_bench(exe: &Path, cfg: &BenchConfig) -> Result<Json, String> {
    let single_params = CampaignParams { shards: 1, ..cfg.params.clone() };
    let sharded_params = CampaignParams { shards: cfg.shards, ..cfg.params.clone() };
    let mut single_best: Option<(Duration, CampaignOutcome)> = None;
    let mut sharded_best: Option<(Duration, CampaignOutcome)> = None;
    for rep in 0..cfg.reps.max(1) {
        // Interleaved arms: noise lands on both equally.
        let single =
            arm_elapsed(exe, &single_params, &cfg.scratch.join(format!("single-{rep}")))?;
        if single_best.as_ref().is_none_or(|b| single.0 < b.0) {
            single_best = Some(single);
        }
        let sharded =
            arm_elapsed(exe, &sharded_params, &cfg.scratch.join(format!("sharded-{rep}")))?;
        if sharded_best.as_ref().is_none_or(|b| sharded.0 < b.0) {
            sharded_best = Some(sharded);
        }
    }
    let (single_elapsed, single_outcome) = single_best.expect("reps >= 1");
    let (sharded_elapsed, sharded_outcome) = sharded_best.expect("reps >= 1");
    let _ = std::fs::remove_dir_all(&cfg.scratch);

    let eps = |evals: u64, elapsed: Duration| evals as f64 / elapsed.as_secs_f64().max(1e-9);
    let single_eps = eps(single_outcome.counters.evals, single_elapsed);
    let sharded_eps = eps(sharded_outcome.counters.evals, sharded_elapsed);
    let counters = sharded_outcome.counters;
    let hit_rate = counters.dedup_hits as f64 / (counters.dedup_hits + counters.evals).max(1) as f64;
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);

    Ok(schema::seal(
        Json::object()
            .with("schema", CAMPAIGN_BENCH_SCHEMA)
            .with(
                "workload",
                Json::object()
                    .with("niches", sharded_params.spec().niches.len() as u64)
                    .with("shards", cfg.shards as u64)
                    .with("rounds", cfg.params.rounds as u64)
                    .with("batch", cfg.params.batch as u64)
                    .with("configs", cfg.params.configs as u64)
                    .with("seed", cfg.params.seed)
                    .with("reps", cfg.reps as u64),
            )
            .with(
                "throughput",
                Json::object()
                    .with("evals_per_sec", sharded_eps)
                    .with("evals", counters.evals)
                    .with("elapsed_us", sharded_elapsed.as_micros() as f64),
            )
            .with(
                "dedup",
                Json::object()
                    .with("hits", counters.dedup_hits)
                    .with("hit_rate", hit_rate)
                    .with("collisions", counters.collisions),
            )
            .with("migrations", counters.migrations)
            .with(
                "scaling",
                Json::object()
                    .with("cores", cores as u64)
                    .with("shards", cfg.shards as u64)
                    .with("single_evals_per_sec", single_eps)
                    .with("sharded_evals_per_sec", sharded_eps)
                    .with("ratio", sharded_eps / single_eps.max(1e-9)),
            )
            .with(
                "coverage_curve",
                Json::Arr(
                    sharded_outcome
                        .rounds
                        .iter()
                        .map(|r| {
                            Json::object()
                                .with("round", r.round as u64)
                                .with("covered", r.covered as u64)
                                .with("solved", r.solved as u64)
                                .with("evals", r.counters.evals)
                        })
                        .collect(),
                ),
            ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_build_the_niche_cross_product_in_canonical_order() {
        let params = CampaignParams::default();
        let spec = params.spec();
        assert_eq!(spec.niches.len(), params.grids.len() * params.ms.len() * params.ks.len());
        assert_eq!(spec.niches[0], NicheKey { kind: GridKind::Square, m: 8, k: 4 });
    }

    #[test]
    fn args_round_trip_the_parameters() {
        let params = CampaignParams::default();
        let args = params.to_args(Path::new("/tmp/x"), 1);
        assert!(args.windows(2).any(|w| w[0] == "--grids" && w[1] == "s,t"));
        assert!(args.windows(2).any(|w| w[0] == "--k" && w[1] == "4,6,8,10"));
        assert!(args.contains(&"--quiet".to_string()));
    }

    #[test]
    fn grid_and_list_parsing() {
        assert_eq!(parse_grids("s,t").unwrap(), vec![GridKind::Square, GridKind::Triangulate]);
        assert!(parse_grids("s,x").is_err());
        assert_eq!(parse_list::<usize>("4, 8", "--k").unwrap(), vec![4, 8]);
        assert!(parse_list::<usize>("4,z", "--k").is_err());
    }
}

//! The adaptive-fitness-pipeline benchmark: a standard GA-shaped
//! workload, the pre-adaptive baseline path for comparison, and the
//! `BENCH_fitness.json` snapshot (schema `a2a-obs/fitness-bench/v1`)
//! that records before/after throughput — with a built-in differential
//! check that both paths produce bit-identical [`FitnessReport`]s.
//!
//! The workload mirrors one evolution step at paper scale on the
//! triangulate grid: a 20-individual pool (published T-agent plus
//! near-elite mutants), 100 random configurations with `k = 16` agents
//! on the 16×16 torus, and 10 candidate children. The
//! [`SNAPSHOT_EPOCHS`] repeated whole-population evaluations model the
//! island scheme, where every epoch restart re-ranks an
//! already-evaluated pool — the case the fitness cache exists for.

use a2a_fsm::{best_t_agent, offspring, FsmSpec, Genome, MutationRates};
use a2a_ga::{parallel_map, Evaluator, FitnessReport, GenomeEval, PAPER_T_MAX, PAPER_WEIGHT};
use a2a_grid::GridKind;
use a2a_obs::json::Json;
use a2a_obs::schema::FITNESS_BENCH_SCHEMA;
use a2a_sim::{paper_config_set, BatchRunner, InitialConfig, RunOutcome, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::Instant;

/// Pool size of the standard workload (the paper's `N = 20`).
pub const STANDARD_POPULATION: usize = 20;

/// Candidate children per selection step (the paper's `N/2`).
pub const STANDARD_CHILDREN: usize = 10;

/// Configurations in the standard workload's training set.
pub const STANDARD_CONFIGS: usize = 100;

/// Agents per configuration in the standard workload.
pub const STANDARD_K: usize = 16;

/// Whole-population evaluation epochs measured by [`fitness_snapshot`]
/// through each path. Three epochs = one cold evaluation plus two
/// island-style epoch re-ranks; the baseline re-simulates every one,
/// the adaptive path resolves epochs 2–3 from cache.
pub const SNAPSHOT_EPOCHS: usize = 3;

/// One GA-shaped fitness workload: environment, training set, pool and
/// candidate children.
#[derive(Debug, Clone)]
pub struct FitnessWorkload {
    /// The evaluation environment (16×16 T-grid torus).
    pub config: WorldConfig,
    /// The training configuration set.
    pub configs: Vec<InitialConfig>,
    /// The pool: published T-agent plus digit-distinct near-elite
    /// mutants, all solving the training set (a converged pool).
    pub population: Vec<Genome>,
    /// Candidate children: a couple of near-elite mutants plus random
    /// genomes (the mix a real generation produces).
    pub children: Vec<Genome>,
}

/// Builds the standard workload (see module docs), deterministically
/// from `seed`. `configs` scales the training set for quick runs; pass
/// [`STANDARD_CONFIGS`] for the recorded snapshot.
///
/// # Panics
///
/// Panics if the configuration set cannot be generated (cannot happen
/// for the fixed 16×16/k=16 geometry).
#[must_use]
pub fn standard_workload(configs: usize, seed: u64) -> FitnessWorkload {
    let kind = GridKind::Triangulate;
    let config = WorldConfig::paper(kind, 16);
    let configs = paper_config_set(config.lattice, kind, STANDARD_K, configs.max(10), seed)
        .expect("16 agents fit 16x16");
    let elite = best_t_agent();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF17_BE5);

    // Near-elite pool: digit-distinct light mutants of the published
    // agent that still solve the whole training set ("converged pool").
    // The screening evaluator is separate so its cache/pool state does
    // not leak into anything the caller measures.
    let screen = Evaluator::new(config.clone(), configs.clone());
    let mut population = vec![elite.clone()];
    let mut seen: HashSet<String> = population.iter().map(Genome::to_digits).collect();
    let mut attempts = 0;
    while population.len() < STANDARD_POPULATION {
        let m = offspring(&elite, MutationRates::uniform(0.06), &mut rng);
        attempts += 1;
        let fresh = seen.insert(m.to_digits());
        // After many failed attempts accept weaker mutants rather than
        // loop forever; the workload stays deterministic either way.
        if fresh && (attempts > 400 || screen.evaluate(&m).is_completely_successful()) {
            population.push(m);
        }
    }

    let mut children = Vec::with_capacity(STANDARD_CHILDREN);
    let spec = FsmSpec::paper(kind);
    for i in 0..STANDARD_CHILDREN {
        let child = if i < 2 {
            offspring(&elite, MutationRates::paper(), &mut rng)
        } else {
            Genome::random(spec, &mut rng)
        };
        children.push(child);
    }
    FitnessWorkload { config, configs, population, children }
}

/// The exact report fold of the fitness layer, reproduced independently
/// so the baseline is a genuine differential check of the adaptive path.
fn report_from(outcomes: &[RunOutcome]) -> FitnessReport {
    let total = outcomes.len();
    let successes = outcomes.iter().filter(|o| o.is_successful()).count();
    let fitness =
        outcomes.iter().map(|o| o.fitness(PAPER_WEIGHT)).sum::<f64>() / total.max(1) as f64;
    let t_sum: u64 = outcomes.iter().filter_map(|o| o.t_comm.map(u64::from)).sum();
    FitnessReport {
        fitness,
        successes,
        total,
        mean_t_comm: (successes > 0).then(|| t_sum as f64 / successes as f64),
    }
}

/// The pre-adaptive evaluation path: scoped threads per call, a fresh
/// `FastWorld` heap allocation per run, no memoization — the PR-1
/// `evaluate_all` reproduced for before/after comparison.
///
/// # Panics
///
/// Panics if a genome does not match the workload environment.
#[must_use]
pub fn baseline_population_eval(w: &FitnessWorkload, threads: usize) -> Vec<FitnessReport> {
    parallel_map(&w.population, threads, |g| {
        let runner = BatchRunner::from_genome(&w.config, g.clone(), PAPER_T_MAX)
            .expect("workload genomes match the environment");
        let outcomes: Vec<RunOutcome> = w
            .configs
            .iter()
            .map(|init| runner.fresh_outcome_for(init).expect("workload configs are valid"))
            .collect();
        report_from(&outcomes)
    })
}

/// Measures the standard workload through both paths and assembles the
/// `BENCH_fitness.json` document: [`SNAPSHOT_EPOCHS`] whole-population
/// epochs baseline vs adaptive, plus one pruned selection step, with
/// the differential `identical_reports` verdict and the speedup.
///
/// # Panics
///
/// Panics if the workload cannot be evaluated (invalid geometry — not
/// reachable from the fixed workload).
#[must_use]
pub fn fitness_snapshot(configs: usize, threads: usize, seed: u64) -> Json {
    let w = standard_workload(configs, seed);
    let n_cfg = w.configs.len();

    // Before: SNAPSHOT_EPOCHS epochs through the PR-1 path, every one
    // fully re-simulated.
    let started = Instant::now();
    let base_epochs: Vec<Vec<FitnessReport>> =
        (0..SNAPSHOT_EPOCHS).map(|_| baseline_population_eval(&w, threads)).collect();
    let baseline_us = started.elapsed().as_micros().max(1) as f64;

    // After: the same epochs through one adaptive evaluator (persistent
    // pool + world reuse + cache); epochs after the first hit the cache.
    let evaluator = Evaluator::new(w.config.clone(), w.configs.clone()).with_threads(threads);
    let started = Instant::now();
    let cold = evaluator.evaluate_all(&w.population);
    let cold_us = started.elapsed().as_micros().max(1) as f64;
    let mut adaptive_epochs = vec![cold.clone()];
    for _ in 1..SNAPSHOT_EPOCHS {
        adaptive_epochs.push(evaluator.evaluate_all(&w.population));
    }
    let adaptive_us = started.elapsed().as_micros().max(1) as f64;
    let identical = adaptive_epochs == base_epochs;

    // Selection step: the pool's exact fitnesses defend their slots
    // against the children; garbage children should be pruned early.
    let incumbents: Vec<f64> = cold.iter().map(|r| r.fitness).collect();
    let pool_digits: HashSet<String> = w.population.iter().map(Genome::to_digits).collect();
    let fresh: Vec<Genome> =
        w.children.iter().filter(|c| !pool_digits.contains(&c.to_digits())).cloned().collect();
    let started = Instant::now();
    let verdicts = evaluator.evaluate_selection(&fresh, STANDARD_POPULATION, &incumbents);
    let selection_us = started.elapsed().as_micros().max(1) as f64;
    let pruned_genomes = verdicts.iter().filter(|v| v.is_pruned()).count();
    let pruned_configs: usize = verdicts
        .iter()
        .filter_map(|v| match v {
            GenomeEval::Pruned(b) => Some(n_cfg - b.configs_run),
            GenomeEval::Exact(_) => None,
        })
        .sum();

    // Sealed so consumers (obs_validate, CI) can detect torn or edited
    // artifacts before trusting any number in them.
    a2a_obs::schema::seal(
            Json::object()
                .with("schema", FITNESS_BENCH_SCHEMA)
            .with(
                "workload",
                Json::object()
                    .with("population", w.population.len())
                    .with("children", fresh.len())
                    .with("configs", n_cfg)
                    .with("k", STANDARD_K)
                    .with("grid", "T"),
            )
            .with(
                "baseline",
                Json::object()
                    .with("elapsed_us", baseline_us)
                    .with("epochs", SNAPSHOT_EPOCHS as u64),
            )
            .with(
                "adaptive",
                Json::object()
                    .with("elapsed_us", adaptive_us)
                    .with("cold_us", cold_us)
                    .with("warm_us", adaptive_us - cold_us)
                    .with("cache_hits", evaluator.cache().hits())
                    .with("cache_misses", evaluator.cache().misses()),
            )
            .with(
                "selection",
                Json::object()
                    .with("elapsed_us", selection_us)
                    .with("pruned_genomes", pruned_genomes)
                    .with("pruned_configs", pruned_configs)
                    .with("exact", fresh.len() - pruned_genomes),
            )
            .with("speedup", baseline_us / adaptive_us)
            .with("identical_reports", identical),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_obs::schema::validate_fitness_snapshot;

    #[test]
    fn reduced_snapshot_validates_and_is_identical() {
        // A reduced-scale run of the full snapshot path: must satisfy
        // its own schema, reproduce baseline reports exactly, and not
        // be slower than the baseline.
        let snapshot = fitness_snapshot(12, 2, 99);
        validate_fitness_snapshot(&snapshot).unwrap();
        assert_eq!(snapshot.get("identical_reports"), Some(&Json::Bool(true)));
    }

    #[test]
    fn workload_population_is_digit_distinct() {
        let w = standard_workload(10, 3);
        let digits: HashSet<String> = w.population.iter().map(Genome::to_digits).collect();
        assert_eq!(digits.len(), w.population.len());
        assert_eq!(w.population.len(), STANDARD_POPULATION);
        assert_eq!(w.children.len(), STANDARD_CHILDREN);
    }
}

//! The batch-kernel benchmark: the single-run `FastWorld` path, the
//! dense full-scan `MultiWorld` path (the pre-frontier engine, kept as
//! the in-process baseline), the frontier `MultiWorld` path, the same
//! frontier kernel behind the parallel dispatch seam, and the
//! bit-sliced `SlicedWorld` path on the whole-population fitness
//! workload — sealed as `BENCH_kernel.json` (schema
//! `a2a-obs/kernel-bench/v3`) with a built-in differential check that
//! every engine (including the untimed reference `World`) produces
//! bit-identical [`RunOutcome`]s.
//!
//! Timing is *interleaved and paired*: each repetition times one
//! whole-population pass through each path in turn, and the snapshot
//! keeps the minimum per path. Alternating the paths inside one
//! process cancels slow machine-level drift (thermal throttling, noisy
//! neighbours) that would otherwise dominate back-to-back block
//! measurements, and the minimum discards interruption spikes — the
//! speedup ratios are stable where separately-measured means are not.
//! Because the dense scan runs in the same process on the same
//! workload, `frontier_speedup = dense / multi` is an honest
//! same-machine ratio wherever the snapshot is taken. The
//! reference-`World` oracle pass and the metrics-instrumented
//! active-fraction pass run once each, outside the timed repetitions,
//! so neither the identity check nor the histogram capture perturbs
//! the measurement.

use a2a_fsm::{best_t_agent, offspring, Genome, MutationRates};
use a2a_ga::{Evaluator, WorkerPool};
use a2a_grid::GridKind;
use a2a_obs::json::Json;
use a2a_obs::schema::KERNEL_BENCH_SCHEMA;
use a2a_obs::HistogramSnapshot;
use a2a_sim::{
    paper_config_set, simulate, BatchRunner, Dispatch, InitialConfig, RunOutcome, WorldConfig,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Genomes in the measured population: the published T-agent plus
/// light mutants — the shape of one generation's evaluation.
pub const KERNEL_POPULATION: usize = 8;

/// Configurations in the standard kernel workload (matches the fitness
/// pipeline's training-set size).
pub const KERNEL_CONFIGS: usize = 100;

/// Agents per configuration.
pub const KERNEL_K: usize = 16;

/// Paired repetitions per snapshot; each path's time is the minimum.
pub const KERNEL_REPS: usize = 5;

/// Step horizon of the workload. Mutants are unscreened, so a few runs
/// are unsuccessful; a tight horizon keeps the snapshot fast while the
/// differential check still covers the horizon-retirement path.
const T_MAX: u32 = 200;

/// One kernel-bench workload: environment, training set and genome
/// population.
#[derive(Debug, Clone)]
pub struct KernelWorkload {
    /// The evaluation environment (16×16 T-grid torus).
    pub config: WorldConfig,
    /// The training configuration set.
    pub configs: Vec<InitialConfig>,
    /// The measured population: elite plus screened light mutants (a
    /// converged pool, like the fitness pipeline's standard workload).
    pub population: Vec<Genome>,
}

/// Builds the standard kernel workload deterministically from `seed`.
/// `configs` scales the training set for quick runs; pass
/// [`KERNEL_CONFIGS`] for the recorded snapshot.
///
/// # Panics
///
/// Panics if the configuration set cannot be generated (cannot happen
/// for the fixed 16×16/k=16 geometry).
#[must_use]
pub fn kernel_workload(configs: usize, seed: u64) -> KernelWorkload {
    let kind = GridKind::Triangulate;
    let config = WorldConfig::paper(kind, 16);
    let configs = paper_config_set(config.lattice, kind, KERNEL_K, configs.max(4), seed)
        .expect("16 agents fit 16x16");
    let elite = best_t_agent();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6E55);

    // Screened near-elite mutants: a converged pool, the population
    // shape the fitness pipeline evaluates every generation (weak
    // mutants there are pruned away early by selection, so solving
    // genomes dominate the simulated work). After many failed attempts
    // accept weaker mutants rather than loop forever.
    let screen = Evaluator::new(config.clone(), configs.clone());
    let mut population = vec![elite.clone()];
    let mut attempts = 0;
    while population.len() < KERNEL_POPULATION {
        let m = offspring(&elite, MutationRates::uniform(0.06), &mut rng);
        attempts += 1;
        if attempts > 200 || screen.evaluate(&m).is_completely_successful() {
            population.push(m);
        }
    }
    KernelWorkload { config, configs, population }
}

/// One whole-population pass through the single-run path (the PR-3
/// `BatchRunner` inner loop: pooled `FastWorld`, one config at a time).
fn single_pass(runners: &[BatchRunner], configs: &[InitialConfig]) -> Vec<RunOutcome> {
    let mut outcomes = Vec::with_capacity(runners.len() * configs.len());
    for runner in runners {
        for init in configs {
            outcomes.push(runner.outcome_for(init).expect("workload configs are valid"));
        }
    }
    outcomes
}

/// One whole-population pass through the fused multi-run path
/// (engine forced: routing must not fold the two batch series into
/// one measurement).
fn multi_pass(runners: &[BatchRunner], configs: &[InitialConfig]) -> Vec<RunOutcome> {
    let mut outcomes = Vec::with_capacity(runners.len() * configs.len());
    for runner in runners {
        outcomes.extend(runner.run_all_multi(configs).expect("workload configs are valid"));
    }
    outcomes
}

/// One whole-population pass through the dense full-scan multi path —
/// the pre-frontier kernel, replayed verbatim so `frontier_speedup` is
/// measured in-process on the same machine and workload.
fn dense_pass(runners: &[BatchRunner], configs: &[InitialConfig]) -> Vec<RunOutcome> {
    let mut outcomes = Vec::with_capacity(runners.len() * configs.len());
    for runner in runners {
        outcomes
            .extend(runner.run_all_multi_dense(configs).expect("workload configs are valid"));
    }
    outcomes
}

/// One whole-population pass through the bit-sliced run-transposed
/// path (engine forced, like [`multi_pass`]).
fn sliced_pass(runners: &[BatchRunner], configs: &[InitialConfig]) -> Vec<RunOutcome> {
    let mut outcomes = Vec::with_capacity(runners.len() * configs.len());
    for runner in runners {
        outcomes.extend(runner.run_all_sliced(configs).expect("workload configs are valid"));
    }
    outcomes
}

/// One whole-population pass through the reference `World` oracle —
/// run once outside the timed repetitions to extend the identity check
/// to all four engines.
fn oracle_pass(w: &KernelWorkload) -> Vec<RunOutcome> {
    let mut outcomes = Vec::with_capacity(w.population.len() * w.configs.len());
    for genome in &w.population {
        for init in &w.configs {
            outcomes.push(
                simulate(&w.config, genome.clone(), init, T_MAX)
                    .expect("workload configs are valid"),
            );
        }
    }
    outcomes
}

/// The sample-wise difference `after − before` of two snapshots of the
/// same growing histogram — the samples recorded between the two
/// captures. `min`/`max` are taken from `after` (the underlying
/// histogram only widens its range), which is exact whenever `before`
/// is empty — the bench's case, since the instrumented pass is the
/// only metrics-enabled work in the process.
fn histogram_delta(before: &HistogramSnapshot, after: &HistogramSnapshot) -> HistogramSnapshot {
    let mut delta = HistogramSnapshot {
        count: after.count.saturating_sub(before.count),
        sum: after.sum.saturating_sub(before.sum),
        min: after.min,
        max: after.max,
        ..HistogramSnapshot::default()
    };
    for (d, (a, b)) in delta.buckets.iter_mut().zip(after.buckets.iter().zip(&before.buckets)) {
        *d = a.saturating_sub(*b);
    }
    delta
}

/// One untimed metrics-instrumented multi pass: returns the
/// `kernel.frontier.active` counter delta (active agent-steps) and the
/// `kernel.frontier.active_pct` histogram delta (per-step active
/// fraction, in percent) the pass recorded.
fn instrumented_pass(
    runners: &[BatchRunner],
    configs: &[InitialConfig],
) -> (u64, HistogramSnapshot) {
    let reg = a2a_obs::global();
    let active = reg.counter("kernel.frontier.active");
    let active_pct = reg.histogram("kernel.frontier.active_pct");
    let was_on = a2a_obs::metrics_enabled();
    let count_before = active.get();
    let hist_before = active_pct.snapshot();
    a2a_obs::set_metrics(true);
    let _ = multi_pass(runners, configs);
    a2a_obs::set_metrics(was_on);
    (active.get() - count_before, histogram_delta(&hist_before, &active_pct.snapshot()))
}

/// Measures the workload through the four batch-kernel paths plus the
/// parallel dispatch seam and assembles the `BENCH_kernel.json`
/// document (see the module docs for the timing protocol). The
/// reference `World` oracle and the instrumented active-fraction pass
/// run once each, untimed; the oracle's outcomes join the
/// `identical_outcomes` check.
///
/// # Panics
///
/// Panics if the workload cannot be simulated (invalid geometry — not
/// reachable from the fixed workload).
#[must_use]
pub fn kernel_snapshot(configs: usize, seed: u64) -> Json {
    let w = kernel_workload(configs, seed);
    let runners: Vec<BatchRunner> = w
        .population
        .iter()
        .map(|g| {
            BatchRunner::from_genome(&w.config, g.clone(), T_MAX)
                .expect("workload genomes match the environment")
        })
        .collect();
    // The parallel series: the same frontier kernel, sharded across the
    // persistent worker pool through the dispatch seam. Outcomes are
    // committed in submission order, so this path joins the identity
    // check like any other engine.
    let pool: Arc<dyn Dispatch> = Arc::new(WorkerPool::new(
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    ));
    let par_runners: Vec<BatchRunner> =
        runners.iter().map(|r| r.clone().with_dispatch(Arc::clone(&pool))).collect();
    let workers = par_runners[0].dispatch_workers();

    let mut single_us = f64::INFINITY;
    let mut dense_us = f64::INFINITY;
    let mut multi_us = f64::INFINITY;
    let mut parallel_us = f64::INFINITY;
    let mut sliced_us = f64::INFINITY;
    let mut single_outcomes = Vec::new();
    let mut dense_outcomes = Vec::new();
    let mut multi_outcomes = Vec::new();
    let mut parallel_outcomes = Vec::new();
    let mut sliced_outcomes = Vec::new();
    for _ in 0..KERNEL_REPS {
        let started = Instant::now();
        single_outcomes = single_pass(&runners, &w.configs);
        single_us = single_us.min(started.elapsed().as_micros().max(1) as f64);

        let started = Instant::now();
        dense_outcomes = dense_pass(&runners, &w.configs);
        dense_us = dense_us.min(started.elapsed().as_micros().max(1) as f64);

        let started = Instant::now();
        multi_outcomes = multi_pass(&runners, &w.configs);
        multi_us = multi_us.min(started.elapsed().as_micros().max(1) as f64);

        let started = Instant::now();
        parallel_outcomes = multi_pass(&par_runners, &w.configs);
        parallel_us = parallel_us.min(started.elapsed().as_micros().max(1) as f64);

        let started = Instant::now();
        sliced_outcomes = sliced_pass(&runners, &w.configs);
        sliced_us = sliced_us.min(started.elapsed().as_micros().max(1) as f64);
    }
    let oracle_outcomes = oracle_pass(&w);
    let identical = single_outcomes == dense_outcomes
        && single_outcomes == multi_outcomes
        && single_outcomes == parallel_outcomes
        && single_outcomes == sliced_outcomes
        && single_outcomes == oracle_outcomes;
    let (active_steps, active_pct) = instrumented_pass(&runners, &w.configs);

    // All paths simulate the identical step count (retirement in the
    // batch kernels ≡ per-run early exit in the single-run loop), so
    // one total serves every rate.
    let total_steps: u64 = multi_outcomes.iter().map(|o| u64::from(o.steps)).sum();
    let evals = (w.population.len() * w.configs.len()) as f64;
    let chunk = runners[0].chunk_size(KERNEL_K);
    let sliced_chunk = runners[0].sliced_chunk_size(KERNEL_K);
    let rates = |us: f64| {
        Json::object()
            .with("elapsed_us", us)
            .with("steps_per_sec", total_steps as f64 / (us / 1e6))
            .with("evals_per_sec", evals / (us / 1e6))
    };

    a2a_obs::schema::seal(
        Json::object()
            .with("schema", KERNEL_BENCH_SCHEMA)
            .with(
                "workload",
                Json::object()
                    .with("population", w.population.len())
                    .with("configs", w.configs.len())
                    .with("k", KERNEL_K)
                    .with("grid", "T"),
            )
            .with("single", rates(single_us))
            .with("dense", rates(dense_us).with("chunk", chunk as u64))
            .with("multi", rates(multi_us).with("chunk", chunk as u64))
            .with(
                "parallel",
                rates(parallel_us).with("chunk", chunk as u64).with("workers", workers as u64),
            )
            .with("sliced", rates(sliced_us).with("chunk", sliced_chunk as u64))
            .with("speedup", single_us / multi_us)
            .with("frontier_speedup", dense_us / multi_us)
            .with("parallel_speedup", dense_us / parallel_us)
            .with("sliced_speedup", multi_us / sliced_us)
            .with(
                "frontier",
                Json::object()
                    .with("active_agent_steps", active_steps)
                    .with("active_pct", active_pct.to_json()),
            )
            .with("identical_outcomes", identical),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_obs::schema::validate_kernel_snapshot;

    #[test]
    fn reduced_snapshot_validates_and_is_identical() {
        // A reduced-scale run of the full snapshot path: must satisfy
        // its own schema (multi ≥ single; the sliced ratio is recorded,
        // not gated) and all four engines must agree exactly.
        let snapshot = kernel_snapshot(24, 99);
        validate_kernel_snapshot(&snapshot).unwrap();
        assert_eq!(snapshot.get("identical_outcomes"), Some(&Json::Bool(true)));
    }

    #[test]
    #[ignore = "manual perf probe: prints the full-scale snapshot"]
    fn full_snapshot_report() {
        let snapshot = kernel_snapshot(KERNEL_CONFIGS, 2013);
        println!("{snapshot}");
        validate_kernel_snapshot(&snapshot).unwrap();
    }

    #[test]
    fn workload_is_deterministic() {
        let a = kernel_workload(6, 5);
        let b = kernel_workload(6, 5);
        assert_eq!(a.population, b.population);
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.population.len(), KERNEL_POPULATION);
    }
}

//! E15 — the conclusion's future-work environments: bordered fields and
//! obstacle fields, run with the published (torus-evolved) best agents.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin ext_borders_obstacles [--configs N]
//! ```

use a2a_analysis::experiments::density::DensityExperiment;
use a2a_analysis::experiments::extensions::{border_comparison, obstacle_sweep};
use a2a_analysis::{f2, TextTable};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(100);
    let _sink = scale.init_obs("ext_borders_obstacles");
    scale.outln(scale.banner("E15: borders & obstacles"));
    scale.outln("");

    let exp = DensityExperiment {
        m: 16,
        agent_counts: vec![4, 8, 16],
        n_random: scale.configs,
        seed: scale.seed,
        t_max: 5000,
        threads: scale.threads,
    };

    scale.outln("--- bordered field vs torus ---");
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let cmp = border_comparison(kind, &exp).expect("densities fit the field");
        let mut table = TextTable::new(vec!["environment", "k=4", "k=8", "k=16", "solved"]);
        for (label, series) in [("torus (paper)", &cmp.torus), ("bordered", &cmp.bordered)] {
            let mut cells = vec![label.to_string()];
            cells.extend(series.points.iter().map(|p| {
                if p.successes == 0 { "-".into() } else { f2(p.times.mean) }
            }));
            let solved: usize = series.points.iter().map(|p| p.successes).sum();
            let total: usize = series.points.iter().map(|p| p.total).sum();
            cells.push(format!("{solved}/{total}"));
            table.add_row(cells);
        }
        scale.outln(format!("{}-grid:\n{table}", kind.label()));
    }
    scale.outln(
        "paper context: earlier work found bordered environments *easier* — but \
         those agents were evolved for borders; ours are torus specialists, so \
         degradation here measures out-of-distribution robustness.\n",
    );

    scale.outln("--- obstacle fields (torus + random obstacle cells) ---");
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let reports = obstacle_sweep(kind, &[0, 8, 24, 48], &exp, scale.seed ^ 0x0B57)
            .expect("densities fit the field");
        let mut table = TextTable::new(vec!["obstacles", "k=4", "k=8", "k=16", "solved"]);
        for r in &reports {
            let mut cells = vec![r.obstacles.to_string()];
            cells.extend(r.series.points.iter().map(|p| {
                if p.successes == 0 { "-".into() } else { f2(p.times.mean) }
            }));
            let solved: usize = r.series.points.iter().map(|p| p.successes).sum();
            let total: usize = r.series.points.iter().map(|p| p.total).sum();
            cells.push(format!("{solved}/{total}"));
            table.add_row(cells);
        }
        scale.outln(format!("{}-grid:\n{table}", kind.label()));
    }
    scale.outln(
        "paper context: obstacles are reliability option 5 (symmetry breakers); \
         a few help little, many fragment the field and can strand agents.",
    );
}

//! Validates observability artifacts: an events JSONL stream (written
//! via `--json-out`), a `BENCH_obs.json` perf snapshot, a
//! `BENCH_fitness.json` pipeline snapshot, a `BENCH_kernel.json`
//! multi-run kernel snapshot, and/or an `a2a-run` checkpoint. Exits
//! non-zero on the first schema violation, so CI can gate on it.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin obs_validate -- \
//!     [--events events.jsonl] [--snapshot BENCH_obs.json] \
//!     [--fitness BENCH_fitness.json] [--kernel BENCH_kernel.json] \
//!     [--kernel-baseline BASELINE.json] [--serve BENCH_serve.json] \
//!     [--campaign BENCH_campaign.json] [--run CHECKPOINT_DIR_OR_FILE]
//! ```
//!
//! `--campaign` gates a `BENCH_campaign.json` snapshot: aggregate
//! evals/s positive, campaign-wide dedup hit rate observed, the archive
//! coverage curve monotone, and the 4-shard/1-shard throughput ratio ≥
//! 2× once the host has 4+ cores (recorded, not floored, on smaller
//! hosts — the honest-hardware convention of the kernel gates).
//!
//! `--serve` gates a `BENCH_serve.json` load snapshot: every submitted
//! job completed (zero lost or duplicated), backpressure and tenant
//! quotas both answered `429` (with `Retry-After`), and the latency
//! percentiles are monotone.
//! `--fitness` additionally gates on the snapshot's own acceptance
//! terms: `identical_reports` must be true and `speedup ≥ 1`; `--kernel`
//! gates the same way on `identical_outcomes` (all four engines) and
//! the multi-kernel speedup, while the bit-sliced ratio is only sanity
//! checked (see DESIGN.md §11). `--kernel-baseline BASELINE` pairs with
//! the `--kernel` files and additionally fails when a fresh snapshot's
//! `speedup` or `sliced_speedup` regressed more than 30 % below the
//! baseline's. Snapshot and checkpoint documents
//! are sealed; their embedded checksum is verified before any field is
//! trusted. A crashed run's events stream (a `.partial` file) may end
//! in one torn line — that is tolerated and reported, while any other
//! malformed line still fails.

use a2a_obs::json::parse;
use a2a_obs::schema::{
    validate_bench_snapshot, validate_campaign_snapshot, validate_events,
    validate_fitness_snapshot, validate_kernel_regression, validate_kernel_snapshot,
    validate_serve_snapshot,
};
use a2a_run::{CheckpointStore, Payload, CHECKPOINT_FILE};
use std::path::Path;
use std::process::ExitCode;

/// Validates one checkpoint (a directory holding `checkpoint.json`, or
/// the file itself) and renders a one-line summary.
fn validate_run_checkpoint(path: &str) -> Result<String, String> {
    let p = Path::new(path);
    let dir = if p.is_dir() {
        p.to_path_buf()
    } else if p.file_name().map(|n| n == CHECKPOINT_FILE).unwrap_or(false) {
        p.parent().unwrap_or_else(|| Path::new(".")).to_path_buf()
    } else {
        return Err(format!("expected a run directory or a {CHECKPOINT_FILE} file"));
    };
    let ckpt = CheckpointStore::new(dir)
        .load()?
        .ok_or_else(|| format!("no {CHECKPOINT_FILE} in the run directory"))?;
    Ok(match ckpt.payload {
        Payload::Single(state) => format!(
            "single run at generation boundary {} ({} individuals, {} history entries, \
             cache {} entries / {} hits)",
            state.next_generation.saturating_sub(1),
            state.pool.len(),
            state.history.len(),
            ckpt.counters.cache_entries,
            ckpt.counters.cache_hits,
        ),
        Payload::Islands(state) => format!(
            "island run at epoch boundary {} ({} islands)",
            state.next_epoch.saturating_sub(1),
            state.outcomes.len(),
        ),
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut events: Vec<String> = Vec::new();
    let mut snapshots: Vec<String> = Vec::new();
    let mut fitness: Vec<String> = Vec::new();
    let mut kernels: Vec<String> = Vec::new();
    let mut kernel_baseline: Option<String> = None;
    let mut serves: Vec<String> = Vec::new();
    let mut campaigns: Vec<String> = Vec::new();
    let mut runs: Vec<String> = Vec::new();
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--events" | "--snapshot" | "--fitness" | "--kernel" | "--kernel-baseline"
            | "--serve" | "--campaign" | "--run" => {
                let Some(path) = it.next() else {
                    eprintln!("missing value for {flag}");
                    return ExitCode::FAILURE;
                };
                match flag.as_str() {
                    "--events" => events.push(path),
                    "--snapshot" => snapshots.push(path),
                    "--fitness" => fitness.push(path),
                    "--kernel" => kernels.push(path),
                    "--kernel-baseline" => kernel_baseline = Some(path),
                    "--serve" => serves.push(path),
                    "--campaign" => campaigns.push(path),
                    _ => runs.push(path),
                }
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (use --events FILE / --snapshot FILE / \
                     --fitness FILE / --kernel FILE / --kernel-baseline FILE / \
                     --serve FILE / --campaign FILE / --run DIR)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if kernel_baseline.is_some() && kernels.is_empty() {
        eprintln!("--kernel-baseline needs at least one --kernel FILE to compare against");
        return ExitCode::FAILURE;
    }
    if events.is_empty() && snapshots.is_empty() && fitness.is_empty() && kernels.is_empty()
        && serves.is_empty() && campaigns.is_empty() && runs.is_empty()
    {
        eprintln!(
            "nothing to validate: pass --events FILE, --snapshot FILE, --fitness FILE, \
             --kernel FILE, --serve FILE, --campaign FILE and/or --run DIR"
        );
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    for path in &events {
        match std::fs::read_to_string(path) {
            Ok(content) => match validate_events(&content) {
                Ok(summary) => {
                    let total = content.lines().filter(|l| !l.trim().is_empty()).count();
                    match summary.truncated_tail {
                        None => println!(
                            "{path}: OK ({} event lines, {total} total)",
                            summary.events
                        ),
                        Some(tail) => println!(
                            "{path}: OK ({} event lines, {total} total; torn final line \
                             tolerated: `{}`)",
                            summary.events,
                            tail.chars().take(60).collect::<String>(),
                        ),
                    }
                }
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                ok = false;
            }
        }
    }
    for path in &snapshots {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|content| parse(content.trim()))
            .and_then(|doc| validate_bench_snapshot(&doc));
        match result {
            Ok(()) => println!("{path}: OK (bench snapshot, checksum verified)"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    for path in &fitness {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|content| parse(content.trim()))
            .and_then(|doc| validate_fitness_snapshot(&doc));
        match result {
            Ok(()) => println!(
                "{path}: OK (fitness snapshot, checksum verified, adaptive ≥ baseline, \
                 identical reports)"
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    let baseline_doc = kernel_baseline.as_ref().and_then(|path| {
        match std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|content| parse(content.trim()))
        {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
                None
            }
        }
    });
    for path in &kernels {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|content| parse(content.trim()))
            .and_then(|doc| match &baseline_doc {
                // The regression check validates both documents itself.
                Some(base) => validate_kernel_regression(base, &doc),
                None => validate_kernel_snapshot(&doc),
            });
        match result {
            Ok(()) => match (&kernel_baseline, &baseline_doc) {
                (Some(base), Some(_)) => println!(
                    "{path}: OK (kernel snapshot, checksum verified, multi ≥ single, \
                     frontier ≥ dense, all engines agree, within 30 % of {base})"
                ),
                _ => println!(
                    "{path}: OK (kernel snapshot, checksum verified, multi ≥ single, \
                     frontier ≥ dense, all engines agree)"
                ),
            },
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    for path in &serves {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|content| parse(content.trim()))
            .and_then(|doc| validate_serve_snapshot(&doc));
        match result {
            Ok(()) => println!(
                "{path}: OK (serve snapshot, checksum verified, zero lost/duplicated, \
                 backpressure and quota rejections observed)"
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    for path in &campaigns {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|content| parse(content.trim()))
            .and_then(|doc| validate_campaign_snapshot(&doc));
        match result {
            Ok(()) => println!(
                "{path}: OK (campaign snapshot, checksum verified, dedup observed, \
                 coverage monotone, shard scaling gated by available cores)"
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    for path in &runs {
        match validate_run_checkpoint(path) {
            Ok(summary) => println!("{path}: OK ({summary})"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}

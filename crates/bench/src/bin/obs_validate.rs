//! Validates observability artifacts: an events JSONL stream (written
//! via `--json-out`) and/or a `BENCH_obs.json` perf snapshot. Exits
//! non-zero on the first schema violation, so CI can gate on it.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin obs_validate -- \
//!     [--events events.jsonl] [--snapshot BENCH_obs.json] \
//!     [--fitness BENCH_fitness.json]
//! ```
//!
//! `--fitness` additionally gates on the snapshot's own acceptance
//! terms: `identical_reports` must be true and `speedup ≥ 1`.

use a2a_obs::json::parse;
use a2a_obs::schema::{validate_bench_snapshot, validate_events, validate_fitness_snapshot};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut events: Vec<String> = Vec::new();
    let mut snapshots: Vec<String> = Vec::new();
    let mut fitness: Vec<String> = Vec::new();
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--events" | "--snapshot" | "--fitness" => {
                let Some(path) = it.next() else {
                    eprintln!("missing value for {flag}");
                    return ExitCode::FAILURE;
                };
                match flag.as_str() {
                    "--events" => events.push(path),
                    "--snapshot" => snapshots.push(path),
                    _ => fitness.push(path),
                }
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (use --events FILE / --snapshot FILE / --fitness FILE)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if events.is_empty() && snapshots.is_empty() && fitness.is_empty() {
        eprintln!(
            "nothing to validate: pass --events FILE, --snapshot FILE and/or --fitness FILE"
        );
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    for path in &events {
        match std::fs::read_to_string(path) {
            Ok(content) => match validate_events(&content) {
                Ok(n) => println!(
                    "{path}: OK ({n} event lines, {} total)",
                    content.lines().filter(|l| !l.trim().is_empty()).count()
                ),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                ok = false;
            }
        }
    }
    for path in &snapshots {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|content| parse(content.trim()))
            .and_then(|doc| validate_bench_snapshot(&doc));
        match result {
            Ok(()) => println!("{path}: OK (bench snapshot)"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    for path in &fitness {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|content| parse(content.trim()))
            .and_then(|doc| validate_fitness_snapshot(&doc));
        match result {
            Ok(()) => println!("{path}: OK (fitness snapshot, adaptive ≥ baseline, identical reports)"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}

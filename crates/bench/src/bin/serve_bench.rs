//! Load benchmark for the `a2a-serve` service layer: ≥ 1000 concurrent
//! tiny evolution jobs through an in-process server, plus deterministic
//! backpressure/quota probes, sealed as `BENCH_serve.json` (schema
//! `a2a-obs/serve-bench/v1`) and gated in CI by `obs_validate --serve`.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin serve_bench -- \
//!     [--jobs N] [--clients N] [--executors N] [--out PATH]
//! ```

use a2a_bench::serve::LoadConfig;

const SNAPSHOT_PATH: &str = "BENCH_serve.json";

fn main() {
    a2a_obs::init_from_env();
    a2a_obs::set_metrics(true);
    let mut cfg = LoadConfig::default();
    let mut out = SNAPSHOT_PATH.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--jobs" => cfg.jobs = value("--jobs").parse().expect("numeric"),
            "--clients" => cfg.clients = value("--clients").parse().expect("numeric"),
            "--executors" => cfg.executors = value("--executors").parse().expect("numeric"),
            "--out" => out = value("--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }

    println!(
        "=== serve load: {} jobs, {} clients, {} tenants, queue {} (tenant cap {}), \
         {} executors ===",
        cfg.jobs, cfg.clients, cfg.tenants, cfg.queue_capacity, cfg.tenant_max_queued,
        cfg.executors,
    );
    let snapshot = a2a_bench::serve::run_load(&cfg).unwrap_or_else(|e| panic!("load run: {e}"));
    a2a_obs::schema::validate_serve_snapshot(&snapshot)
        .unwrap_or_else(|e| panic!("snapshot failed its own gate: {e}"));
    a2a_obs::atomic_write(&out, format!("{snapshot}\n").as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    let pick = |path: &[&str]| -> f64 {
        let mut doc = &snapshot;
        for key in path {
            doc = doc.get(key).expect("snapshot member");
        }
        doc.as_f64().expect("numeric member")
    };
    println!(
        "jobs: {:.0} submitted / {:.0} completed (lost {:.0}, duplicated {:.0})",
        pick(&["jobs", "submitted"]),
        pick(&["jobs", "completed"]),
        pick(&["jobs", "lost"]),
        pick(&["jobs", "duplicated"]),
    );
    println!(
        "backpressure: {:.0}x queue_full 429, {:.0}x tenant_quota 429 (Retry-After on all)",
        pick(&["backpressure", "rejected_429"]),
        pick(&["quota", "rejected_429"]),
    );
    println!(
        "throughput: {:.1} jobs/s; latency p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms",
        pick(&["throughput", "jobs_per_sec"]),
        pick(&["latency_ms", "p50"]),
        pick(&["latency_ms", "p90"]),
        pick(&["latency_ms", "p99"]),
    );
    println!("wrote {out} (schema-valid)");
}

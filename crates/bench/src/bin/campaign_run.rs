//! Sharded MAP-Elites campaign driver (DESIGN.md §15).
//!
//! One binary, four modes:
//!
//! * **parent** (default): spawns `--shards` worker processes of itself,
//!   coordinates the round barriers, respawns any shard that dies
//!   mid-campaign (crash-only supervision), and seals the final archive;
//! * **`--shard-worker I`**: runs shard `I`'s loop against the shared
//!   store and exits `137` when an injected `campaign.round` fault
//!   fires (the chaos suite's SIGKILL stand-in);
//! * **`--inline`**: the whole campaign in-process — byte-identical
//!   artifacts to the process mode, handy for debugging;
//! * **`--bench`**: the interleaved 1-shard vs N-shard measurement,
//!   sealed into `BENCH_campaign.json` (self-validated before writing,
//!   and gated in CI by `obs_validate --campaign`).
//!
//! ```text
//! cargo run --release -p a2a-bench --bin campaign_run -- \
//!     --store /tmp/campaign [--grids s,t] [--m 8] [--k 4,6,8,10] \
//!     [--shards N] [--rounds N] [--batch N] [--t-max N] \
//!     [--configs N] [--seed N] [--threads N] \
//!     [--inline | --shard-worker I | --bench [--reps N] [--out FILE]]
//! ```

use a2a_bench::campaign::{
    parse_grids, parse_list, run_bench, run_process_campaign, BenchConfig, CampaignParams,
};
use a2a_bench::RunScale;
use a2a_obs::json::Json;
use a2a_obs::schema::validate_campaign_snapshot;
use a2a_run::campaign::{run_inline, run_shard_process, CampaignStore, ShardExit};
use std::path::PathBuf;
use std::process::ExitCode;

enum Mode {
    Parent,
    ShardWorker(usize),
    Inline,
    Bench,
}

fn fail(msg: impl AsRef<str>) -> ExitCode {
    eprintln!("campaign_run: {}", msg.as_ref());
    ExitCode::FAILURE
}

fn pick(doc: &Json, path: &[&str]) -> String {
    let mut cur = doc;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return "?".into(),
        }
    }
    format!("{cur}")
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_requested = args.iter().any(|a| a == "--bench");
    let mut params =
        if bench_requested { BenchConfig::default().params } else { CampaignParams::default() };
    let scale = RunScale::extract(&mut args, params.configs);
    params.configs = scale.configs;
    params.seed = scale.seed;

    let mut mode = Mode::Parent;
    let mut store: Option<PathBuf> = None;
    let mut out = PathBuf::from("BENCH_campaign.json");
    let mut bench_shards: Option<usize> = None;
    let mut reps = BenchConfig::default().reps;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().ok_or_else(|| format!("missing value for {flag}"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--inline" => {
                mode = Mode::Inline;
                Ok(())
            }
            "--bench" => {
                mode = Mode::Bench;
                Ok(())
            }
            "--shard-worker" => value(&flag)
                .and_then(|v| v.parse().map_err(|_| format!("numeric --shard-worker, got `{v}`")))
                .map(|i| mode = Mode::ShardWorker(i)),
            "--store" => value(&flag).map(|v| store = Some(PathBuf::from(v))),
            "--out" => value(&flag).map(|v| out = PathBuf::from(v)),
            "--grids" => value(&flag).and_then(|v| parse_grids(&v)).map(|g| params.grids = g),
            "--m" => value(&flag).and_then(|v| parse_list(&v, "--m")).map(|m| params.ms = m),
            "--k" => value(&flag).and_then(|v| parse_list(&v, "--k")).map(|k| params.ks = k),
            "--shards" => value(&flag)
                .and_then(|v| v.parse().map_err(|_| format!("numeric --shards, got `{v}`")))
                .map(|s: usize| {
                    params.shards = s.max(1);
                    bench_shards = Some(s.max(1));
                }),
            "--rounds" => value(&flag)
                .and_then(|v| v.parse().map_err(|_| format!("numeric --rounds, got `{v}`")))
                .map(|r| params.rounds = r),
            "--batch" => value(&flag)
                .and_then(|v| v.parse().map_err(|_| format!("numeric --batch, got `{v}`")))
                .map(|b| params.batch = b),
            "--t-max" => value(&flag)
                .and_then(|v| v.parse().map_err(|_| format!("numeric --t-max, got `{v}`")))
                .map(|t| params.t_max = t),
            "--reps" => value(&flag)
                .and_then(|v| v.parse().map_err(|_| format!("numeric --reps, got `{v}`")))
                .map(|r: usize| reps = r.max(1)),
            other => Err(format!(
                "unknown flag `{other}` (see the module docs at the top of campaign_run.rs)"
            )),
        };
        if let Err(e) = result {
            return fail(e);
        }
    }
    if params.grids.is_empty() || params.ms.is_empty() || params.ks.is_empty() {
        return fail("--grids/--m/--k must each name at least one value");
    }

    let _sink = scale.init_obs("campaign");
    a2a_obs::set_metrics(true);

    match mode {
        Mode::ShardWorker(shard) => {
            let Some(root) = store else { return fail("--shard-worker needs --store DIR") };
            let spec = params.spec();
            if shard >= spec.shards {
                return fail(format!("--shard-worker {shard} out of range (shards {})", spec.shards));
            }
            match run_shard_process(&CampaignStore::new(root), &spec, shard, scale.threads) {
                Ok(ShardExit::Done) => ExitCode::SUCCESS,
                Ok(ShardExit::Killed) => {
                    // Die like a SIGKILLed process: the round's delta is
                    // not durable and the supervisor must respawn us.
                    eprintln!("campaign_run: shard {shard} killed by injected fault");
                    std::process::exit(137);
                }
                Err(e) => fail(format!("shard {shard}: {e}")),
            }
        }
        Mode::Inline => {
            let Some(root) = store else { return fail("--inline needs --store DIR") };
            let spec = params.spec();
            scale.outln(scale.banner("campaign (inline)"));
            match run_inline(&CampaignStore::new(&root), &spec, scale.threads) {
                Ok(outcome) => {
                    report(&scale, &outcome, spec.niches.len(), &CampaignStore::new(root), 0);
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        Mode::Parent => {
            let Some(root) = store else { return fail("campaign parent needs --store DIR") };
            let exe = match std::env::current_exe() {
                Ok(p) => p,
                Err(e) => return fail(format!("cannot locate own binary: {e}")),
            };
            scale.outln(scale.banner(&format!("campaign ({} shard processes)", params.shards)));
            let run = run_process_campaign(&exe, &params, &root, scale.threads, |shard, code| {
                scale.progress(
                    "campaign.respawn",
                    format!("campaign: respawned shard {shard} (exit {code:?})"),
                );
            });
            match run {
                Ok(run) => {
                    let total = params.spec().niches.len();
                    report(&scale, &run.outcome, total, &CampaignStore::new(root), run.respawns);
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        Mode::Bench => {
            let exe = match std::env::current_exe() {
                Ok(p) => p,
                Err(e) => return fail(format!("cannot locate own binary: {e}")),
            };
            let mut cfg = BenchConfig { params, reps, ..BenchConfig::default() };
            cfg.shards = bench_shards.unwrap_or(cfg.shards);
            cfg.params.shards = 1;
            if let Some(root) = store {
                cfg.scratch = root;
            }
            scale.outln(scale.banner(&format!(
                "campaign bench (1 vs {} shards, {} interleaved reps)",
                cfg.shards, cfg.reps
            )));
            let snapshot = match run_bench(&exe, &cfg) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            // Self-validate before writing: a snapshot this binary
            // cannot validate must never reach CI.
            if let Err(e) = validate_campaign_snapshot(&snapshot) {
                return fail(format!("refusing to write invalid snapshot: {e}"));
            }
            if let Err(e) = a2a_obs::atomic_write(&out, format!("{snapshot}\n").as_bytes()) {
                return fail(format!("cannot write {}: {e}", out.display()));
            }
            let covered = snapshot
                .get("coverage_curve")
                .and_then(Json::as_arr)
                .and_then(|curve| curve.last())
                .map_or_else(|| "?".into(), |point| pick(point, &["covered"]));
            scale.outln(format!(
                "sharded evals/s {} (single {}, ratio {} on {} cores), dedup hit rate {}, \
                 covered {covered}",
                pick(&snapshot, &["throughput", "evals_per_sec"]),
                pick(&snapshot, &["scaling", "single_evals_per_sec"]),
                pick(&snapshot, &["scaling", "ratio"]),
                pick(&snapshot, &["scaling", "cores"]),
                pick(&snapshot, &["dedup", "hit_rate"]),
            ));
            scale.outln(format!("sealed snapshot: {}", out.display()));
            ExitCode::SUCCESS
        }
    }
}

/// Renders the end-of-campaign report: counters, coverage and the
/// per-niche elite table.
fn report(
    scale: &RunScale,
    outcome: &a2a_run::campaign::CampaignOutcome,
    niches: usize,
    store: &CampaignStore,
    respawns: usize,
) {
    let c = outcome.counters;
    scale.outln(format!(
        "campaign done: {} evals, {} dedup hits, {} migrations, {} collisions, {} respawns",
        c.evals, c.dedup_hits, c.migrations, c.collisions, respawns
    ));
    scale.outln(format!(
        "archive: {} / {niches} niches covered, {} solved",
        outcome.archive.covered(),
        outcome.archive.solved()
    ));
    for (niche, elite) in outcome.archive.iter() {
        let t_comm = elite
            .report
            .mean_t_comm
            .map_or_else(|| "-".to_string(), |t| format!("{t:.1}"));
        scale.outln(format!(
            "  {niche:<12} fitness {:>10.3}  success {}/{}  mean t_comm {t_comm}",
            elite.report.fitness, elite.report.successes, elite.report.total
        ));
    }
    scale.outln(format!("final archive: {}", store.final_path().display()));
}

//! E6 — regenerates **Table 1** and the **Fig. 5** series: communication
//! time vs. agent density for the best T- and S-agents on a 16×16 torus.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin table1_fig5 [--full] [--configs N] [--seed S]
//! ```

use a2a_analysis::experiments::density::{
    run_density_comparison, DensityExperiment, PAPER_TABLE1_S, PAPER_TABLE1_T,
    TABLE1_AGENT_COUNTS,
};
use a2a_analysis::{f2, f3, AsciiChart, Series, TextTable, XScale};
use a2a_bench::RunScale;

fn main() {
    let scale = RunScale::from_args(200);
    let _sink = scale.init_obs("table1_fig5");
    scale.outln(scale.banner("E6: Table 1 / Fig. 5"));
    scale.outln("");

    let exp = DensityExperiment {
        m: 16,
        agent_counts: TABLE1_AGENT_COUNTS.to_vec(),
        n_random: scale.configs,
        seed: scale.seed,
        t_max: 5000,
        threads: scale.threads,
    };
    let cmp = run_density_comparison(&exp).expect("16x16 densities are all representable");

    scale.outln(format!("measured:\n{}", cmp.to_table()));

    // Side-by-side with the published Table 1.
    let mut table = TextTable::new(vec![
        "N_agents", "T paper", "T ours", "T dev%", "S paper", "S ours", "S dev%", "T/S paper",
        "T/S ours",
    ]);
    for (i, &k) in TABLE1_AGENT_COUNTS.iter().enumerate() {
        let (tp, sp) = (PAPER_TABLE1_T[i], PAPER_TABLE1_S[i]);
        let (to, so) = (cmp.t_grid.points[i].times.mean, cmp.s_grid.points[i].times.mean);
        table.add_row(vec![
            k.to_string(),
            f2(tp),
            f2(to),
            format!("{:+.1}", 100.0 * (to - tp) / tp),
            f2(sp),
            f2(so),
            format!("{:+.1}", 100.0 * (so - sp) / sp),
            f3(tp / sp),
            f3(to / so),
        ]);
    }
    scale.outln(format!("paper vs measured:\n{table}"));

    // Success accounting (the reliability claim behind the averages).
    for series in [&cmp.t_grid, &cmp.s_grid] {
        let solved: usize = series.points.iter().map(|p| p.successes).sum();
        let total: usize = series.points.iter().map(|p| p.total).sum();
        scale.outln(format!(
            "{}-grid: {solved}/{total} configurations solved{}",
            series.kind.label(),
            if solved == total { " (completely successful)" } else { "" },
        ));
    }

    // Fig. 5 as an ASCII chart (log2 x-axis over the agent counts).
    let to_points = |series: &a2a_analysis::experiments::density::GridSeries| {
        series
            .points
            .iter()
            .map(|p| (p.agents as f64, p.times.mean))
            .collect::<Vec<_>>()
    };
    let chart = AsciiChart::new(64, 16, XScale::Log2)
        .series(Series::new("T-grid", 'T', to_points(&cmp.t_grid)))
        .series(Series::new("S-grid", 'S', to_points(&cmp.s_grid)));
    scale.outln(format!("\nFig. 5 (communication time vs N_agents):\n{chart}"));

    scale.outln(format!("\nFig. 5 CSV:\n{}", cmp.to_csv()));
}

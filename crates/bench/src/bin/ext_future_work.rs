//! E18 — future-work specs: 6-state and 3-colour agents evolved under
//! the same budget as the paper's 4-state/2-colour spec.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin ext_future_work [--configs N]
//! ```

use a2a_analysis::experiments::future_work::{default_specs, spec_sweep};
use a2a_analysis::{f2, TextTable};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(40);
    let _sink = scale.init_obs("ext_future_work");
    scale.outln(scale.banner("E18: more states / more colors"));
    scale.outln("");

    for kind in [GridKind::Triangulate, GridKind::Square] {
        let generations = if scale.full { 400 } else { 100 };
        let specs = default_specs(kind);
        scale.progress(
            "bench.progress",
            format!(
                "{}-grid ({} configs, {generations} generations per spec):",
                kind.label(),
                scale.configs,
            ),
        );
        let results = spec_sweep(kind, &specs, scale.configs, generations, scale.seed, scale.threads)
            .expect("8 agents fit 16x16");
        let mut table = TextTable::new(vec![
            "spec", "log10(K)", "held-out fitness", "solved", "mean t_comm",
        ]);
        for r in &results {
            table.add_row(vec![
                r.label.clone(),
                format!("{:.1}", r.search_space_log10),
                f2(r.held_out.fitness),
                format!("{}/{}", r.held_out.successes, r.held_out.total),
                f2(r.held_out.mean_t_comm.unwrap_or(f64::NAN)),
            ]);
        }
        scale.outln(format!("{table}"));
    }
    scale.outln(
        "reading: richer specs (log10(K) grows from ~58 to ~90+) are more \
         expressive but need a larger search budget — under a fixed budget \
         the paper's small spec is competitive, which is why the authors \
         'restrict the number of states and actions to a certain limit'.",
    );
}

//! E1/E2/E3 — regenerates **Fig. 1** link counts, the **Fig. 2** distance
//! maps and the **Eq. (1)–(3)** diameter/mean-distance formulas.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin fig2_distances
//! ```

use a2a_analysis::experiments::distances;
use a2a_bench::RunScale;
use a2a_grid::{GridKind, Lattice};

fn main() {
    // Deterministic/analytic experiment: the scale flags only matter for
    // the shared --quiet/--json-out observability plumbing.
    let scale = RunScale::from_args(0);
    let _sink = scale.init_obs("fig2_distances");

    // E1 — Fig. 1: the size-2 tori have 2N (S) and 3N (T) links.
    scale.outln("=== E1: Fig. 1 topology (size n = 2, N = 16) ===");
    let l2 = Lattice::torus_of_size(2);
    for kind in [GridKind::Square, GridKind::Triangulate] {
        scale.outln(format!(
            "{} torus: {} nodes, {} links ({}N), valence {}",
            kind,
            l2.len(),
            l2.link_count(kind),
            l2.link_count(kind) / l2.len(),
            kind.dir_count(),
        ));
    }

    // E2 — Fig. 2: distance maps from a centre cell at n = 3.
    scale.outln("\n=== E2: Fig. 2 distance maps (n = 3, 8x8) ===");
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let r = distances::survey(kind, 3);
        scale.outln(format!(
            "\n{} torus: D = {} (formula {}), mean = {:.2} (formula {:.2}), {} antipodal(s)",
            kind, r.diameter, r.diameter_formula, r.mean, r.mean_formula, r.antipodal_count,
        ));
        scale.outln(&r.map);
    }
    scale.outln("paper, Fig. 2: D_S = 8, mean_S = 4; D_T = 5, mean_T ≈ 3.09");

    // E3 — Eq. (1)-(3): formulas and ratios over sizes.
    scale.outln("\n=== E3: Eq. (1)-(3) over sizes n = 1..8 ===");
    scale.outln(format!("{}", distances::formula_table(1..=8)));
    scale.outln("paper, Eq. (3): D^T/S ≈ 0.666, mean^T/S ≈ 0.775 (asymptotically)");
}

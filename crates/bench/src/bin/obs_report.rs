//! Perf-trend observatory CLI: validates sealed bench artifacts and the
//! append-only `results/bench_history.jsonl` trend file, then renders
//! the markdown + sparkline report of [`a2a_analysis::report`]. With
//! `--check`, exits non-zero when any regression is flagged (headline
//! ratio below 1, kernel ratio below 70 % of the `--baseline` fixture,
//! or history drift below 70 % of the prior median) — the trend
//! counterpart of `obs_validate`'s schema gate.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin obs_report -- \
//!     [--kernel BENCH_kernel.json] [--fitness BENCH_fitness.json] \
//!     [--snapshot BENCH_obs.json] [--history results/bench_history.jsonl] \
//!     [--baseline BASELINE.json] [--out DIR] [--check]
//! ```
//!
//! Every document is checksum-verified before any number in it is
//! trusted; a missing `--history` file is an empty trend (the first run
//! of a fresh checkout), but an unreadable *named* artifact is an
//! error. The report lands in `--out` (default `obs_report/`) as
//! `OBS_REPORT.md` plus one `spark_*.svg` per tracked series.

use a2a_analysis::report::{perf_report, ReportInputs};
use a2a_obs::json::{parse, Json};
use a2a_obs::schema::{
    validate_bench_snapshot, validate_fitness_snapshot, validate_history,
    validate_kernel_snapshot,
};
use std::path::Path;
use std::process::ExitCode;

/// Reads, parses and checksum-validates one sealed artifact.
fn load(path: &str, validate: impl Fn(&Json) -> Result<(), String>) -> Result<Json, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("{path}: unreadable: {e}"))?;
    let doc = parse(content.trim()).map_err(|e| format!("{path}: {e}"))?;
    validate(&doc).map_err(|e| format!("{path}: INVALID: {e}"))?;
    Ok(doc)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut kernel: Option<String> = None;
    let mut fitness: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut history: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut out = String::from("obs_report");
    let mut check = false;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--kernel" | "--fitness" | "--snapshot" | "--history" | "--baseline" | "--out" => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {flag}");
                    return ExitCode::FAILURE;
                };
                match flag.as_str() {
                    "--kernel" => kernel = Some(value),
                    "--fitness" => fitness = Some(value),
                    "--snapshot" => snapshot = Some(value),
                    "--history" => history = Some(value),
                    "--baseline" => baseline = Some(value),
                    _ => out = value,
                }
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (use --kernel/--fitness/--snapshot/--history/\
                     --baseline FILE, --out DIR, --check)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if kernel.is_none() && fitness.is_none() && snapshot.is_none() && history.is_none() {
        eprintln!(
            "nothing to report on: pass --kernel/--fitness/--snapshot/--history FILE \
             (see --help text in the module docs)"
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut opt_load =
        |path: &Option<String>, validate: &dyn Fn(&Json) -> Result<(), String>| match path {
            Some(p) => match load(p, validate) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    eprintln!("{e}");
                    failed = true;
                    None
                }
            },
            None => None,
        };
    let kernel_doc = opt_load(&kernel, &validate_kernel_snapshot);
    let fitness_doc = opt_load(&fitness, &validate_fitness_snapshot);
    let snapshot_doc = opt_load(&snapshot, &validate_bench_snapshot);
    // The baseline fixture is a sealed kernel snapshot too.
    let baseline_doc = opt_load(&baseline, &validate_kernel_snapshot);
    let history_entries: Vec<Json> = match &history {
        Some(path) if Path::new(path).exists() => {
            match std::fs::read_to_string(path)
                .map_err(|e| format!("unreadable: {e}"))
                .and_then(|content| validate_history(&content))
            {
                Ok(entries) => {
                    println!("{path}: OK ({} trend points)", entries.len());
                    entries
                }
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    failed = true;
                    Vec::new()
                }
            }
        }
        Some(path) => {
            println!("{path}: absent (empty trend — first run of a fresh checkout)");
            Vec::new()
        }
        None => Vec::new(),
    };
    if failed {
        return ExitCode::FAILURE;
    }

    let report = perf_report(&ReportInputs {
        kernel: kernel_doc.as_ref(),
        fitness: fitness_doc.as_ref(),
        snapshot: snapshot_doc.as_ref(),
        history: &history_entries,
        baseline: baseline_doc.as_ref(),
    });

    let out_dir = Path::new(&out);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("{out}: cannot create output directory: {e}");
        return ExitCode::FAILURE;
    }
    let md_path = out_dir.join("OBS_REPORT.md");
    if let Err(e) = a2a_obs::atomic_write(&md_path, report.markdown.as_bytes()) {
        eprintln!("{}: write failed: {e}", md_path.display());
        return ExitCode::FAILURE;
    }
    for (name, svg) in &report.sparklines {
        if let Err(e) = a2a_obs::atomic_write(out_dir.join(name), svg.as_bytes()) {
            eprintln!("{name}: write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "wrote {} (+{} sparklines)",
        md_path.display(),
        report.sparklines.len()
    );

    if report.regressions.is_empty() {
        println!("no regressions detected");
        ExitCode::SUCCESS
    } else {
        for r in &report.regressions {
            eprintln!("REGRESSION: {r}");
        }
        if check {
            eprintln!("--check: failing on {} regression(s)", report.regressions.len());
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

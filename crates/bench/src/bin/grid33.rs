//! E9 — the 33×33 scaling comparison of Sect. 5: the 16×16-evolved best
//! agents on 33×33 fields with 16 agents (paper: S 229, T 181, reliable).
//!
//! ```text
//! cargo run --release -p a2a-bench --bin grid33 [--full] [--configs N]
//! ```

use a2a_analysis::experiments::grid33::{
    run_grid33, PAPER_GRID33_S, PAPER_GRID33_T,
};
use a2a_bench::RunScale;

fn main() {
    let scale = RunScale::from_args(200);
    let _sink = scale.init_obs("grid33");
    scale.outln(scale.banner("E9: 33x33 field, 16 agents"));
    scale.outln("");

    let r = run_grid33(scale.configs, scale.seed, scale.threads)
        .expect("16 agents fit a 33x33 field");
    let t = &r.t_grid.points[0];
    let s = &r.s_grid.points[0];
    scale.outln(format!(
        "T-agent: mean {:.2} (paper {PAPER_GRID33_T}), sd {:.1}, max {:.0}, {} / {} solved",
        t.times.mean, t.times.std_dev, t.times.max, t.successes, t.total,
    ));
    scale.outln(format!(
        "S-agent: mean {:.2} (paper {PAPER_GRID33_S}), sd {:.1}, max {:.0}, {} / {} solved",
        s.times.mean, s.times.std_dev, s.times.max, s.successes, s.total,
    ));
    scale.outln(format!(
        "T/S ratio: {:.3} (paper {:.3})",
        r.t_mean() / r.s_mean(),
        PAPER_GRID33_T / PAPER_GRID33_S
    ));
    scale.outln(format!("both reliable: {}", r.both_reliable()));
    scale.outln(
        "\npaper context: agents evolved on 16x16 generalise to 33x33 and \
         T stays faster; their [9]-agents (two 8-state FSMs) reached 195 on S.",
    );
}

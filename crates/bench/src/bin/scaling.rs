//! E23 — field-size scaling at fixed density: does the ≈ 2/3 T/S ratio
//! persist as the torus grows (the diameter-ratio prediction of Eq. 3)?
//!
//! ```text
//! cargo run --release -p a2a-bench --bin scaling [--configs N]
//! ```

use a2a_analysis::experiments::scaling::scaling_sweep;
use a2a_analysis::{f2, f3, TextTable};
use a2a_bench::RunScale;

fn main() {
    let scale = RunScale::from_args(100);
    let _sink = scale.init_obs("scaling");
    scale.outln(scale.banner("E23: field-size scaling at density 1/16"));
    scale.outln("");

    let extents = [8u16, 12, 16, 24, 32];
    let points = scaling_sweep(&extents, 1.0 / 16.0, scale.configs, scale.seed, 20_000, scale.threads)
        .expect("densities fit every field");
    let mut table = TextTable::new(vec![
        "m", "agents", "T mean", "S mean", "T/S", "D_T/D_S", "solved",
    ]);
    for p in &points {
        table.add_row(vec![
            p.m.to_string(),
            p.agents.to_string(),
            f2(p.t.times.mean),
            f2(p.s.times.mean),
            f3(p.time_ratio()),
            f3(p.diameter_ratio),
            format!(
                "{}/{}",
                p.t.successes + p.s.successes,
                p.t.total + p.s.total
            ),
        ]);
    }
    scale.outln(format!("{table}"));
    scale.outln(
        "reading: the measured T/S ratio tracks the diameter ratio at every \
         size — the paper's Eq. (3) explanation is scale-stable, not a \
         16x16 artefact. (Agents were evolved on 16x16; far larger fields \
         are out-of-distribution yet the ordering persists.)",
    );
}

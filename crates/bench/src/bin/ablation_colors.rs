//! E12 — colour ablation: the published best agents with their colour
//! writes suppressed. The paper's earlier S-grid work found "colors speed
//! up the task by a factor of around 2"; this quantifies the effect for
//! both published agents.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin ablation_colors [--configs N]
//! ```

use a2a_analysis::experiments::ablation::{colors_ablation, colors_paired};
use a2a_analysis::experiments::density::DensityExperiment;
use a2a_analysis::{f2, TextTable};
use a2a_bench::RunScale;

fn main() {
    let scale = RunScale::from_args(100);
    let _sink = scale.init_obs("ablation_colors");
    scale.outln(scale.banner("E12: colour ablation"));
    scale.outln("");

    let exp = DensityExperiment {
        m: 16,
        agent_counts: vec![2, 4, 8, 16, 32],
        n_random: scale.configs,
        seed: scale.seed,
        t_max: 5000,
        threads: scale.threads,
    };
    let variants = colors_ablation(&exp).expect("densities fit the field");

    let mut header = vec!["variant".to_string()];
    header.extend(exp.agent_counts.iter().map(|k| format!("k={k}")));
    header.push("solved".to_string());
    let mut table = TextTable::new(header);
    for v in &variants {
        let mut cells = vec![v.label.clone()];
        cells.extend(v.series.points.iter().map(|p| {
            if p.successes == 0 {
                "-".to_string()
            } else {
                f2(p.times.mean)
            }
        }));
        let solved: usize = v.series.points.iter().map(|p| p.successes).sum();
        let total: usize = v.series.points.iter().map(|p| p.total).sum();
        cells.push(format!("{solved}/{total}"));
        table.add_row(cells);
    }
    scale.outln(format!("{table}"));

    // Speed-up factors where both variants solve.
    for pair in variants.chunks(2) {
        let label = pair[0].series.kind.label();
        let factors: Vec<String> = pair[0]
            .series
            .points
            .iter()
            .zip(&pair[1].series.points)
            .filter(|(_, without)| without.successes > 0)
            .map(|(with, without)| {
                format!("k={}: {:.2}x", with.agents, without.times.mean / with.times.mean)
            })
            .collect();
        scale.outln(format!(
            "{label}-grid colour speed-up (colourless/coloured): {}",
            if factors.is_empty() { "colourless never solves".to_string() } else { factors.join(", ") },
        ));
    }
    // Paired comparison on the configurations both variants solve — the
    // raw means above under-count the colourless agent's weakness (it
    // only solves the easy fields).
    scale.outln("\npaired comparison (configs solved by BOTH variants):");
    let mut paired = TextTable::new(vec![
        "grid", "k", "both solved", "with colors", "without", "speed-up",
    ]);
    for kind in [a2a_grid::GridKind::Triangulate, a2a_grid::GridKind::Square] {
        for &k in &[8usize, 16, 32] {
            let r = colors_paired(kind, k, scale.configs, scale.seed, 5000, scale.threads)
                .expect("densities fit the field");
            let (w, wo, sp) = if r.both_solved == 0 {
                ("-".to_string(), "-".to_string(), "-".to_string())
            } else {
                (f2(r.mean_with), f2(r.mean_without), format!("{:.2}x", r.speedup()))
            };
            paired.add_row(vec![
                kind.label().to_string(),
                k.to_string(),
                format!("{}/{}", r.both_solved, r.total),
                w,
                wo,
                sp,
            ]);
        }
    }
    scale.outln(format!("{paired}"));
    scale.outln("paper context: colours acted as pheromones worth ~2x in earlier S-grid work");
}

//! Runs the complete experiment suite at reduced (one-sitting) scale and
//! prints a combined markdown report — a smoke-regeneration of every
//! claim in EXPERIMENTS.md with one command — then measures a perf
//! snapshot (kernel throughput, fitness throughput, t_comm histograms,
//! a GA fitness series) and writes it to `BENCH_obs.json`
//! (schema `a2a-obs/bench-snapshot/v1`, validated before writing).
//!
//! ```text
//! cargo run --release -p a2a-bench --bin all_experiments [--configs N] \
//!     [--quiet] [--json-out events.jsonl] \
//!     [--checkpoint-dir DIR] [--resume]
//! ```
//!
//! `BENCH_obs.json` / `BENCH_fitness.json` / `BENCH_kernel.json` are
//! sealed (embedded FNV-1a checksum) and written atomically, so a crash
//! mid-write can never leave a torn artifact. `--checkpoint-dir` persists the GA-series run
//! as a rolling `a2a-run/checkpoint/v1` snapshot; `--resume` continues
//! it after an interruption.
//!
//! For the paper-scale numbers run the individual binaries with `--full`.

use a2a_analysis::experiments::{
    density::{run_density_comparison, DensityExperiment, TABLE1_AGENT_COUNTS},
    distances, exhaustive, grid33,
};
use a2a_analysis::{f2, f3};
use a2a_bench::RunScale;
use a2a_fsm::{best_t_agent, FsmSpec, Genome};
use a2a_ga::{Evaluator, GaConfig};
use a2a_grid::GridKind;
use a2a_run::{run_evolution, CheckpointStore, RunOptions};
use a2a_obs::schema::{
    validate_bench_snapshot, validate_fitness_snapshot, validate_history_line,
    validate_kernel_snapshot, BENCH_HISTORY_SCHEMA, BENCH_SNAPSHOT_SCHEMA, REQUIRED_T_COMM_KS,
};
use a2a_obs::json::Json;
use a2a_obs::HistogramSnapshot;
use a2a_sim::{paper_config_set, BatchRunner, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Output path of the consolidated perf snapshot.
const SNAPSHOT_PATH: &str = "BENCH_obs.json";

/// Output path of the fitness-pipeline before/after snapshot.
const FITNESS_PATH: &str = "BENCH_fitness.json";

/// Output path of the single-run vs multi-run kernel snapshot.
const KERNEL_PATH: &str = "BENCH_kernel.json";

/// Append-only trend file the perf observatory (`obs_report`) plots:
/// one sealed `a2a-obs/bench-history/v1` line per suite run.
const HISTORY_PATH: &str = "results/bench_history.jsonl";

/// Appends one sealed trend point distilled from the three snapshots to
/// [`HISTORY_PATH`]. Each line is self-validated before it is written;
/// append is a single `write_all` of one `\n`-terminated line, so a
/// concurrent reader sees at worst one torn *final* line — exactly what
/// `validate_history` tolerates.
fn append_history_line(
    scale: &RunScale,
    snapshot: &Json,
    fitness: &Json,
    kernel: &Json,
) -> std::io::Result<()> {
    use std::io::Write;
    let num = |doc: &Json, path: &[&str]| {
        path.iter().try_fold(doc, |d, k| d.get(k)).and_then(Json::as_f64).unwrap_or(f64::NAN)
    };
    let t_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0);
    let line = a2a_obs::schema::seal(
        Json::object()
            .with("schema", BENCH_HISTORY_SCHEMA)
            .with("t_ms", t_ms)
            .with(
                "run",
                Json::object().with("configs", scale.configs as u64).with("seed", scale.seed),
            )
            .with(
                "kernel",
                Json::object()
                    .with("speedup", num(kernel, &["speedup"]))
                    .with("frontier_speedup", num(kernel, &["frontier_speedup"]))
                    .with("sliced_speedup", num(kernel, &["sliced_speedup"]))
                    .with("multi_steps_per_sec", num(kernel, &["multi", "steps_per_sec"]))
                    .with("frontier_active", num(kernel, &["frontier", "active_agent_steps"]))
                    .with("dispatch_workers", num(kernel, &["parallel", "workers"])),
            )
            .with(
                "fitness",
                Json::object()
                    .with("speedup", num(fitness, &["speedup"]))
                    .with("evals_per_sec", num(snapshot, &["fitness", "evals_per_sec"])),
            ),
    )
    .to_string();
    validate_history_line(&line).expect("freshly sealed trend point satisfies its own schema");
    if let Some(parent) = std::path::Path::new(HISTORY_PATH).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(HISTORY_PATH)?;
    file.write_all(format!("{line}\n").as_bytes())?;
    file.sync_all()
}

/// Measures the perf snapshot on the T-grid: kernel steps/s and per-k
/// `t_comm` histograms from one batch pass, fitness evals/s, and a small
/// GA run for the per-generation best/median series (checkpointed and
/// resumable when `ga_opts` carries a store).
fn perf_snapshot(scale: &RunScale, ga_opts: &RunOptions) -> Json {
    // The snapshot embeds the global registry, so make sure the layers
    // actually record (A2A_LOG may be unset).
    a2a_obs::set_metrics(true);
    let kind = GridKind::Triangulate;
    let env = WorldConfig::paper(kind, 16);

    // Kernel throughput + t_comm histograms, one batch per required k.
    let runner = BatchRunner::from_genome(&env, best_t_agent(), 5000)
        .expect("published T-agent matches the paper environment");
    let mut t_comm_entries: Vec<Json> = Vec::new();
    let mut total_steps: u64 = 0;
    let started = Instant::now();
    for k in REQUIRED_T_COMM_KS {
        let configs =
            paper_config_set(env.lattice, kind, k as usize, scale.configs.max(30), scale.seed)
                .expect("k agents fit 16x16");
        let outcomes = runner.run_all(&configs).expect("configs match the environment");
        let mut hist = HistogramSnapshot::default();
        for o in &outcomes {
            total_steps += u64::from(o.steps) * o.agents as u64;
            if let Some(t) = o.t_comm {
                hist.record(u64::from(t));
            }
        }
        t_comm_entries.push(
            Json::object()
                .with("grid", "T")
                .with("k", k)
                .with("configs", outcomes.len())
                .with("histogram", hist.to_json()),
        );
    }
    let kernel_us = started.elapsed().as_micros().max(1) as f64;
    let steps_per_sec = total_steps as f64 / (kernel_us / 1e6);

    // Fitness throughput: whole-population evaluation of random genomes.
    let train = paper_config_set(env.lattice, kind, 8, scale.configs.max(30), scale.seed)
        .expect("8 agents fit 16x16");
    let evaluator = Evaluator::new(env.clone(), train).with_threads(scale.threads);
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    let genomes: Vec<Genome> = (0..8)
        .map(|_| Genome::random(FsmSpec::paper(kind), &mut rng))
        .collect();
    let started = Instant::now();
    let _ = evaluator.evaluate_all(&genomes);
    let fitness_us = started.elapsed().as_micros().max(1) as f64;
    let evals_per_sec = genomes.len() as f64 / (fitness_us / 1e6);

    // GA fitness series: a short real run (10 generations is enough for
    // a non-trivial best/median trajectory without dominating runtime).
    let generations = if scale.full { 50 } else { 10 };
    let mut series: Vec<Json> = Vec::new();
    let report = run_evolution(
        FsmSpec::paper(kind),
        &evaluator,
        GaConfig::paper(generations, scale.seed),
        Vec::new(),
        ga_opts,
        |s| {
            series.push(
                Json::object()
                    .with("generation", s.generation as u64)
                    .with("best", s.best_fitness)
                    .with("median", s.median_fitness),
            );
        },
    )
    .unwrap_or_else(|e| panic!("GA series cannot start: {e}"));
    if let Some(from) = report.resumed_from {
        // A resumed series only observed the freshly-run generations;
        // rebuild the full trajectory from the restored history.
        series = report
            .outcome
            .history
            .iter()
            .map(|s| {
                Json::object()
                    .with("generation", s.generation as u64)
                    .with("best", s.best_fitness)
                    .with("median", s.median_fitness)
            })
            .collect();
        a2a_obs::event!(a2a_obs::Level::Info, "bench.ga.resumed", "generation" => from as u64);
    }

    a2a_obs::schema::seal(Json::object()
        .with("schema", BENCH_SNAPSHOT_SCHEMA)
        .with(
            "kernel",
            Json::object()
                .with("grid", "T")
                .with("steps_per_sec", steps_per_sec)
                .with("agent_steps", total_steps)
                .with("elapsed_us", kernel_us),
        )
        .with(
            "fitness",
            Json::object()
                .with("evals_per_sec", evals_per_sec)
                .with("evals", genomes.len())
                .with("configs", scale.configs.max(30)),
        )
        .with("t_comm", Json::Arr(t_comm_entries))
        .with("ga", Json::object().with("series", Json::Arr(series)))
        .with("metrics", a2a_obs::global().snapshot().to_json()))
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::extract(&mut argv, 60);
    let mut checkpoint_dir: Option<String> = None;
    let mut resume = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--checkpoint-dir" => {
                checkpoint_dir = Some(
                    it.next().unwrap_or_else(|| panic!("missing value for --checkpoint-dir")).clone(),
                );
            }
            "--resume" => resume = true,
            other => panic!(
                "unknown flag `{other}` (use --configs/--seed/--threads/--full/--quiet/\
                 --json-out/--checkpoint-dir/--resume)"
            ),
        }
    }
    assert!(!resume || checkpoint_dir.is_some(), "--resume requires --checkpoint-dir");
    let ga_opts = RunOptions {
        store: checkpoint_dir.as_deref().map(CheckpointStore::new),
        cadence: 1,
        resume,
        stop: None,
    };
    let obs = scale.init_obs("all_experiments");
    scale.outln("# Combined reduced-scale regeneration\n");
    scale.outln(format!(
        "configs per point: {}, seed {}, threads {}\n",
        scale.configs, scale.seed, scale.threads
    ));

    // E1–E3: topology & distances.
    scale.outln("## Topology & distances (Fig. 1, Fig. 2, Eq. 1–3)\n");
    let s = distances::survey(GridKind::Square, 3);
    let t = distances::survey(GridKind::Triangulate, 3);
    scale.outln(format!(
        "- size-3 torus: D_S = {} (paper 8), D_T = {} (paper 5)",
        s.diameter, t.diameter
    ));
    scale.outln(format!(
        "- mean distances: S {} (paper 4), T {} (paper ≈3.09)\n",
        f2(s.mean),
        f2(t.mean)
    ));

    // E6: Table 1.
    scale.outln("## Table 1 / Fig. 5 (reduced)\n");
    let exp = DensityExperiment {
        m: 16,
        agent_counts: TABLE1_AGENT_COUNTS.to_vec(),
        n_random: scale.configs,
        seed: scale.seed,
        t_max: 5000,
        threads: scale.threads,
    };
    let cmp = run_density_comparison(&exp).expect("valid experiment");
    scale.outln(cmp.to_table().to_markdown());
    let solved: usize = cmp
        .t_grid
        .points
        .iter()
        .chain(&cmp.s_grid.points)
        .map(|p| p.successes)
        .sum();
    let total: usize = cmp
        .t_grid
        .points
        .iter()
        .chain(&cmp.s_grid.points)
        .map(|p| p.total)
        .sum();
    scale.outln(format!(
        "solved {solved}/{total}; ratios {:?}\n",
        cmp.ratios().iter().map(|r| f3(*r)).collect::<Vec<_>>()
    ));

    // E9: 33×33.
    scale.outln("## 33×33 comparison (reduced)\n");
    let g33 = grid33::run_grid33(scale.configs.min(60), scale.seed, scale.threads)
        .expect("valid run");
    scale.outln(format!(
        "- T {} (paper 181), S {} (paper 229), reliable: {}\n",
        f2(g33.t_mean()),
        f2(g33.s_mean()),
        g33.both_reliable()
    ));

    // E22 (small field): exhaustive proof.
    scale.outln("## Exhaustive 2-agent decision (8×8)\n");
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let r = exhaustive::exhaustive_two_agents(kind, 8, usize::MAX, scale.threads);
        scale.outln(format!(
            "- {}-grid: {}/{} solved, {} cycles -> proof: {}",
            kind.label(),
            r.solved,
            r.total,
            r.never_solves,
            r.is_proof()
        ));
    }

    // Perf snapshot → BENCH_obs.json (+ a copy into the JSONL stream).
    scale.outln("\n## Perf snapshot\n");
    let snapshot = perf_snapshot(&scale, &ga_opts);
    validate_bench_snapshot(&snapshot).expect("snapshot satisfies its own schema");
    a2a_obs::atomic_write(SNAPSHOT_PATH, format!("{snapshot}\n").as_bytes())
        .expect("cwd is writable");
    if let Some(sink) = obs.sink() {
        sink.write_json(&snapshot);
    }
    let num = |path: &[&str]| {
        path.iter()
            .try_fold(&snapshot, |d, k| d.get(k))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    scale.outln(format!(
        "- kernel: {:.2e} agent-steps/s; fitness: {:.1} evals/s; wrote {SNAPSHOT_PATH} (schema-valid)",
        num(&["kernel", "steps_per_sec"]),
        num(&["fitness", "evals_per_sec"]),
    ));

    // Adaptive fitness pipeline before/after → BENCH_fitness.json.
    let fitness = a2a_bench::fitness::fitness_snapshot(
        a2a_bench::fitness::STANDARD_CONFIGS,
        scale.threads,
        scale.seed,
    );
    validate_fitness_snapshot(&fitness).expect("adaptive pipeline beats the baseline exactly");
    a2a_obs::atomic_write(FITNESS_PATH, format!("{fitness}\n").as_bytes())
        .expect("cwd is writable");
    if let Some(sink) = obs.sink() {
        sink.write_json(&fitness);
    }
    let fnum = |path: &[&str]| {
        path.iter()
            .try_fold(&fitness, |d, k| d.get(k))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    scale.outln(format!(
        "- adaptive fitness: {:.2}x vs baseline over {} epochs ({} cache hits, {} configs pruned); wrote {FITNESS_PATH} (schema-valid)",
        fnum(&["speedup"]),
        a2a_bench::fitness::SNAPSHOT_EPOCHS,
        fnum(&["adaptive", "cache_hits"]),
        fnum(&["selection", "pruned_configs"]),
    ));

    // Single-run vs multi-run kernel throughput → BENCH_kernel.json.
    let kernel = a2a_bench::kernel::kernel_snapshot(
        a2a_bench::kernel::KERNEL_CONFIGS.min(scale.configs.max(10)),
        scale.seed,
    );
    validate_kernel_snapshot(&kernel)
        .expect("frontier kernel beats the single-run path and dense scan, all engines agree");
    a2a_obs::atomic_write(KERNEL_PATH, format!("{kernel}\n").as_bytes())
        .expect("cwd is writable");
    if let Some(sink) = obs.sink() {
        sink.write_json(&kernel);
    }
    let knum = |path: &[&str]| {
        path.iter()
            .try_fold(&kernel, |d, k| d.get(k))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    scale.outln(format!(
        "- multi-run kernel: {:.2}x vs single-run ({:.2e} vs {:.2e} steps/s, chunk {}); \
         frontier {:.2}x vs dense scan; parallel {:.2}x over dense ({} worker(s)); \
         bit-sliced ratio {:.2}x vs multi; wrote {KERNEL_PATH} (schema-valid)",
        knum(&["speedup"]),
        knum(&["multi", "steps_per_sec"]),
        knum(&["single", "steps_per_sec"]),
        knum(&["multi", "chunk"]),
        knum(&["frontier_speedup"]),
        knum(&["parallel_speedup"]),
        knum(&["parallel", "workers"]),
        knum(&["sliced_speedup"]),
    ));

    // One sealed trend point for the perf observatory.
    match append_history_line(&scale, &snapshot, &fitness, &kernel) {
        Ok(()) => scale.outln(format!("- appended trend point to {HISTORY_PATH}")),
        Err(e) => scale.outln(format!("- could not append to {HISTORY_PATH}: {e}")),
    }

    scale.outln(
        "\nAll headline claims regenerate at reduced scale; see EXPERIMENTS.md for the full protocol numbers.",
    );
}

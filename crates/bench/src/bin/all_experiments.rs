//! Runs the complete experiment suite at reduced (one-sitting) scale and
//! prints a combined markdown report — a smoke-regeneration of every
//! claim in EXPERIMENTS.md with one command.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin all_experiments [--configs N]
//! ```
//!
//! For the paper-scale numbers run the individual binaries with `--full`.

use a2a_analysis::experiments::{
    density::{run_density_comparison, DensityExperiment, TABLE1_AGENT_COUNTS},
    distances, exhaustive, grid33,
};
use a2a_analysis::{f2, f3};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(60);
    println!("# Combined reduced-scale regeneration\n");
    println!(
        "configs per point: {}, seed {}, threads {}\n",
        scale.configs, scale.seed, scale.threads
    );

    // E1–E3: topology & distances.
    println!("## Topology & distances (Fig. 1, Fig. 2, Eq. 1–3)\n");
    let s = distances::survey(GridKind::Square, 3);
    let t = distances::survey(GridKind::Triangulate, 3);
    println!("- size-3 torus: D_S = {} (paper 8), D_T = {} (paper 5)", s.diameter, t.diameter);
    println!(
        "- mean distances: S {} (paper 4), T {} (paper ≈3.09)\n",
        f2(s.mean),
        f2(t.mean)
    );

    // E6: Table 1.
    println!("## Table 1 / Fig. 5 (reduced)\n");
    let exp = DensityExperiment {
        m: 16,
        agent_counts: TABLE1_AGENT_COUNTS.to_vec(),
        n_random: scale.configs,
        seed: scale.seed,
        t_max: 5000,
        threads: scale.threads,
    };
    let cmp = run_density_comparison(&exp).expect("valid experiment");
    println!("{}", cmp.to_table().to_markdown());
    let solved: usize = cmp
        .t_grid
        .points
        .iter()
        .chain(&cmp.s_grid.points)
        .map(|p| p.successes)
        .sum();
    let total: usize = cmp
        .t_grid
        .points
        .iter()
        .chain(&cmp.s_grid.points)
        .map(|p| p.total)
        .sum();
    println!("solved {solved}/{total}; ratios {:?}\n", cmp.ratios().iter().map(|r| f3(*r)).collect::<Vec<_>>());

    // E9: 33×33.
    println!("## 33×33 comparison (reduced)\n");
    let g33 = grid33::run_grid33(scale.configs.min(60), scale.seed, scale.threads)
        .expect("valid run");
    println!(
        "- T {} (paper 181), S {} (paper 229), reliable: {}\n",
        f2(g33.t_mean()),
        f2(g33.s_mean()),
        g33.both_reliable()
    );

    // E22 (small field): exhaustive proof.
    println!("## Exhaustive 2-agent decision (8×8)\n");
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let r = exhaustive::exhaustive_two_agents(kind, 8, usize::MAX, scale.threads);
        println!(
            "- {}-grid: {}/{} solved, {} cycles -> proof: {}",
            kind.label(),
            r.solved,
            r.total,
            r.never_solves,
            r.is_proof()
        );
    }
    println!("\nAll headline claims regenerate at reduced scale; see EXPERIMENTS.md for the full protocol numbers.");
}

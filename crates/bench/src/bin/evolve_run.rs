//! E11 — the genetic procedure of Sect. 4, at configurable scale:
//! four independent optimisation runs (k = 8, 16×16), extraction of the
//! top completely successful FSMs, and a reliability screen across agent
//! densities — exactly the paper's protocol, with `--configs/--full`
//! scaling the configuration sets.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin evolve_run -- --grid t \
//!     [--configs N] [--generations G] [--runs R] \
//!     [--checkpoint-dir DIR] [--resume]
//! ```
//!
//! With `--checkpoint-dir` every optimisation run persists a rolling
//! `a2a-run/checkpoint/v1` snapshot (one subdirectory per run) at every
//! generation boundary; `--resume` restores a killed run from there and
//! continues bit-identically.

use a2a_bench::RunScale;
use a2a_fsm::{best_agent, FsmSpec, Genome};
use a2a_ga::{screen, Evaluator, GaConfig, WorkerPool};
use a2a_grid::GridKind;
use a2a_run::{run_evolution, CheckpointStore, RunOptions};
use a2a_sim::{paper_config_set, WorldConfig};
use std::sync::Arc;

struct Args {
    scale: RunScale,
    kind: GridKind,
    generations: usize,
    runs: usize,
    checkpoint_dir: Option<String>,
    resume: bool,
}

fn parse_args() -> Args {
    // Shared flags first (--configs/--seed/--threads/--full/--quiet/
    // --json-out), then this binary's own on what remains.
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::extract(&mut argv, 100);
    let mut args = Args {
        generations: if scale.full { 600 } else { 150 },
        scale,
        kind: GridKind::Triangulate,
        runs: 4,
        checkpoint_dir: None,
        resume: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
                .clone()
        };
        match flag.as_str() {
            "--grid" => {
                args.kind = match value("--grid").as_str() {
                    "t" | "T" => GridKind::Triangulate,
                    "s" | "S" => GridKind::Square,
                    g => panic!("unknown grid `{g}`"),
                }
            }
            "--generations" => args.generations = value("--generations").parse().expect("numeric"),
            "--runs" => args.runs = value("--runs").parse().expect("numeric"),
            "--checkpoint-dir" => args.checkpoint_dir = Some(value("--checkpoint-dir")),
            "--resume" => args.resume = true,
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(
        !args.resume || args.checkpoint_dir.is_some(),
        "--resume requires --checkpoint-dir"
    );
    args
}

fn main() {
    let args = parse_args();
    let scale = &args.scale;
    let kind = args.kind;
    let _sink = scale.init_obs("evolve_run");
    scale.outln(format!(
        "=== E11: genetic procedure — {} grid, {} runs x {} generations, {} configs, seed {} ===\n",
        kind, args.runs, args.generations, scale.configs, scale.seed,
    ));
    scale.outln(format!(
        "search space: 10^{:.1} FSMs\n",
        FsmSpec::paper(kind).search_space_log10()
    ));

    let env = WorldConfig::paper(kind, 16);
    // One worker pool for every run in this process. The fitness caches
    // stay per-run: each run trains on its own configuration set, and a
    // cache is only valid for the set it was filled against.
    let workers = Arc::new(WorkerPool::new(scale.threads));
    // "Four independent optimization runs on 1003 initial configurations
    //  were performed, with field size 16x16 and N_agents = 8."
    let mut candidates: Vec<(usize, Genome, f64)> = Vec::new();
    for run in 0..args.runs {
        let run_seed = scale.seed.wrapping_add(run as u64 * 0x0123_4567);
        let train = paper_config_set(env.lattice, kind, 8, scale.configs, run_seed)
            .expect("8 agents fit 16x16");
        let evaluator = Evaluator::new(env.clone(), train).with_pool(Arc::clone(&workers));
        let cache_probe = evaluator.clone();
        // Each optimisation run checkpoints into its own subdirectory:
        // runs are independent experiments with distinct context digests.
        let opts = RunOptions {
            store: args
                .checkpoint_dir
                .as_ref()
                .map(|dir| CheckpointStore::new(format!("{dir}/run{run}"))),
            cadence: 1,
            resume: args.resume,
            stop: None,
        };
        let report = run_evolution(
            FsmSpec::paper(kind),
            &evaluator,
            GaConfig::paper(args.generations, run_seed),
            Vec::new(),
            &opts,
            |s| {
                if s.generation % 25 == 0 {
                    scale.progress(
                        "bench.progress",
                        format!(
                            "  run {run}, gen {:4}: best F {:10.2}{}",
                            s.generation,
                            s.best_fitness,
                            if s.best_complete { " complete" } else { "" },
                        ),
                    );
                }
            },
        )
        .unwrap_or_else(|e| panic!("run {run} cannot start: {e}"));
        if let Some(from) = report.resumed_from {
            scale.progress(
                "bench.progress",
                format!("  run {run}: resumed from checkpoint at generation {from}"),
            );
        }
        if report.killed {
            // A scheduled fault-injection kill: die like a real crash
            // (checkpoint is already durable; `--resume` continues it).
            scale.progress(
                "bench.progress",
                format!("  run {run}: simulated kill — rerun with --resume to continue"),
            );
            std::process::exit(137);
        }
        if report.checkpoint_errors > 0 {
            scale.progress(
                "bench.progress",
                format!("  run {run}: {} checkpoint writes failed", report.checkpoint_errors),
            );
        }
        let outcome = report.outcome;
        // "Then the top 3 completely successful FSMs of each run
        //  (altogether 12) were also tested …"
        let top = outcome.top_completely_successful(3);
        let (hits, misses) = (cache_probe.cache().hits(), cache_probe.cache().misses());
        scale.outln(format!(
            "run {run}: {} completely successful individuals in the final pool \
             (fitness cache: {hits} hits / {misses} misses)",
            top.len()
        ));
        for ind in top {
            candidates.push((run, ind.genome.clone(), ind.report.fitness));
        }
    }

    if candidates.is_empty() {
        scale.outln(
            "\nno completely successful FSM evolved at this scale; \
             re-run with more --generations/--configs",
        );
        return;
    }

    // Reliability screening across densities, then rank.
    scale.progress(
        "bench.progress",
        format!("\nscreening {} candidates across densities…", candidates.len()),
    );
    let screen_ks = [2usize, 4, 8, 16, 32, 256];
    let mut ranked: Vec<(usize, Genome, f64, bool)> = Vec::new();
    for (run, genome, _) in candidates {
        let report = screen(
            &genome,
            &env,
            &screen_ks,
            (scale.configs / 4).max(10),
            scale.seed ^ 0xBEEF,
            2000,
            scale.threads,
        )
        .expect("screen densities fit the field");
        let mean_fitness: f64 = report
            .per_density
            .iter()
            .map(|d| d.report.fitness)
            .sum::<f64>()
            / report.per_density.len() as f64;
        ranked.push((run, genome, mean_fitness, report.is_reliable()));
    }
    ranked.sort_by(|a, b| {
        b.3.cmp(&a.3)
            .then(a.2.partial_cmp(&b.2).expect("fitness is not NaN"))
    });

    let (run, best, fitness, reliable) = &ranked[0];
    scale.outln(format!(
        "\nbest evolved candidate (from run {run}): screen fitness {fitness:.2}, reliable: {reliable}"
    ));
    scale.outln(format!("{best}"));
    scale.outln(format!("genome digits: {}\n", best.to_digits()));

    // Compare against the published FSM on a fresh set.
    let fresh = paper_config_set(env.lattice, kind, 8, scale.configs.max(100), 0xACE)
        .expect("8 agents fit 16x16");
    let eval = Evaluator::new(env, fresh).with_t_max(2000).with_threads(scale.threads);
    let ours = eval.evaluate(best);
    let published = eval.evaluate(&best_agent(kind));
    scale.outln(format!(
        "fresh-set comparison  (k = 8): evolved mean t_comm {:.2} ({}/{} solved) \
         vs published {:.2} ({}/{})",
        ours.mean_t_comm.unwrap_or(f64::NAN),
        ours.successes,
        ours.total,
        published.mean_t_comm.unwrap_or(f64::NAN),
        published.successes,
        published.total,
    ));
}

//! E13 — initial-control-state ablation: the paper's reliability
//! mechanism (`initial state = ID mod 2`) against uniform starts, on the
//! adversarial manual configurations and a random set.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin ablation_init_states [--configs N]
//! ```

use a2a_analysis::experiments::ablation::init_state_ablation;
use a2a_analysis::TextTable;
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(100);
    let _sink = scale.init_obs("ablation_init_states");
    scale.outln(scale.banner("E13: initial control states"));
    scale.outln("");

    for kind in [GridKind::Square, GridKind::Triangulate] {
        for k in [4usize, 8, 16] {
            let outcomes = init_state_ablation(
                kind,
                k,
                scale.configs,
                scale.seed,
                3000,
                scale.threads,
            )
            .expect("densities fit the field");
            let mut table = TextTable::new(vec![
                "policy", "manual solved", "random solved",
            ]);
            for o in &outcomes {
                table.add_row(vec![
                    o.policy.clone(),
                    format!("{}/{}", o.manual_successes, o.manual_total),
                    format!("{}/{}", o.random_successes, o.random_total),
                ]);
            }
            scale.outln(format!("{}-grid, k = {k}:\n{table}", kind.label()));
        }
    }
    scale.outln(
        "paper context (Sect. 4): no reliable uniform agents were found starting \
         all in state 0 or 3; starting half in state 0, half in state 1 \
         (ID mod 2) made the agents reliable. The manual configurations are the \
         symmetric queues/diagonal designed so synchronous identical agents \
         may never meet.",
    );
}

//! E20 — mutation-only vs crossover+mutation, plus genome entry-usage
//! analysis of the published agents.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin ga_convergence [--configs N]
//! ```

use a2a_analysis::experiments::convergence::compare_strategies;
use a2a_analysis::{f2, profile_usage, TextTable};
use a2a_bench::RunScale;
use a2a_fsm::best_agent;
use a2a_ga::ReproductionStrategy;
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, WorldConfig};

fn main() {
    let scale = RunScale::from_args(40);
    let _sink = scale.init_obs("ga_convergence");
    scale.outln(scale.banner("E20: GA heuristics & genome usage"));
    scale.outln("");

    let strategies = [
        ReproductionStrategy::MutationOnly,
        ReproductionStrategy::OnePointCrossover,
        ReproductionStrategy::UniformCrossover,
    ];
    let (runs, generations) = if scale.full { (8, 300) } else { (4, 80) };
    for kind in [GridKind::Triangulate, GridKind::Square] {
        scale.progress(
            "bench.progress",
            format!(
                "{}-grid: {runs} runs x {generations} generations, {} configs each",
                kind.label(),
                scale.configs,
            ),
        );
        let reports = compare_strategies(
            kind,
            &strategies,
            runs,
            scale.configs,
            generations,
            scale.seed,
            scale.threads,
        )
        .expect("8 agents fit 16x16");
        let mut table = TextTable::new(vec![
            "strategy",
            "final fitness (mean)",
            "sd",
            "complete runs",
            "success gen (mean)",
        ]);
        for r in &reports {
            table.add_row(vec![
                format!("{:?}", r.strategy),
                f2(r.final_fitness.mean),
                f2(r.final_fitness.std_dev),
                format!("{}/{}", r.runs_successful, r.runs),
                r.success_generation
                    .map_or("-".to_string(), |s| f2(s.mean)),
            ]);
        }
        scale.outln(format!("{table}"));
    }
    scale.outln(
        "paper context: the authors found mutation-only 'similar good' to \
         crossover/mutation and used mutation only; which heuristic is best \
         is explicitly left open.\n",
    );

    // Island model ("parallel populations" of the authors' prior work):
    // same total generation budget, 4 pools with ring migration.
    scale.outln("--- island model vs single pool (same generation budget) ---");
    {
        use a2a_fsm::FsmSpec;
        use a2a_ga::{run_islands, Evaluator, Evolution, GaConfig, IslandConfig};
        let kind = GridKind::Triangulate;
        let env = WorldConfig::paper(kind, 16);
        let train = paper_config_set(env.lattice, kind, 8, scale.configs, scale.seed)
            .expect("8 agents fit 16x16");
        let evaluator = Evaluator::new(env, train).with_threads(scale.threads);
        let budget = generations;
        let single = Evolution::new(
            FsmSpec::paper(kind),
            evaluator.clone(),
            GaConfig::paper(budget, scale.seed),
        )
        .run(|_| ());
        let islands = run_islands(
            FsmSpec::paper(kind),
            &evaluator,
            GaConfig::paper(budget / 4, scale.seed),
            IslandConfig::default_ring(),
            |_, _| {},
        );
        scale.outln(format!(
            "single pool ({budget} gens)      : best F {:.2}",
            single.best().report.fitness
        ));
        scale.outln(format!(
            "4 islands ({} gens each + ring): best F {:.2}",
            budget / 4,
            islands.best().report.fitness
        ));
    }
    scale.outln("");

    // Entry-usage of the published agents: how much of the 32-row genome
    // actually executes.
    scale.outln("--- genome entry usage of the published agents ---");
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let env = WorldConfig::paper(kind, 16);
        let configs =
            paper_config_set(env.lattice, kind, 8, scale.configs.max(50), scale.seed)
                .expect("8 agents fit 16x16");
        let p = profile_usage(&env, &best_agent(kind), &configs, 1000, scale.threads);
        scale.outln(format!(
            "{}-agent: {} dead rows of 32; top-8 rows take {:.0}% of all decisions",
            kind.label(),
            p.dead_entries().len(),
            p.concentration(8) * 100.0,
        ));
    }
}

//! E21 — mobility vs density: what fraction of steps agents spend
//! moving, and how it explains the k = 4 maximum of Table 1.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin mobility [--configs N]
//! ```

use a2a_analysis::experiments::mobility::mobility_sweep;
use a2a_analysis::{f2, TextTable};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(100);
    let _sink = scale.init_obs("mobility");
    scale.outln(scale.banner("E21: agent mobility vs density"));
    scale.outln("");

    let ks = [2usize, 4, 8, 16, 32, 64, 256];
    let mut table = TextTable::new(vec![
        "grid", "k", "mobility (mean)", "sd", "t_comm (mean)",
    ]);
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let points = mobility_sweep(kind, &ks, scale.configs, scale.seed, 5000, scale.threads)
            .expect("densities fit the field");
        for p in &points {
            table.add_row(vec![
                kind.label().to_string(),
                p.agents.to_string(),
                format!("{:.3}", p.mobility.mean),
                format!("{:.3}", p.mobility.std_dev),
                if p.times.n == 0 { "-".into() } else { f2(p.times.mean) },
            ]);
        }
    }
    scale.outln(format!("{table}"));
    scale.outln(
        "reading: mobility stays near 1 up to k≈32 (collisions are rare) and \
         collapses towards 0 at full packing, where pure diffusion takes \
         over. The k = 4 slowdown is therefore *not* a congestion effect — \
         it is a search effect: more agents than 2 dilute the pairwise \
         meeting problem without yet providing relay coverage.",
    );
}

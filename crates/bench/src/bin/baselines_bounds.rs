//! E16 — evolved agents vs. hand-coded baselines vs. the diffusion lower
//! bound: how much the genetic procedure buys, and how close the evolved
//! agents are to movement-optimal information diffusion.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin baselines_bounds [--configs N]
//! ```

use a2a_analysis::experiments::baselines::{baseline_comparison, bound_comparison};
use a2a_analysis::experiments::density::DensityExperiment;
use a2a_analysis::{f2, TextTable};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(100);
    let _sink = scale.init_obs("baselines_bounds");
    scale.outln(scale.banner("E16: baselines & lower bounds"));
    scale.outln("");

    let exp = DensityExperiment {
        m: 16,
        agent_counts: vec![2, 8, 16],
        n_random: scale.configs,
        seed: scale.seed,
        t_max: 5000,
        threads: scale.threads,
    };

    scale.outln("--- hand-coded baselines vs the evolved agents ---");
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let variants = baseline_comparison(kind, &exp).expect("densities fit the field");
        let mut header = vec!["behaviour".to_string()];
        header.extend(exp.agent_counts.iter().map(|k| format!("k={k}")));
        header.push("solved".to_string());
        let mut table = TextTable::new(header);
        for v in &variants {
            let mut cells = vec![v.label.clone()];
            cells.extend(v.series.points.iter().map(|p| {
                if p.successes == 0 { "-".into() } else { f2(p.times.mean) }
            }));
            let solved: usize = v.series.points.iter().map(|p| p.successes).sum();
            let total: usize = v.series.points.iter().map(|p| p.total).sum();
            cells.push(format!("{solved}/{total}"));
            table.add_row(cells);
        }
        scale.outln(format!("{}-grid:\n{table}", kind.label()));
    }
    scale.outln(
        "reading: ballistic agents ride parallel orbits and often never meet; \
         even the hand-written colour-trail heuristic trails the evolved FSM.\n",
    );

    scale.outln("--- measured time vs the diffusion lower bound (⌈(d_max−1)/3⌉) ---");
    let mut table = TextTable::new(vec![
        "grid", "k", "bound mean", "measured mean", "slowdown", "solved",
    ]);
    for kind in [GridKind::Triangulate, GridKind::Square] {
        for &k in &[2usize, 8, 16] {
            let r = bound_comparison(kind, k, scale.configs, scale.seed, 5000, scale.threads)
                .expect("densities fit the field");
            table.add_row(vec![
                kind.label().to_string(),
                k.to_string(),
                f2(r.bound.mean),
                f2(r.measured.mean),
                format!("{:.1}x", r.mean_slowdown),
                format!("{}/{}", r.successes, r.total),
            ]);
        }
    }
    scale.outln(format!("{table}"));
    scale.outln(
        "reading: the bound assumes perfectly aimed movement and relaying; \
         the gap (one order of magnitude at low density) is the price of \
         *searching* for partners with local information only.",
    );
}

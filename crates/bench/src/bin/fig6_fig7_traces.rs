//! E7/E8 — regenerates the **Fig. 6** (S-grid streets) and **Fig. 7**
//! (T-grid honeycombs) two-agent traces, including the colour and visited
//! layers.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin fig6_fig7_traces [--seed S]
//! ```

use a2a_analysis::experiments::traces;
use a2a_bench::RunScale;

fn main() {
    let scale = RunScale::from_args(500);
    println!("{}\n", scale.banner("E7/E8: Fig. 6 and Fig. 7 traces"));

    println!("--- E7: Fig. 6, S-grid, target 114 steps ---\n");
    let fig6 = traces::fig6(scale.seed, scale.configs).expect("trace construction");
    for snap in &fig6.snapshots {
        println!("{snap}\n");
    }
    println!(
        "S-pair solved in {} steps (paper's special configuration: 114)\n",
        fig6.outcome.t_comm.expect("searched configurations are successful"),
    );

    println!("--- E8: Fig. 7, T-grid, target 44 steps ---\n");
    let fig7 = traces::fig7(scale.seed, scale.configs).expect("trace construction");
    for snap in &fig7.snapshots {
        println!("{snap}\n");
    }
    println!(
        "T-pair solved in {} steps (paper's special configuration: 44)",
        fig7.outcome.t_comm.expect("searched configurations are successful"),
    );
}

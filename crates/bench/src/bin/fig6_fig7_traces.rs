//! E7/E8 — regenerates the **Fig. 6** (S-grid streets) and **Fig. 7**
//! (T-grid honeycombs) two-agent traces, including the colour and visited
//! layers, and exports the full trajectories (frames + informed-count
//! event channel) as JSONL under `results/`.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin fig6_fig7_traces [--seed S]
//! ```

use a2a_analysis::experiments::traces;
use a2a_bench::RunScale;
use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::{record_trajectory, World, WorldConfig};
use std::fs;
use std::path::Path;

/// Replays the traced configuration with the frame recorder and writes
/// the trajectory (schema `a2a-sim/trajectory/v1`) next to the report.
fn export_trajectory(scale: &RunScale, kind: GridKind, trace: &traces::TraceResult, stem: &str) {
    let cfg = WorldConfig::paper(kind, 16);
    let mut world = World::new(&cfg, best_agent(kind), &trace.init).expect("traced config replays");
    let (_, traj) = record_trajectory(&mut world, 2000);
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("results directory is creatable");
    let path = out_dir.join(format!("{stem}_trajectory.jsonl"));
    fs::write(&path, traj.to_jsonl()).expect("results/ is writable");
    scale.progress(
        "bench.artifact",
        format!(
            "wrote {} ({} frames, {} events)",
            path.display(),
            traj.len(),
            traj.events().len(),
        ),
    );
}

fn main() {
    let scale = RunScale::from_args(500);
    let _sink = scale.init_obs("fig6_fig7_traces");
    scale.outln(scale.banner("E7/E8: Fig. 6 and Fig. 7 traces"));
    scale.outln("");

    scale.outln("--- E7: Fig. 6, S-grid, target 114 steps ---\n");
    let fig6 = traces::fig6(scale.seed, scale.configs).expect("trace construction");
    for snap in &fig6.snapshots {
        scale.outln(format!("{snap}\n"));
    }
    scale.outln(format!(
        "S-pair solved in {} steps (paper's special configuration: 114)\n",
        fig6.outcome.t_comm.expect("searched configurations are successful"),
    ));
    export_trajectory(&scale, GridKind::Square, &fig6, "fig6_s");

    scale.outln("--- E8: Fig. 7, T-grid, target 44 steps ---\n");
    let fig7 = traces::fig7(scale.seed, scale.configs).expect("trace construction");
    for snap in &fig7.snapshots {
        scale.outln(format!("{snap}\n"));
    }
    scale.outln(format!(
        "T-pair solved in {} steps (paper's special configuration: 44)",
        fig7.outcome.t_comm.expect("searched configurations are successful"),
    ));
    export_trajectory(&scale, GridKind::Triangulate, &fig7, "fig7_t");
}

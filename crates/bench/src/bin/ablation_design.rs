//! E14 — design-choice ablations: conflict-arbitration priority
//! (lowest vs. highest ID) and the restricted T turn set
//! (paper codes {0°, 60°, 180°, −60°} vs. a naive full-set
//! reinterpretation).
//!
//! ```text
//! cargo run --release -p a2a-bench --bin ablation_design [--configs N]
//! ```

use a2a_analysis::experiments::ablation::{conflict_ablation, turn_set_ablation, Variant};
use a2a_analysis::experiments::density::DensityExperiment;
use a2a_analysis::{f2, TextTable};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn print_variants(scale: &RunScale, title: &str, agent_counts: &[usize], variants: &[Variant]) {
    let mut header = vec!["variant".to_string()];
    header.extend(agent_counts.iter().map(|k| format!("k={k}")));
    header.push("solved".to_string());
    let mut table = TextTable::new(header);
    for v in variants {
        let mut cells = vec![v.label.clone()];
        cells.extend(v.series.points.iter().map(|p| {
            if p.successes == 0 { "-".into() } else { f2(p.times.mean) }
        }));
        let solved: usize = v.series.points.iter().map(|p| p.successes).sum();
        let total: usize = v.series.points.iter().map(|p| p.total).sum();
        cells.push(format!("{solved}/{total}"));
        table.add_row(cells);
    }
    scale.outln(format!("{title}\n{table}"));
}

fn main() {
    let scale = RunScale::from_args(100);
    let _sink = scale.init_obs("ablation_design");
    scale.outln(scale.banner("E14: conflict priority & turn set"));
    scale.outln("");

    let exp = DensityExperiment {
        m: 16,
        agent_counts: vec![4, 8, 16, 32],
        n_random: scale.configs,
        seed: scale.seed,
        t_max: 5000,
        threads: scale.threads,
    };

    for kind in [GridKind::Triangulate, GridKind::Square] {
        let variants = conflict_ablation(kind, &exp).expect("densities fit the field");
        print_variants(
            &scale,
            &format!("E14a: conflict arbitration, {}-grid", kind.label()),
            &exp.agent_counts,
            &variants,
        );
    }
    scale.outln(
        "expectation: arbitration priority is a symmetry-breaking detail; \
         swapping it should barely move the means.\n",
    );

    let variants = turn_set_ablation(&exp).expect("densities fit the field");
    print_variants(&scale, "E14b: T-agent turn-set interpretation", &exp.agent_counts, &variants);
    scale.outln(
        "expectation: the full-set remap row is IDENTICAL to the paper row \
         (same behaviour, different encoding); the naive reinterpretation \
         (codes 2/3 become +120°/180°) perturbs the evolved strategy and \
         degrades time and/or reliability.",
    );
}

//! Renders the graphical versions of the paper's figures as SVG files
//! under `results/`: the Fig. 5 density chart, Fig. 6/7 field snapshots
//! and the two-agent trajectory plots.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin render_svg [--configs N]
//! ```

use a2a_analysis::experiments::density::{run_density_comparison, DensityExperiment};
use a2a_analysis::experiments::traces::{find_two_agent_config, FIG6_S_TIME, FIG7_T_TIME};
use a2a_bench::RunScale;
use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::{record_trajectory, World, WorldConfig};
use a2a_viz::{render_chart, render_field, render_trajectory, ChartScale, ChartSeries, Theme};
use std::fs;
use std::path::Path;

fn main() {
    let scale = RunScale::from_args(100);
    let _sink = scale.init_obs("render_svg");
    scale.outln(scale.banner("SVG renderings of Fig. 5/6/7"));
    scale.outln("");
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("results directory is creatable");
    let theme = Theme::default();

    // Fig. 5 as an SVG chart.
    let exp = DensityExperiment::quick(scale.configs, scale.seed, scale.threads);
    let cmp = run_density_comparison(&exp).expect("valid experiment");
    let series = |s: &a2a_analysis::experiments::density::GridSeries, color: &str| ChartSeries {
        label: format!("{}-grid", s.kind.label()),
        color: color.into(),
        points: s.points.iter().map(|p| (p.agents as f64, p.times.mean)).collect(),
    };
    let chart = render_chart(
        "Fig. 5: communication time vs N_agents (16x16)",
        "N_agents (log2)",
        "t_comm",
        ChartScale::Log2,
        &[series(&cmp.t_grid, "#c1121f"), series(&cmp.s_grid, "#2a6f97")],
    );
    fs::write(out_dir.join("fig5_chart.svg"), &chart).expect("results/ is writable");
    scale.progress(
        "bench.artifact",
        format!("wrote results/fig5_chart.svg ({} bytes)", chart.len()),
    );

    // Fig. 6/7: final field snapshots + trajectory plots.
    for (kind, target, stem) in [
        (GridKind::Square, FIG6_S_TIME, "fig6_s"),
        (GridKind::Triangulate, FIG7_T_TIME, "fig7_t"),
    ] {
        let (init, t) = find_two_agent_config(kind, target, 500, scale.seed);
        let cfg = WorldConfig::paper(kind, 16);
        let mut world = World::new(&cfg, best_agent(kind), &init).expect("valid world");
        let (outcome, traj) = record_trajectory(&mut world, 2000);
        let field_svg = render_field(&world, &theme);
        let traj_svg = render_trajectory(cfg.lattice, &traj, &theme);
        fs::write(out_dir.join(format!("{stem}_field.svg")), &field_svg)
            .expect("results/ is writable");
        fs::write(out_dir.join(format!("{stem}_paths.svg")), &traj_svg)
            .expect("results/ is writable");
        scale.progress(
            "bench.artifact",
            format!(
                "wrote results/{stem}_field.svg + results/{stem}_paths.svg \
                 (config with t_comm = {t}, replay took {:?})",
                outcome.t_comm,
            ),
        );
    }
}

//! E24 — adversarial worst-case search: hill-climbing configurations to
//! maximise communication time, bounding the published agents' tail
//! behaviour beyond what random sampling sees.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin worst_case [--configs ITERATIONS]
//! ```

use a2a_analysis::experiments::worstcase::adversarial_search;
use a2a_analysis::TextTable;
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(400);
    let _sink = scale.init_obs("worst_case");
    scale.outln(scale.banner("E24: adversarial worst-case search"));
    scale.outln("");
    scale.outln("(--configs is the hill-climbing iteration budget here)\n");

    let mut table = TextTable::new(vec![
        "grid", "k", "random start", "worst found", "blow-up", "accepted moves",
    ]);
    for kind in [GridKind::Triangulate, GridKind::Square] {
        for &k in &[2usize, 4, 8, 16] {
            // Three restarts, keep the hardest.
            let mut best: Option<a2a_analysis::experiments::worstcase::WorstCase> = None;
            for restart in 0..3u64 {
                let w = adversarial_search(kind, k, scale.configs, scale.seed ^ restart, 20_000)
                    .expect("valid environment");
                if w.time.is_none() {
                    scale.progress(
                        "bench.refuted",
                        format!("!!! reliability REFUTED: unsolved configuration found: {w:?}"),
                    );
                    return;
                }
                if best.as_ref().is_none_or(|b| w.time > b.time) {
                    best = Some(w);
                }
            }
            let w = best.expect("three restarts ran");
            let t = w.time.expect("reliable");
            table.add_row(vec![
                kind.label().to_string(),
                k.to_string(),
                w.initial_time.to_string(),
                t.to_string(),
                format!("{:.1}x", f64::from(t) / f64::from(w.initial_time.max(1))),
                w.improvements.to_string(),
            ]);
        }
    }
    scale.outln(format!("{table}"));
    scale.outln(
        "reading: adversarial search finds configurations several times slower \
         than typical random fields (cf. the exact k=2 worst cases of E22: \
         499 T / 663 S), yet never an unsolved one — the reliability claim \
         survives active attack at every density tried.",
    );
}

//! E25 — border-native evolution: evolve agents *for* bordered fields
//! and compare specialists in their home environments (the earlier-paper
//! claim that "environments with border are easier").
//!
//! ```text
//! cargo run --release -p a2a-bench --bin ext_border_evolution [--configs N]
//! ```

use a2a_analysis::experiments::border_evolution::border_evolution;
use a2a_analysis::{f2, TextTable};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(50);
    let _sink = scale.init_obs("ext_border_evolution");
    scale.outln(scale.banner("E25: border-native evolution"));
    scale.outln("");

    let generations = if scale.full { 400 } else { 120 };
    for kind in [GridKind::Triangulate, GridKind::Square] {
        scale.progress(
            "bench.progress",
            format!(
                "{}-grid: evolving torus + border specialists ({} configs, {generations} gens, k = 8)…",
                kind.label(),
                scale.configs,
            ),
        );
        let r = border_evolution(kind, 8, scale.configs, generations, scale.seed, scale.threads)
            .expect("8 agents fit 16x16");
        let mut table = TextTable::new(vec!["specialist", "on torus", "on bordered"]);
        let cell = |rep: &a2a_ga::FitnessReport| {
            if rep.successes == rep.total {
                f2(rep.mean_t_comm.unwrap_or(f64::NAN))
            } else {
                format!("{}/{} solved", rep.successes, rep.total)
            }
        };
        table.add_row(vec![
            "torus-evolved".into(),
            cell(&r.torus_home),
            cell(&r.torus_on_border),
        ]);
        table.add_row(vec![
            "border-evolved".into(),
            cell(&r.border_on_torus),
            cell(&r.border_home),
        ]);
        scale.outln(format!("{table}"));
        scale.outln(format!(
            "border easier for its own specialist: {}\n",
            if r.border_is_easier() { "YES (matches the earlier paper)" } else { "no (budget-limited)" },
        ));
    }
    scale.outln(
        "paper context: 'environments with border are easier (faster) to \
         solve' held for border-evolved agents in the authors' earlier \
         S-grid studies; the torus (used in this paper) removes the \
         orientation cue and is the harder, more general setting.",
    );
}

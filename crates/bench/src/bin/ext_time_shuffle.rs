//! E17 — time-shuffling extension: evolve a pool, then compare the best
//! single FSM against time-shuffled pairs from the pool's top
//! individuals (the authors' earlier work, ref. \[8\], reports shuffling helps).
//!
//! ```text
//! cargo run --release -p a2a-bench --bin ext_time_shuffle [--configs N]
//! ```

use a2a_analysis::experiments::time_shuffle::shuffle_comparison;
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(60);
    let _sink = scale.init_obs("ext_time_shuffle");
    scale.outln(scale.banner("E17: time-shuffled FSM pairs"));
    scale.outln("");

    for kind in [GridKind::Triangulate, GridKind::Square] {
        let generations = if scale.full { 400 } else { 120 };
        scale.progress(
            "bench.progress",
            format!(
                "{}-grid: evolving a pool ({} configs, {generations} generations), \
                 then pairing the top 4…",
                kind.label(),
                scale.configs,
            ),
        );
        let cmp = shuffle_comparison(kind, scale.configs, generations, 4, scale.seed, scale.threads)
            .expect("8 agents fit 16x16");
        scale.outln(format!(
            "  best single   : fitness {:10.2}, {}/{} solved, mean t_comm {:.2}",
            cmp.single.fitness,
            cmp.single.successes,
            cmp.single.total,
            cmp.single.mean_t_comm.unwrap_or(f64::NAN),
        ));
        scale.outln(format!(
            "  best pair {:?}: fitness {:10.2}, {}/{} solved, mean t_comm {:.2}",
            cmp.pair, cmp.shuffled.fitness, cmp.shuffled.successes, cmp.shuffled.total,
            cmp.shuffled.mean_t_comm.unwrap_or(f64::NAN),
        ));
        scale.outln(format!(
            "  time-shuffling {} at this budget\n",
            if cmp.shuffle_wins() { "WINS" } else { "does not win" },
        ));
    }
    scale.outln(
        "paper context: [8] evolved the two FSMs *jointly* for shuffling; \
         pairing independently evolved FSMs is the cheap variant, so a win \
         here is a strong signal and a loss is inconclusive.",
    );
}

//! E22 — exhaustive two-agent verification: every 2-agent configuration
//! of the 16×16 torus modulo translation, *decided* by cycle detection
//! (solve or provable never-solve — no horizon heuristics), proving
//! k = 2 reliability and yielding the exact time distribution.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin two_agent_exhaustive
//! ```

use a2a_analysis::experiments::exhaustive::{exhaustive_three_agents, exhaustive_two_agents};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(0);
    let _sink = scale.init_obs("two_agent_exhaustive");
    scale.outln(scale.banner("E22: exhaustive 2-agent sweep (16x16)"));
    scale.outln("");

    for kind in [GridKind::Triangulate, GridKind::Square] {
        let r = exhaustive_two_agents(kind, 16, usize::MAX, scale.threads);
        scale.outln(format!(
            "{}-grid: {} configurations (255 relative positions x {}^2 direction pairs)",
            kind.label(),
            r.total,
            kind.dir_count(),
        ));
        scale.outln(format!(
            "  decided: {} solved, {} never-solve cycles -> 2-agent reliability {}",
            r.solved,
            r.never_solves,
            if r.is_proof() { "PROVEN (decision procedure, up to translation)" } else { "REFUTED" },
        ));
        let h = &r.histogram;
        scale.outln(format!(
            "  exact t_comm distribution: min {} | median {} | p95 {} | max {}",
            h.min().unwrap_or(0),
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.95).unwrap_or(0),
            h.max().unwrap_or(0),
        ));
        if let Some((pos, d0, d1, t)) = r.worst {
            scale.outln(format!("  worst case: agent1 at {pos}, dirs ({d0}, {d1}) -> {t} steps"));
        }
        scale.outln(h.render(16, 46));
    }
    scale.outln(
        "reading: the paper could not prove reliability 'for any arbitrary \
         initial configuration'; for k = 2 this sweep settles it exactly.",
    );

    // k = 3 on the 8×8 torus (complete; larger fields grow cubically).
    scale.outln("\n--- k = 3, 8x8 torus (complete decision) ---");
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let r = exhaustive_three_agents(kind, 8, usize::MAX, scale.threads);
        scale.outln(format!(
            "{}-grid: {} cases, {} solved, {} never-solve cycles -> 3-agent reliability on 8x8 {}",
            kind.label(),
            r.total,
            r.solved,
            r.never_solves,
            if r.is_proof() { "PROVEN" } else { "REFUTED" },
        ));
        let h = &r.histogram;
        scale.outln(format!(
            "  exact distribution: median {} | p95 {} | max {}",
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.95).unwrap_or(0),
            h.max().unwrap_or(0),
        ));
    }
}

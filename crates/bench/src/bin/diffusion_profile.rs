//! E19 — information-diffusion profiles: mean informed fraction vs time,
//! T vs S, for several densities.
//!
//! ```text
//! cargo run --release -p a2a-bench --bin diffusion_profile [--configs N]
//! ```

use a2a_analysis::experiments::profile::diffusion_profile;
use a2a_analysis::{AsciiChart, Series, XScale};
use a2a_bench::RunScale;
use a2a_grid::GridKind;

fn main() {
    let scale = RunScale::from_args(150);
    let _sink = scale.init_obs("diffusion_profile");
    scale.outln(scale.banner("E19: diffusion profiles"));
    scale.outln("");

    for k in [4usize, 16] {
        let t = diffusion_profile(GridKind::Triangulate, k, scale.configs, scale.seed, 3000, scale.threads)
            .expect("densities fit the field");
        let s = diffusion_profile(GridKind::Square, k, scale.configs, scale.seed, 3000, scale.threads)
            .expect("densities fit the field");
        let pts = |p: &a2a_analysis::experiments::profile::DiffusionProfile| {
            p.fraction
                .iter()
                .enumerate()
                .map(|(t, &f)| (t as f64, f))
                .collect::<Vec<_>>()
        };
        let chart = AsciiChart::new(70, 16, XScale::Linear)
            .series(Series::new("T-grid", 'T', pts(&t)))
            .series(Series::new("S-grid", 'S', pts(&s)));
        scale.outln(format!("k = {k}: mean informed fraction vs time\n{chart}"));
        for q in [0.5, 0.9, 1.0] {
            scale.outln(format!(
                "  time to {:3.0}% informed: T {:>4} | S {:>4}",
                q * 100.0,
                t.time_to_fraction(q).map_or("-".into(), |v| v.to_string()),
                s.time_to_fraction(q).map_or("-".into(), |v| v.to_string()),
            ));
        }
        scale.outln("");
    }
    scale.outln(
        "reading: the T advantage is not only the final meeting — the whole \
         curve is shifted left, consistent with the diameter-driven \
         explanation of Eq. (3).",
    );
}

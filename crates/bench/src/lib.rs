//! Shared plumbing for the experiment binaries of the reproduction: a
//! tiny flag parser and run-scale presets, so every binary accepts the
//! same `--configs/--seed/--threads/--full` switches.
//!
//! The binaries themselves (in `src/bin/`) regenerate the paper's tables
//! and figures; see DESIGN.md's per-experiment index for the mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use a2a_ga::default_threads;

/// Scale/seed options shared by all experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Random configurations per measurement point.
    pub configs: usize,
    /// Seed of every configuration stream.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Whether `--full` (the paper's 1000-config protocol) was requested.
    pub full: bool,
}

impl RunScale {
    /// Parses `--configs N`, `--seed S`, `--threads T` and `--full` from
    /// the process arguments. `default_configs` applies when neither
    /// `--configs` nor `--full` is given; `--full` selects the paper's
    /// 1000 random configurations.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags (these are
    /// experiment binaries; failing fast beats guessing).
    #[must_use]
    pub fn from_args(default_configs: usize) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut scale = Self {
            configs: default_configs,
            seed: 2013,
            threads: default_threads(),
            full: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
                    .clone()
            };
            match flag.as_str() {
                "--configs" => scale.configs = value("--configs").parse().expect("numeric --configs"),
                "--seed" => scale.seed = value("--seed").parse().expect("numeric --seed"),
                "--threads" => scale.threads = value("--threads").parse().expect("numeric --threads"),
                "--full" => {
                    scale.full = true;
                    scale.configs = 1000;
                }
                other => panic!("unknown flag `{other}` (use --configs/--seed/--threads/--full)"),
            }
        }
        scale
    }

    /// A banner line describing the scale, printed by every binary.
    #[must_use]
    pub fn banner(&self, experiment: &str) -> String {
        format!(
            "=== {experiment} — {} random configs per point, seed {}, {} threads{} ===",
            self.configs,
            self.seed,
            self.threads,
            if self.full { " (paper-scale protocol)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_mentions_scale() {
        let scale = RunScale { configs: 42, seed: 7, threads: 3, full: false };
        let b = scale.banner("Table 1");
        assert!(b.contains("Table 1") && b.contains("42") && b.contains("seed 7"));
    }

    #[test]
    fn full_banner_marks_protocol() {
        let scale = RunScale { configs: 1000, seed: 7, threads: 3, full: true };
        assert!(scale.banner("x").contains("paper-scale"));
    }
}

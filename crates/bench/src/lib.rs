//! Shared plumbing for the experiment binaries of the reproduction: a
//! tiny flag parser, run-scale presets and observability wiring, so
//! every binary accepts the same
//! `--configs/--seed/--threads/--full/--quiet/--json-out` switches.
//!
//! The binaries themselves (in `src/bin/`) regenerate the paper's tables
//! and figures; see DESIGN.md's per-experiment index for the mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod campaign;
pub mod fitness;
pub mod kernel;
pub mod serve;

use a2a_ga::default_threads;
use a2a_obs::{JsonlSink, Level, Sink};
use std::sync::Arc;

/// Scale/seed/output options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunScale {
    /// Random configurations per measurement point.
    pub configs: usize,
    /// Seed of every configuration stream.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Whether `--full` (the paper's 1000-config protocol) was requested.
    pub full: bool,
    /// `--quiet`: suppress the stdout report (events still reach sinks).
    pub quiet: bool,
    /// `--json-out PATH`: mirror events into a JSONL file (see
    /// [`a2a_obs::schema`] for the line format).
    pub json_out: Option<String>,
}

impl RunScale {
    /// Parses the shared flags from the process arguments.
    /// `default_configs` applies when neither `--configs` nor `--full`
    /// is given; `--full` selects the paper's 1000 random configurations.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed or unknown flags (these
    /// are experiment binaries; failing fast beats guessing).
    #[must_use]
    pub fn from_args(default_configs: usize) -> Self {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let scale = Self::extract(&mut args, default_configs);
        if let Some(other) = args.first() {
            panic!(
                "unknown flag `{other}` \
                 (use --configs/--seed/--threads/--full/--quiet/--json-out)"
            );
        }
        scale
    }

    /// Removes the shared flags from `args` and parses them, leaving
    /// binary-specific flags in place for the caller's own parser (used
    /// by binaries like `evolve_run` that add flags on top).
    ///
    /// # Panics
    ///
    /// Panics on malformed values or a flag missing its value.
    #[must_use]
    pub fn extract(args: &mut Vec<String>, default_configs: usize) -> Self {
        let mut scale = Self {
            configs: default_configs,
            seed: 2013,
            threads: default_threads(),
            full: false,
            quiet: false,
            json_out: None,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].clone();
            match flag.as_str() {
                "--full" => {
                    args.remove(i);
                    scale.full = true;
                    scale.configs = 1000;
                }
                "--quiet" => {
                    args.remove(i);
                    scale.quiet = true;
                }
                "--configs" | "--seed" | "--threads" | "--json-out" => {
                    args.remove(i);
                    if i >= args.len() {
                        panic!("missing value for {flag}");
                    }
                    let v = args.remove(i);
                    match flag.as_str() {
                        "--configs" => scale.configs = v.parse().expect("numeric --configs"),
                        "--seed" => scale.seed = v.parse().expect("numeric --seed"),
                        "--threads" => scale.threads = v.parse().expect("numeric --threads"),
                        _ => scale.json_out = Some(v),
                    }
                }
                _ => i += 1,
            }
        }
        scale
    }

    /// Initialises observability for an experiment binary: the level
    /// comes from `A2A_LOG` (stderr sink), and `--json-out` attaches a
    /// `Debug`-verbosity [`JsonlSink`] on top. Returns a guard that
    /// finalizes every sink when dropped — keep it alive for the whole
    /// `main` (sinks are process-global and never dropped themselves,
    /// so without the guard the JSONL stream is never published from
    /// its `.partial` sibling and the buffered tail is lost at exit).
    ///
    /// Emits a `bench.start` event carrying the experiment name and
    /// scale, so every sink's stream is self-describing.
    ///
    /// # Panics
    ///
    /// Panics when the `--json-out` file cannot be created.
    pub fn init_obs(&self, experiment: &str) -> ObsGuard {
        a2a_obs::init_from_env();
        let sink = self.json_out.as_deref().map(|path| {
            let sink = Arc::new(
                JsonlSink::create(path, Level::Debug)
                    .unwrap_or_else(|e| panic!("cannot create --json-out {path}: {e}")),
            );
            a2a_obs::attach_sink(Arc::clone(&sink) as Arc<dyn Sink>);
            sink
        });
        a2a_obs::event!(Level::Info, "bench.start",
            "experiment" => experiment,
            "configs" => self.configs,
            "seed" => self.seed,
            "threads" => self.threads,
            "full" => self.full,
            "quiet" => self.quiet);
        ObsGuard { sink }
    }

    /// Writes one report line to stdout unless `--quiet` was given, and
    /// mirrors it as a `bench.out` event at `Debug` so JSONL sinks
    /// capture the rendered report without double-printing on stderr.
    pub fn outln(&self, line: impl AsRef<str>) {
        let line = line.as_ref();
        if !self.quiet {
            println!("{line}");
        }
        a2a_obs::event!(Level::Debug, "bench.out", "text" => line);
    }

    /// Emits a progress note: an `Info`-level event (single-line,
    /// interleave-safe even from worker threads) that also reaches
    /// stdout unless `--quiet` was given. Use this instead of
    /// `println!`/`eprintln!` for anything printed mid-run.
    pub fn progress(&self, what: &'static str, detail: impl AsRef<str>) {
        let detail = detail.as_ref();
        if !self.quiet {
            println!("{detail}");
        }
        a2a_obs::event!(Level::Info, what, "detail" => detail);
    }

    /// A banner line describing the scale, printed by every binary.
    #[must_use]
    pub fn banner(&self, experiment: &str) -> String {
        format!(
            "=== {experiment} — {} random configs per point, seed {}, {} threads{} ===",
            self.configs,
            self.seed,
            self.threads,
            if self.full { " (paper-scale protocol)" } else { "" }
        )
    }
}

/// End-of-run guard returned by [`RunScale::init_obs`]: flushes every
/// attached sink on drop. Bind it for the whole `main`
/// (`let _sink = scale.init_obs(...)`).
#[derive(Debug)]
pub struct ObsGuard {
    sink: Option<Arc<JsonlSink>>,
}

impl ObsGuard {
    /// The `--json-out` sink, for appending auxiliary documents with
    /// [`JsonlSink::write_json`].
    #[must_use]
    pub fn sink(&self) -> Option<&Arc<JsonlSink>> {
        self.sink.as_ref()
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        // Finalize (not just flush): a JSONL sink publishes its
        // `.partial` stream into the requested path here, marking the
        // run as cleanly shut down. A crash skips this drop and leaves
        // the `.partial` behind as the recoverable artifact.
        a2a_obs::finalize_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> RunScale {
        RunScale {
            configs: 42,
            seed: 7,
            threads: 3,
            full: false,
            quiet: false,
            json_out: None,
        }
    }

    #[test]
    fn banner_mentions_scale() {
        let b = scale().banner("Table 1");
        assert!(b.contains("Table 1") && b.contains("42") && b.contains("seed 7"));
    }

    #[test]
    fn full_banner_marks_protocol() {
        let s = RunScale { configs: 1000, full: true, ..scale() };
        assert!(s.banner("x").contains("paper-scale"));
    }

    #[test]
    fn extract_takes_shared_flags_and_leaves_the_rest() {
        let mut args: Vec<String> = [
            "--grid", "t", "--configs", "12", "--quiet", "--json-out", "/tmp/x.jsonl",
            "--generations", "5", "--seed", "9",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let s = RunScale::extract(&mut args, 60);
        assert_eq!(s.configs, 12);
        assert_eq!(s.seed, 9);
        assert!(s.quiet);
        assert_eq!(s.json_out.as_deref(), Some("/tmp/x.jsonl"));
        assert_eq!(args, vec!["--grid", "t", "--generations", "5"]);
    }

    #[test]
    fn extract_full_sets_paper_scale() {
        let mut args: Vec<String> = vec!["--full".into()];
        let s = RunScale::extract(&mut args, 60);
        assert!(s.full);
        assert_eq!(s.configs, 1000);
        assert!(args.is_empty());
    }

    #[test]
    fn quiet_outln_prints_nothing_but_never_panics() {
        let s = RunScale { quiet: true, ..scale() };
        s.outln("suppressed");
        s.progress("bench.progress", "also suppressed");
    }
}

//! End-to-end test of the `obs_report` binary: a sealed kernel snapshot
//! whose bit-sliced engine regressed (`sliced_speedup < 1` — the shape
//! the PR-6 measurement actually produced) must be flagged from the
//! artifacts alone, and `--check` must turn the flag into a non-zero
//! exit. A healthy history stream must pass and render sparklines.

use a2a_obs::json::Json;
use a2a_obs::schema::{seal, BENCH_HISTORY_SCHEMA, KERNEL_BENCH_SCHEMA};
use a2a_obs::HistogramSnapshot;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a2a_obs_report_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A schema-valid sealed kernel snapshot with a chosen sliced ratio.
fn kernel_snapshot(sliced_speedup: f64) -> Json {
    let rates = |us: f64| {
        Json::object()
            .with("elapsed_us", us)
            .with("steps_per_sec", 1e9 / us)
            .with("evals_per_sec", 1e6 / us)
    };
    let mut active = HistogramSnapshot::default();
    active.record(55);
    seal(Json::object()
        .with("schema", KERNEL_BENCH_SCHEMA)
        .with(
            "workload",
            Json::object().with("population", 8u64).with("configs", 24u64).with("k", 8u64).with("grid", "T"),
        )
        .with("single", rates(200.0))
        .with("dense", rates(160.0).with("chunk", 64u64))
        .with("multi", rates(100.0).with("chunk", 64u64))
        .with("parallel", rates(102.0).with("chunk", 64u64).with("workers", 1u64))
        .with("sliced", rates(100.0 / sliced_speedup).with("chunk", 64u64))
        .with("speedup", 2.0)
        .with("frontier_speedup", 1.6)
        .with("parallel_speedup", 1.57)
        .with("sliced_speedup", sliced_speedup)
        .with(
            "frontier",
            Json::object()
                .with("active_agent_steps", 12_345u64)
                .with("active_pct", active.to_json()),
        )
        .with("identical_outcomes", true))
}

fn history_line(speedup: f64) -> String {
    seal(Json::object()
        .with("schema", BENCH_HISTORY_SCHEMA)
        .with("t_ms", 1.0)
        .with("run", Json::object().with("configs", 24u64).with("seed", 7u64))
        .with(
            "kernel",
            Json::object()
                .with("speedup", speedup)
                .with("sliced_speedup", 1.2)
                .with("multi_steps_per_sec", 2.0e6),
        )
        .with("fitness", Json::object().with("speedup", 2.1).with("evals_per_sec", 900.0)))
    .to_string()
}

fn run_report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_obs_report"))
        .args(args)
        .output()
        .expect("obs_report runs")
}

#[test]
fn sliced_regression_fails_check_from_sealed_artifacts_alone() {
    let dir = scratch("sliced");
    let kernel_path = dir.join("BENCH_kernel.json");
    std::fs::write(&kernel_path, format!("{}\n", kernel_snapshot(0.4))).unwrap();
    let out_dir = dir.join("report");

    let out = run_report(&[
        "--kernel",
        kernel_path.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--check",
    ]);
    assert!(
        !out.status.success(),
        "--check must fail on sliced_speedup < 1: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("REGRESSION"), "stderr names the finding: {stderr}");
    assert!(stderr.contains("sliced"), "finding names the sliced ratio: {stderr}");
    // The report is still written for the failing run — that is the
    // artifact CI uploads to explain the failure.
    let md = std::fs::read_to_string(out_dir.join("OBS_REPORT.md")).unwrap();
    assert!(md.contains("REGRESSION"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthy_artifacts_and_history_pass_and_render_sparklines() {
    let dir = scratch("healthy");
    let kernel_path = dir.join("BENCH_kernel.json");
    std::fs::write(&kernel_path, format!("{}\n", kernel_snapshot(1.3))).unwrap();
    let history_path = dir.join("bench_history.jsonl");
    let lines: String = (0..4).map(|_| format!("{}\n", history_line(2.0))).collect();
    std::fs::write(&history_path, lines).unwrap();
    let out_dir = dir.join("report");

    let out = run_report(&[
        "--kernel",
        kernel_path.to_str().unwrap(),
        "--history",
        history_path.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--check",
    ]);
    assert!(
        out.status.success(),
        "healthy inputs must pass --check: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let md = std::fs::read_to_string(out_dir.join("OBS_REPORT.md")).unwrap();
    assert!(md.contains("No regressions detected"));
    assert!(md.contains("History trends"));
    // Every referenced sparkline file exists next to the markdown.
    for entry in std::fs::read_dir(&out_dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if Path::new(&name).extension().is_some_and(|e| e == "svg") {
            assert!(md.contains(&name), "{name} is referenced by the report");
        }
    }
    assert!(md.contains(".svg"), "trend table links sparklines");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_history_file_is_an_empty_trend_not_an_error() {
    let dir = scratch("absent");
    let out_dir = dir.join("report");
    let out = run_report(&[
        "--history",
        dir.join("does_not_exist.jsonl").to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--check",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_artifact_is_rejected_before_any_number_is_trusted() {
    let dir = scratch("tampered");
    let kernel_path = dir.join("BENCH_kernel.json");
    let tampered = kernel_snapshot(1.3).to_string().replace("\"speedup\":2", "\"speedup\":9");
    std::fs::write(&kernel_path, format!("{tampered}\n")).unwrap();
    let out = run_report(&[
        "--kernel",
        kernel_path.to_str().unwrap(),
        "--out",
        dir.join("report").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("INVALID"));
    let _ = std::fs::remove_dir_all(&dir);
}

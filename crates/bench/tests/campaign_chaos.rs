//! Campaign chaos: kill every shard-worker process mid-campaign with an
//! injected `campaign.round` fault, let the supervisor respawn them
//! (with the fault schedule scrubbed from the respawn environment), and
//! require the final sealed archive to be **byte-identical** to an
//! uninterrupted control campaign — the crash-only contract of
//! DESIGN.md §15, proven over real OS processes rather than in-process
//! simulated kills.
//!
//! Needs `--features fault-inject` (the site compiles to a no-op
//! otherwise), so the whole file is gated on the feature.

#![cfg(feature = "fault-inject")]

use a2a_obs::fault::FaultPlan;
use std::path::{Path, PathBuf};
use std::process::Command;

const EXE: &str = env!("CARGO_BIN_EXE_campaign_run");
const SITE: &str = "campaign.round";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a2a_campaign_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fast 2-shard campaign: 2 niches, 3 rounds, tiny step budget.
fn campaign_args(store: &Path) -> Vec<String> {
    [
        "--store", &store.display().to_string(),
        "--grids", "t",
        "--m", "8",
        "--k", "2,3",
        "--shards", "2",
        "--rounds", "3",
        "--batch", "2",
        "--t-max", "150",
        "--configs", "2",
        "--seed", "9",
        "--threads", "1",
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

/// Finds a fault seed whose deterministic schedule spares the first
/// `campaign.round` probe (round 0 must land its deltas) and kills at
/// the second (round 1) — predicted through the public
/// [`FaultPlan::fires`] pure function, never by trial and error against
/// real processes.
fn seed_that_kills_round_one() -> u64 {
    (0..10_000)
        .find(|&seed| {
            let plan = FaultPlan::seeded(seed).with(SITE, 0.5, 1);
            !plan.fires(SITE, 0) && plan.fires(SITE, 1)
        })
        .expect("some seed under 10000 spares round 0 and kills round 1")
}

#[test]
fn killed_shards_respawn_and_the_archive_is_byte_identical() {
    let control_store = scratch("control");
    let faulted_store = scratch("faulted");

    // Control: no faults anywhere in the process tree.
    let control = Command::new(EXE)
        .args(campaign_args(&control_store))
        .env_remove("A2A_FAULT")
        .output()
        .expect("spawn control campaign");
    assert!(
        control.status.success(),
        "control campaign failed: {}",
        String::from_utf8_lossy(&control.stderr)
    );

    // Faulted: every shard child inherits the plan and dies (exit 137)
    // at its round-1 probe — after the round-0 barrier committed, so
    // the kill lands mid-campaign, not before any work.
    let seed = seed_that_kills_round_one();
    let faulted = Command::new(EXE)
        .args(campaign_args(&faulted_store))
        .env("A2A_FAULT", format!("seed={seed},{SITE}:0.5:1"))
        .output()
        .expect("spawn faulted campaign");
    let stdout = String::from_utf8_lossy(&faulted.stdout);
    let stderr = String::from_utf8_lossy(&faulted.stderr);
    assert!(
        faulted.status.success(),
        "faulted campaign did not recover:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("respawned shard"),
        "supervisor never reported a respawn (did the fault fire?):\n{stdout}\n{stderr}"
    );
    assert!(
        stderr.contains("killed by injected fault"),
        "no shard reported dying to the injected fault:\n{stderr}"
    );

    // The headline property: recovery is indistinguishable from an
    // uninterrupted run, byte for byte.
    let control_archive =
        std::fs::read(control_store.join("archive-final.json")).expect("control archive");
    let faulted_archive =
        std::fs::read(faulted_store.join("archive-final.json")).expect("faulted archive");
    assert_eq!(
        control_archive, faulted_archive,
        "resumed campaign archive diverged from the uninterrupted control"
    );

    let _ = std::fs::remove_dir_all(&control_store);
    let _ = std::fs::remove_dir_all(&faulted_store);
}

#[test]
fn fault_grammar_round_trips_the_campaign_site() {
    // The CI chaos job arms via A2A_FAULT; keep its grammar honest for
    // the campaign site the same way the run-crate chaos suite does.
    let plan = FaultPlan::parse("seed=7,campaign.round:0.5:1");
    assert_eq!(plan.seed, 7);
    assert_eq!(plan.rules.len(), 1);
    assert_eq!(plan.rules[0].site, SITE);
    // The schedule is a pure function of (seed, site, index): the exact
    // property the seed search in the kill test relies on.
    let replay = FaultPlan::parse("seed=7,campaign.round:0.5:1");
    for i in 0..16 {
        assert_eq!(plan.fires(SITE, i), replay.fires(SITE, i), "occurrence {i}");
    }
    assert!((0..16).all(|i| !FaultPlan::seeded(7).with(SITE, 0.0, 9).fires(SITE, i)));
}

//! `a2a` — command-line front end for the reproduction: simulate, trace,
//! regenerate the paper's tables and evolve new agents.

use a2a::analysis::experiments::{density, distances, grid33, traces};
use a2a::ga::{Evaluator, Evolution, GaConfig};
use a2a::prelude::*;
use a2a::sim::render_snapshot;
use std::process::ExitCode;

const USAGE: &str = "\
a2a — CA agents for all-to-all communication (PaCT 2013 reproduction)

USAGE:
    a2a <COMMAND> [OPTIONS]

COMMANDS:
    simulate    run one configuration and print the outcome
    decide      prove whether a configuration ever solves (cycle detection)
    render      run one configuration and write SVG field + path plots
    table1      regenerate Table 1 / Fig. 5 (T vs S over densities)
    distances   print Fig. 2 distance maps and the Eq. (1)-(3) table
    trace       replay a Fig. 6/7-style two-agent trace with snapshots
    grid33      run the 33x33 / 16-agent comparison of Sect. 5
    evolve      run the Sect. 4 genetic procedure
    help        show this text

COMMON OPTIONS:
    --grid t|s          grid family (default t)
    --agents K          number of agents (default 16)
    --extent M          field extent MxM (default 16)
    --seed S            RNG seed (default 2013)
    --configs N         random configurations per point (default 100)
    --generations G     GA generations (default 50)
    --threads N         worker threads (default: all cores)
    --snapshots         print ASCII snapshots (simulate)
    --out DIR           output directory for SVGs (render; default results)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = Options::parse(&args[1..]);
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&opts),
        "decide" => cmd_decide(&opts),
        "render" => cmd_render(&opts),
        "table1" => cmd_table1(&opts),
        "distances" => cmd_distances(&opts),
        "trace" => cmd_trace(&opts),
        "grid33" => cmd_grid33(&opts),
        "evolve" => cmd_evolve(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `a2a help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed command-line options with the defaults listed in `USAGE`.
struct Options {
    grid: GridKind,
    agents: usize,
    extent: u16,
    seed: u64,
    configs: usize,
    generations: usize,
    threads: usize,
    snapshots: bool,
    out: String,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let mut opts = Self {
            grid: GridKind::Triangulate,
            agents: 16,
            extent: 16,
            seed: 2013,
            configs: 100,
            generations: 50,
            threads: a2a::ga::default_threads(),
            snapshots: false,
            out: "results".to_string(),
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
                    .clone()
            };
            match flag.as_str() {
                "--grid" => {
                    opts.grid = match value("--grid").as_str() {
                        "t" | "T" => GridKind::Triangulate,
                        "s" | "S" => GridKind::Square,
                        other => panic!("unknown grid `{other}` (use t or s)"),
                    }
                }
                "--agents" => opts.agents = value("--agents").parse().expect("numeric --agents"),
                "--extent" => opts.extent = value("--extent").parse().expect("numeric --extent"),
                "--seed" => opts.seed = value("--seed").parse().expect("numeric --seed"),
                "--configs" => opts.configs = value("--configs").parse().expect("numeric --configs"),
                "--generations" => {
                    opts.generations = value("--generations").parse().expect("numeric --generations");
                }
                "--threads" => opts.threads = value("--threads").parse().expect("numeric --threads"),
                "--snapshots" => opts.snapshots = true,
                "--out" => opts.out = value("--out"),
                other => panic!("unknown option `{other}`; try `a2a help`"),
            }
        }
        opts
    }
}

fn cmd_simulate(opts: &Options) -> Result<(), String> {
    let scenario = Scenario::new(opts.grid)
        .extent(opts.extent)
        .agents(opts.agents)
        .seed(opts.seed);
    let mut world = scenario.world().map_err(|e| e.to_string())?;
    if opts.snapshots {
        println!("{}", render_snapshot(&world));
    }
    let outcome = a2a::sim::run_to_completion(&mut world, 5000);
    if opts.snapshots {
        println!("{}", render_snapshot(&world));
    }
    match outcome.t_comm {
        Some(t) => println!(
            "solved: {} agents all informed after {t} steps ({} grid, {}x{}, seed {})",
            outcome.agents, opts.grid, opts.extent, opts.extent, opts.seed
        ),
        None => println!(
            "NOT solved within horizon: {}/{} agents informed",
            outcome.informed, outcome.agents
        ),
    }
    Ok(())
}

fn cmd_decide(opts: &Options) -> Result<(), String> {
    use a2a::sim::{decide, Decision};
    let scenario = Scenario::new(opts.grid)
        .extent(opts.extent)
        .agents(opts.agents)
        .seed(opts.seed);
    let mut world = scenario.world().map_err(|e| e.to_string())?;
    // ~300 bytes per stored state: cap at ~1M states (a few hundred MB).
    match decide(&mut world, 1_000_000) {
        Decision::Solved(t) => {
            println!("PROVEN solvable: all {} agents informed after {t} steps", opts.agents);
        }
        Decision::NeverSolves { entered, repeated } => {
            println!(
                "PROVEN unsolvable: the system enters a limit cycle of period {} at step {entered}                  (state repeats at step {repeated}) without ever informing all agents",
                repeated - entered,
            );
        }
        Decision::Undecided => {
            println!("undecided within the 1M-state memory budget; raise it in code for a full proof");
        }
    }
    Ok(())
}

fn cmd_render(opts: &Options) -> Result<(), String> {
    use a2a::sim::record_trajectory;
    use a2a::viz::{render_field, render_trajectory, Theme};
    let scenario = Scenario::new(opts.grid)
        .extent(opts.extent)
        .agents(opts.agents)
        .seed(opts.seed);
    let mut world = scenario.world().map_err(|e| e.to_string())?;
    let (outcome, trajectory) = record_trajectory(&mut world, 5000);
    let theme = Theme::default();
    let dir = std::path::Path::new(&opts.out);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let stem = format!(
        "{}_{}a_seed{}",
        world.kind().label().to_lowercase(),
        opts.agents,
        opts.seed
    );
    let field = dir.join(format!("{stem}_field.svg"));
    let paths = dir.join(format!("{stem}_paths.svg"));
    std::fs::write(&field, render_field(&world, &theme)).map_err(|e| e.to_string())?;
    std::fs::write(&paths, render_trajectory(world.lattice(), &trajectory, &theme))
        .map_err(|e| e.to_string())?;
    println!(
        "t_comm = {:?}; wrote {} and {}",
        outcome.t_comm,
        field.display(),
        paths.display()
    );
    Ok(())
}

fn cmd_table1(opts: &Options) -> Result<(), String> {
    let exp = density::DensityExperiment {
        m: 16,
        agent_counts: density::TABLE1_AGENT_COUNTS.to_vec(),
        n_random: opts.configs,
        seed: opts.seed,
        t_max: 5000,
        threads: opts.threads,
    };
    println!(
        "Table 1 / Fig. 5 — {} random + manual configurations per density (seed {})\n",
        opts.configs, opts.seed
    );
    let cmp = density::run_density_comparison(&exp).map_err(|e| e.to_string())?;
    println!("{}", cmp.to_table());
    println!("paper reference:");
    println!("  T-grid: {:?}", density::PAPER_TABLE1_T);
    println!("  S-grid: {:?}", density::PAPER_TABLE1_S);
    println!("\nFig. 5 CSV:\n{}", cmp.to_csv());
    Ok(())
}

fn cmd_distances(_opts: &Options) -> Result<(), String> {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let r = distances::survey(kind, 3);
        println!(
            "{} torus, n=3 (Fig. 2): D = {}, mean = {:.2} (formula {:.2}), {} antipodal(s)",
            kind, r.diameter, r.mean, r.mean_formula, r.antipodal_count
        );
        println!("{}", r.map);
    }
    println!("Eq. (1)-(3) over sizes:");
    println!("{}", distances::formula_table(1..=8));
    Ok(())
}

fn cmd_trace(opts: &Options) -> Result<(), String> {
    let trace = match opts.grid {
        GridKind::Square => traces::fig6(opts.seed, 500),
        GridKind::Triangulate => traces::fig7(opts.seed, 500),
    }
    .map_err(|e| e.to_string())?;
    for snap in &trace.snapshots {
        println!("{snap}\n");
    }
    println!("communication time: {:?}", trace.outcome.t_comm);
    Ok(())
}

fn cmd_grid33(opts: &Options) -> Result<(), String> {
    println!(
        "33x33 field, 16 agents, {} random configurations (paper: T 181, S 229)",
        opts.configs
    );
    let r = grid33::run_grid33(opts.configs, opts.seed, opts.threads).map_err(|e| e.to_string())?;
    println!("T-agent mean: {:.2}", r.t_mean());
    println!("S-agent mean: {:.2}", r.s_mean());
    println!("reliable: {}", r.both_reliable());
    Ok(())
}

fn cmd_evolve(opts: &Options) -> Result<(), String> {
    let env = WorldConfig::paper(opts.grid, opts.extent);
    let configs = a2a::sim::paper_config_set(env.lattice, opts.grid, opts.agents, opts.configs, opts.seed)
        .map_err(|e| e.to_string())?;
    let evaluator = Evaluator::new(env, configs).with_threads(opts.threads);
    let ga = Evolution::new(
        FsmSpec::paper(opts.grid),
        evaluator,
        GaConfig::paper(opts.generations, opts.seed),
    );
    println!(
        "evolving {} agents on {}x{}, {} configs, {} generations (seed {})",
        opts.agents, opts.extent, opts.extent, opts.configs, opts.generations, opts.seed
    );
    let outcome = ga.run(|s| {
        println!(
            "gen {:4}: best F = {:10.2} ({} / {} configs solved{})",
            s.generation,
            s.best_fitness,
            s.best_successes,
            opts.configs,
            if s.best_complete { ", COMPLETE" } else { "" },
        );
    });
    let best = outcome.best();
    println!("\nbest evolved FSM (fitness {:.2}):", best.report.fitness);
    println!("{}", best.genome);
    println!("genome digits: {}", best.genome.to_digits());
    Ok(())
}

//! A one-stop builder for the most common workflow: pick a grid, a number
//! of agents and a seed, get a running world or a measured outcome.

use a2a_fsm::{best_agent, Genome};
use a2a_grid::GridKind;
use a2a_sim::{
    run_to_completion, InitialConfig, RunOutcome, SimError, World, WorldConfig,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builder for a single simulation scenario.
///
/// Defaults follow the paper's evaluation: a 16×16 torus, 16 agents, the
/// published best FSM for the chosen grid, `ID mod 2` initial states and
/// a generous verification horizon.
///
/// # Examples
///
/// ```
/// use a2a::Scenario;
/// use a2a_grid::GridKind;
///
/// # fn main() -> Result<(), a2a_sim::SimError> {
/// let outcome = Scenario::new(GridKind::Triangulate)
///     .agents(8)
///     .seed(2013)
///     .run()?;
/// assert!(outcome.is_successful());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    kind: GridKind,
    m: u16,
    agents: usize,
    seed: u64,
    genome: Option<Genome>,
    init: Option<InitialConfig>,
    t_max: u32,
}

impl Scenario {
    /// A paper-default scenario on the chosen grid.
    #[must_use]
    pub fn new(kind: GridKind) -> Self {
        Self {
            kind,
            m: 16,
            agents: 16,
            seed: 0,
            genome: None,
            init: None,
            t_max: 5000,
        }
    }

    /// Field extent (`m × m`; paper: 16).
    #[must_use]
    pub fn extent(mut self, m: u16) -> Self {
        self.m = m;
        self
    }

    /// Number of agents (paper sweeps 2–256).
    #[must_use]
    pub fn agents(mut self, k: usize) -> Self {
        self.agents = k;
        self
    }

    /// Seed of the random initial configuration.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the published best FSM with a custom behaviour (e.g. one
    /// you evolved with [`a2a_ga::Evolution`]).
    #[must_use]
    pub fn behaviour(mut self, genome: Genome) -> Self {
        self.genome = Some(genome);
        self
    }

    /// Uses an explicit initial configuration instead of a seeded random
    /// one.
    #[must_use]
    pub fn initial(mut self, init: InitialConfig) -> Self {
        self.init = Some(init);
        self
    }

    /// Simulation horizon (default 5000).
    #[must_use]
    pub fn horizon(mut self, t_max: u32) -> Self {
        self.t_max = t_max;
        self
    }

    /// Builds the world (placed, initial exchange done, not yet stepped).
    ///
    /// # Errors
    ///
    /// Propagates [`World::new`] and placement errors.
    pub fn world(&self) -> Result<World, SimError> {
        let cfg = WorldConfig::paper(self.kind, self.m);
        let genome = self.genome.clone().unwrap_or_else(|| best_agent(self.kind));
        let init = match &self.init {
            Some(init) => init.clone(),
            None => {
                let mut rng = SmallRng::seed_from_u64(self.seed);
                InitialConfig::random(cfg.lattice, self.kind, self.agents, &[], &mut rng)?
            }
        };
        World::new(&cfg, genome, &init)
    }

    /// Builds and runs the world to completion (or the horizon).
    ///
    /// # Errors
    ///
    /// Propagates [`World::new`] and placement errors.
    pub fn run(&self) -> Result<RunOutcome, SimError> {
        let mut world = self.world()?;
        Ok(run_to_completion(&mut world, self.t_max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_solves_the_task() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let out = Scenario::new(kind).seed(7).run().unwrap();
            assert!(out.is_successful(), "{kind}: {out:?}");
            assert_eq!(out.agents, 16);
        }
    }

    #[test]
    fn builder_knobs_apply() {
        let world = Scenario::new(GridKind::Triangulate)
            .extent(8)
            .agents(4)
            .seed(1)
            .world()
            .unwrap();
        assert_eq!(world.lattice().len(), 64);
        assert_eq!(world.agents().len(), 4);
    }

    #[test]
    fn custom_behaviour_is_used() {
        use a2a_fsm::FsmSpec;
        let mut rng = SmallRng::seed_from_u64(3);
        let genome = Genome::random(FsmSpec::paper(GridKind::Square), &mut rng);
        let world = Scenario::new(GridKind::Square)
            .behaviour(genome.clone())
            .world()
            .unwrap();
        assert_eq!(world.genome(), &genome);
    }

    #[test]
    fn explicit_initial_config() {
        use a2a_grid::{Dir, Pos};
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(1, 0), Dir::new(0)),
        ]);
        let out = Scenario::new(GridKind::Square).initial(init).run().unwrap();
        assert_eq!(out.t_comm, Some(0), "adjacent agents exchange at placement");
    }

    #[test]
    fn overfull_scenario_errors() {
        let err = Scenario::new(GridKind::Square).extent(4).agents(17).run().unwrap_err();
        assert!(matches!(err, SimError::TooManyAgents { .. }));
    }
}

//! **a2a** — a full reproduction of Hoffmann & Désérable, *CA Agents for
//! All-to-All Communication Are Faster in the Triangulate Grid*
//! (PaCT 2013).
//!
//! `k` FSM-controlled agents move on a cyclic square ("S") or triangulate
//! ("T") grid, exchange information with von-Neumann neighbours each
//! synchronous step, and leave 1-bit colour traces. The paper's headline:
//! evolved T-agents solve the all-to-all task in ≈ 2/3 of the S-agent
//! time, tracking the diameter ratio of the two tori.
//!
//! This facade crate re-exports the whole stack and adds the high-level
//! [`Scenario`] builder:
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | topology | [`grid`] | S/T tori, distances, Eq. (1)–(3) metrics |
//! | behaviour | [`fsm`] | Mealy genomes, mutation, the published Fig. 3/4 FSMs |
//! | dynamics | [`sim`] | the synchronous CA world, conflicts, colours, exchange |
//! | evolution | [`ga`] | the Sect. 4 genetic procedure and reliability screens |
//! | experiments | [`analysis`] | Table 1 / Fig. 2–7 runners, ablations, extensions |
//!
//! # Quickstart
//!
//! ```
//! use a2a::Scenario;
//! use a2a_grid::GridKind;
//!
//! # fn main() -> Result<(), a2a_sim::SimError> {
//! let t = Scenario::new(GridKind::Triangulate).agents(16).seed(1).run()?;
//! let s = Scenario::new(GridKind::Square).agents(16).seed(1).run()?;
//! assert!(t.is_successful() && s.is_successful());
//! // The headline effect usually shows on a single field already:
//! println!("T: {:?} steps, S: {:?} steps", t.t_comm, s.t_comm);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod scenario;

pub use scenario::Scenario;

/// Topology layer: tori, directions, distances (re-export of `a2a-grid`).
pub use a2a_grid as grid;

/// Behaviour layer: FSM genomes and the published agents (re-export of
/// `a2a-fsm`).
pub use a2a_fsm as fsm;

/// Dynamics layer: the CA simulator (re-export of `a2a-sim`).
pub use a2a_sim as sim;

/// Evolution layer: the genetic procedure (re-export of `a2a-ga`).
pub use a2a_ga as ga;

/// Experiment layer: statistics and paper-figure runners (re-export of
/// `a2a-analysis`).
pub use a2a_analysis as analysis;

/// Visualisation layer: SVG renderers (re-export of `a2a-viz`).
pub use a2a_viz as viz;

/// The most frequently used items in one import.
pub mod prelude {
    pub use crate::Scenario;
    pub use a2a_fsm::{best_agent, best_s_agent, best_t_agent, FsmSpec, Genome};
    pub use a2a_grid::{Dir, GridKind, Lattice, Pos};
    pub use a2a_sim::{
        simulate, InitialConfig, RunOutcome, SimError, World, WorldConfig,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let g = best_agent(GridKind::Triangulate);
        assert_eq!(g.spec().kind(), GridKind::Triangulate);
    }
}

//! On-disk checkpoint storage: one rolling `checkpoint.json` per run
//! directory, written atomically so a crash mid-save leaves the previous
//! checkpoint intact.

use crate::checkpoint::Checkpoint;
use a2a_obs::fault;
use a2a_obs::json;
use std::path::{Path, PathBuf};

/// File name of the rolling checkpoint inside a run directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// A run directory holding the rolling checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on first save if absent).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory this store writes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the rolling checkpoint file.
    #[must_use]
    pub fn path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Persists `checkpoint` atomically (temp file + fsync + rename; see
    /// [`a2a_obs::atomic_write`]). A reader — including a resuming run —
    /// therefore sees either the previous complete checkpoint or this
    /// one, never a torn mix.
    ///
    /// # Errors
    ///
    /// Propagates IO errors (including those injected at the
    /// `run.checkpoint.write` fault site by the chaos suite); the
    /// previous checkpoint file survives any failure.
    pub fn save(&self, checkpoint: &Checkpoint) -> std::io::Result<()> {
        fault::io_error("run.checkpoint.write")?;
        std::fs::create_dir_all(&self.dir)?;
        let mut text = checkpoint.to_json().to_string();
        text.push('\n');
        a2a_obs::atomic_write(self.path(), text.as_bytes())
    }

    /// Loads and fully validates the rolling checkpoint. `Ok(None)` when
    /// no checkpoint exists yet (a fresh run directory).
    ///
    /// # Errors
    ///
    /// A message naming the failure: unreadable file, unparseable JSON,
    /// checksum mismatch, or any schema violation — a corrupt checkpoint
    /// is an error, never silently treated as absent.
    pub fn load(&self) -> Result<Option<Checkpoint>, String> {
        let path = self.path();
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = json::parse(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
        Checkpoint::from_json(&doc)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{Counters, Payload};
    use a2a_fsm::{FsmSpec, Genome};
    use a2a_ga::{FitnessReport, Individual, RunState};
    use a2a_grid::GridKind;
    use rand::{rngs::SmallRng, SeedableRng};

    fn sample() -> Checkpoint {
        let spec = FsmSpec::paper(GridKind::Square);
        let mut rng = SmallRng::seed_from_u64(5);
        Checkpoint {
            digest: "f".repeat(16),
            spec,
            counters: Counters::default(),
            payload: Payload::Single(RunState {
                rng_state: rng.state(),
                pool: vec![Individual {
                    genome: Genome::random(spec, &mut rng),
                    report: FitnessReport {
                        fitness: 1.5,
                        successes: 1,
                        total: 2,
                        mean_t_comm: Some(10.0),
                    },
                }],
                history: Vec::new(),
                next_generation: 1,
            }),
        }
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = std::env::temp_dir().join("a2a_run_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir);
        assert!(store.load().unwrap().is_none(), "fresh dir has no checkpoint");
        let ckpt = sample();
        store.save(&ckpt).unwrap();
        let back = store.load().unwrap().expect("checkpoint saved");
        assert_eq!(back.digest, ckpt.digest);
        let (Payload::Single(a), Payload::Single(b)) = (&back.payload, &ckpt.payload) else {
            panic!("wrong mode");
        };
        assert_eq!(a.pool, b.pool);
        assert_eq!(a.rng_state, b.rng_state);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_absent() {
        let dir = std::env::temp_dir().join("a2a_run_store_corrupt_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(&dir);
        std::fs::write(store.path(), b"{\"schema\": \"a2a-run/checkpoint/v1\"").unwrap();
        let err = store.load().unwrap_err();
        assert!(err.contains("JSON"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Crash-safe evolution runs (DESIGN.md §9).
//!
//! The GA crate exposes resumable cores
//! ([`a2a_ga::Evolution::run_resumable`], [`a2a_ga::run_islands_resumable`])
//! that report a complete resumable state at every generation/epoch
//! boundary; this crate gives that state a durable form and a policy:
//!
//! * [`checkpoint`] — the sealed `a2a-run/checkpoint/v1` JSON document
//!   (RNG state, full pool, history, context digest, counters);
//! * [`store`] — a rolling `checkpoint.json` per run directory, written
//!   atomically so crashes never corrupt the last good checkpoint;
//! * [`harness`] — [`run_evolution`] / [`run_islands_checkpointed`]:
//!   cadence-driven persistence, digest-guarded resume, and the
//!   simulated-kill probe the chaos suite drives.
//!
//! The headline guarantee, enforced by the `equivalence` integration
//! test on both grid families: a run that is killed and resumed from its
//! checkpoint produces a **bit-identical** [`a2a_ga::EvolutionOutcome`]
//! to the uninterrupted run.
//!
//! # Examples
//!
//! ```
//! use a2a_run::{run_evolution, CheckpointStore, RunOptions};
//! use a2a_ga::{Evaluator, GaConfig};
//! use a2a_fsm::FsmSpec;
//! use a2a_grid::GridKind;
//! use a2a_sim::{paper_config_set, WorldConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let env = WorldConfig::paper(GridKind::Square, 8);
//! let configs = paper_config_set(env.lattice, env.kind, 4, 8, 1)?;
//! let evaluator = Evaluator::new(env, configs);
//! let dir = std::env::temp_dir().join("a2a_run_doctest");
//! let opts = RunOptions::persisting(CheckpointStore::new(&dir));
//! let report = run_evolution(
//!     FsmSpec::paper(GridKind::Square),
//!     &evaluator,
//!     GaConfig::paper(2, 42),
//!     Vec::new(),
//!     &opts,
//!     |_| (),
//! )?;
//! assert!(report.completed && report.checkpoints_written > 0);
//! // A second invocation with `resume` picks up the finished state.
//! let resumed = run_evolution(
//!     FsmSpec::paper(GridKind::Square),
//!     &evaluator,
//!     GaConfig::paper(2, 42),
//!     Vec::new(),
//!     &opts.clone().resuming(true),
//!     |_| (),
//! )?;
//! assert_eq!(resumed.outcome.history.len(), report.outcome.history.len());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod campaign;
pub mod checkpoint;
pub mod harness;
pub mod jobs;
pub mod store;

pub use campaign::{
    assign_round, coordinate, genome_digest, run_inline, run_shard_process, run_shard_round,
    Archive, ArchiveDelta, CampaignCounters, CampaignOutcome, CampaignSpec, CampaignStore,
    DigestSet, Elite, EvaluatorBank, NicheKey, RoundStats, ShardExit, ARCHIVE_DELTA_SCHEMA,
    ARCHIVE_SCHEMA, CAMPAIGN_MERGED_SCHEMA, CAMPAIGN_ROUND_SITE, CAMPAIGN_SPEC_SCHEMA,
    CAMPAIGN_SUMMARY_SCHEMA,
};
pub use checkpoint::{
    context_digest, Checkpoint, Counters, Payload, CHECKPOINT_SCHEMA, CHECKPOINT_VERSION,
};
pub use harness::{
    run_evolution, run_islands_checkpointed, IslandsReport, RunOptions, RunReport, StopSignal,
};
pub use jobs::{
    validate_job_id, JobManifest, JobStatus, JobStore, JOB_MANIFEST_SCHEMA, MANIFEST_FILE,
    RESULT_FILE,
};
pub use store::{CheckpointStore, CHECKPOINT_FILE};

//! The `a2a-run/checkpoint/v1` document: a sealed, self-describing JSON
//! snapshot of an evolution run at a generation (or epoch) boundary.
//!
//! The format captures everything [`Evolution::run_resumable`] needs to
//! continue bit-identically:
//!
//! * the xoshiro256++ RNG state (four 64-bit words — serialised as
//!   16-digit hex strings because the JSON number model only covers
//!   integers below 2⁵³ exactly);
//! * the full population in post-exchange order (order is load-bearing:
//!   the diversity exchange of Sect. 4 is position-based);
//! * the per-generation history so the resumed
//!   [`a2a_ga::EvolutionOutcome`] is indistinguishable from an
//!   uninterrupted one;
//! * an evaluation-context digest (GA parameters, world, horizon and
//!   training configurations) so a checkpoint is never resumed against a
//!   different experiment;
//! * cache counters, informational only — the fitness cache is *not*
//!   persisted, and PR 3's determinism guarantee (cold caches change
//!   timing, never results) is what makes that sound.
//!
//! The whole document is sealed with [`a2a_obs::schema::seal`], so a
//! torn or hand-edited checkpoint fails [`verify_checksum`] before any
//! field is trusted.
//!
//! [`Evolution::run_resumable`]: a2a_ga::Evolution::run_resumable
//! [`verify_checksum`]: a2a_obs::schema::verify_checksum

use a2a_fsm::{FsmSpec, Genome, TurnSet};
use a2a_ga::{GaConfig, GenerationStats, Individual, IslandsState, RunState};
use a2a_obs::json::Json;
use a2a_obs::schema;
use a2a_sim::{InitialConfig, WorldConfig};

/// Schema identifier of checkpoint documents.
pub const CHECKPOINT_SCHEMA: &str = "a2a-run/checkpoint/v1";

/// Format version inside the schema (bumped on incompatible layout
/// changes; the schema string itself names the major family).
pub const CHECKPOINT_VERSION: u64 = 1;

/// Digest of the evaluation context a run was checkpointed under: the
/// GA parameters, the world, the simulation horizon and the training
/// configuration placements. Two runs resume-compatible iff their
/// digests match — resuming against a different experiment would be
/// silently wrong, so [`Checkpoint::from_json`] callers compare this
/// first.
///
/// Implementation: FNV-1a 64 over the `Debug` rendering of the parts
/// (all involved types derive `Debug` with full field coverage), as 16
/// lowercase hex digits.
#[must_use]
pub fn context_digest(
    config: &GaConfig,
    world: &WorldConfig,
    t_max: u32,
    configs: &[InitialConfig],
) -> String {
    let mut text = format!("{config:?}|{world:?}|{t_max}|");
    for c in configs {
        text.push_str(&format!("{:?};", c.placements()));
    }
    format!("{:016x}", schema::fnv1a64(text.as_bytes()))
}

/// Informational cache/pool counters captured at checkpoint time. Not
/// needed for resume correctness (the cache is rebuilt warm as the
/// resumed run re-evaluates), but they let `obs_validate --run` report
/// how much work a recovered run had already amortised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Entries in the fitness cache when the checkpoint was taken.
    pub cache_entries: u64,
    /// Cache hits accumulated so far.
    pub cache_hits: u64,
}

/// What kind of run the checkpoint snapshots.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A single-pool run at a generation boundary.
    Single(RunState),
    /// An island-model run at an epoch boundary.
    Islands(IslandsState),
}

/// One checkpoint document (see the module docs for the format).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// [`context_digest`] of the experiment this checkpoint belongs to.
    pub digest: String,
    /// The genome spec (needed to decode `digits` strings back into
    /// [`Genome`]s).
    pub spec: FsmSpec,
    /// Informational counters.
    pub counters: Counters,
    /// The resumable state.
    pub payload: Payload,
}

fn turn_set_name(t: TurnSet) -> &'static str {
    match t {
        TurnSet::Square => "square",
        TurnSet::TriangulateRestricted => "triangulate-restricted",
        TurnSet::TriangulateFull => "triangulate-full",
    }
}

fn turn_set_from_name(name: &str) -> Result<TurnSet, String> {
    match name {
        "square" => Ok(TurnSet::Square),
        "triangulate-restricted" => Ok(TurnSet::TriangulateRestricted),
        "triangulate-full" => Ok(TurnSet::TriangulateFull),
        other => Err(format!("unknown turn set `{other}`")),
    }
}

fn hex_word(w: u64) -> Json {
    Json::Str(format!("{w:016x}"))
}

fn parse_hex_word(v: &Json) -> Result<u64, String> {
    let s = v.as_str().ok_or("RNG state word must be a hex string")?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad RNG state word `{s}`: {e}"))
    // (JSON numbers cannot carry full u64 precision — see module docs.)
}

fn individual_to_json(ind: &Individual) -> Json {
    Json::object()
        .with("digits", ind.genome.to_digits())
        .with("report", ind.report.to_json())
}

fn individual_from_json(spec: FsmSpec, doc: &Json) -> Result<Individual, String> {
    let digits = doc
        .get("digits")
        .and_then(Json::as_str)
        .ok_or("individual missing string `digits`")?;
    let genome = Genome::from_digits(spec, digits)
        .ok_or_else(|| format!("genome digits `{digits}` do not fit the spec"))?;
    let report = a2a_ga::FitnessReport::from_json(
        doc.get("report").ok_or("individual missing `report`")?,
    )?;
    Ok(Individual { genome, report })
}

fn pool_to_json(pool: &[Individual]) -> Json {
    Json::Arr(pool.iter().map(individual_to_json).collect())
}

fn pool_from_json(spec: FsmSpec, doc: &Json) -> Result<Vec<Individual>, String> {
    doc.as_arr()
        .ok_or("`pool` must be an array")?
        .iter()
        .map(|ind| individual_from_json(spec, ind))
        .collect()
}

fn history_to_json(history: &[GenerationStats]) -> Json {
    Json::Arr(history.iter().map(GenerationStats::to_json).collect())
}

fn history_from_json(doc: &Json) -> Result<Vec<GenerationStats>, String> {
    doc.as_arr()
        .ok_or("`history` must be an array")?
        .iter()
        .map(GenerationStats::from_json)
        .collect()
}

fn usize_member(doc: &Json, key: &str) -> Result<usize, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("checkpoint missing numeric `{key}`"))
}

impl Checkpoint {
    /// Serialises the checkpoint as a sealed JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object()
            .with("schema", CHECKPOINT_SCHEMA)
            .with("version", CHECKPOINT_VERSION)
            .with("digest", self.digest.as_str())
            .with(
                "spec",
                Json::object()
                    .with("n_states", u64::from(self.spec.n_states))
                    .with("n_colors", u64::from(self.spec.n_colors))
                    .with("turn_set", turn_set_name(self.spec.turn_set)),
            )
            .with(
                "counters",
                Json::object()
                    .with("cache_entries", self.counters.cache_entries)
                    .with("cache_hits", self.counters.cache_hits),
            );
        match &self.payload {
            Payload::Single(state) => {
                doc = doc
                    .with("mode", "single")
                    .with(
                        "rng_state",
                        Json::Arr(state.rng_state.iter().copied().map(hex_word).collect()),
                    )
                    .with("next_generation", state.next_generation as u64)
                    .with("pool", pool_to_json(&state.pool))
                    .with("history", history_to_json(&state.history));
            }
            Payload::Islands(state) => {
                doc = doc.with("mode", "islands").with("next_epoch", state.next_epoch as u64).with(
                    "islands",
                    Json::Arr(
                        state
                            .outcomes
                            .iter()
                            .map(|o| {
                                Json::object()
                                    .with("pool", pool_to_json(&o.pool))
                                    .with("history", history_to_json(&o.history))
                            })
                            .collect(),
                    ),
                );
            }
        }
        schema::seal(doc)
    }

    /// Parses and validates a checkpoint document: checksum first, then
    /// schema/version, then every field.
    ///
    /// # Errors
    ///
    /// A message naming the first failed gate (checksum mismatch, wrong
    /// schema, missing or mistyped member, undecodable genome).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        schema::verify_checksum(doc)?;
        let schema_name = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("checkpoint missing string `schema`")?;
        if schema_name != CHECKPOINT_SCHEMA {
            return Err(format!("schema `{schema_name}` is not `{CHECKPOINT_SCHEMA}`"));
        }
        let version = doc
            .get("version")
            .and_then(Json::as_f64)
            .ok_or("checkpoint missing numeric `version`")? as u64;
        if version != CHECKPOINT_VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let digest = doc
            .get("digest")
            .and_then(Json::as_str)
            .ok_or("checkpoint missing string `digest`")?
            .to_string();
        let spec_doc = doc.get("spec").ok_or("checkpoint missing `spec`")?;
        let spec = FsmSpec::new(
            usize_member(spec_doc, "n_states")? as u8,
            usize_member(spec_doc, "n_colors")? as u8,
            turn_set_from_name(
                spec_doc
                    .get("turn_set")
                    .and_then(Json::as_str)
                    .ok_or("spec missing string `turn_set`")?,
            )?,
        );
        let counters = match doc.get("counters") {
            Some(c) => Counters {
                cache_entries: usize_member(c, "cache_entries")? as u64,
                cache_hits: usize_member(c, "cache_hits")? as u64,
            },
            None => return Err("checkpoint missing `counters`".to_string()),
        };
        let mode = doc
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("checkpoint missing string `mode`")?;
        let payload = match mode {
            "single" => {
                let words = doc
                    .get("rng_state")
                    .and_then(Json::as_arr)
                    .ok_or("checkpoint missing array `rng_state`")?;
                if words.len() != 4 {
                    return Err(format!("rng_state has {} words, want 4", words.len()));
                }
                let mut rng_state = [0u64; 4];
                for (slot, word) in rng_state.iter_mut().zip(words) {
                    *slot = parse_hex_word(word)?;
                }
                if rng_state == [0; 4] {
                    return Err("rng_state is all-zero (invalid xoshiro state)".to_string());
                }
                Payload::Single(RunState {
                    rng_state,
                    pool: pool_from_json(
                        spec,
                        doc.get("pool").ok_or("checkpoint missing `pool`")?,
                    )?,
                    history: history_from_json(
                        doc.get("history").ok_or("checkpoint missing `history`")?,
                    )?,
                    next_generation: usize_member(doc, "next_generation")?,
                })
            }
            "islands" => {
                let islands = doc
                    .get("islands")
                    .and_then(Json::as_arr)
                    .ok_or("checkpoint missing array `islands`")?;
                let outcomes = islands
                    .iter()
                    .map(|island| {
                        Ok(a2a_ga::EvolutionOutcome {
                            pool: pool_from_json(
                                spec,
                                island.get("pool").ok_or("island missing `pool`")?,
                            )?,
                            history: history_from_json(
                                island.get("history").ok_or("island missing `history`")?,
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Payload::Islands(IslandsState {
                    next_epoch: usize_member(doc, "next_epoch")?,
                    outcomes,
                })
            }
            other => return Err(format!("unknown checkpoint mode `{other}`")),
        };
        Ok(Self { digest, spec, counters, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_ga::FitnessReport;
    use a2a_grid::GridKind;
    use rand::{rngs::SmallRng, SeedableRng};

    fn sample_state(spec: FsmSpec) -> RunState {
        let mut rng = SmallRng::seed_from_u64(11);
        let pool: Vec<Individual> = (0..3)
            .map(|i| Individual {
                genome: Genome::random(spec, &mut rng),
                report: FitnessReport {
                    fitness: 1234.5 + f64::from(i),
                    successes: 3,
                    total: 5,
                    mean_t_comm: (i > 0).then_some(88.25),
                },
            })
            .collect();
        RunState {
            rng_state: rng.state(),
            pool,
            history: vec![GenerationStats {
                generation: 0,
                best_fitness: 1234.5,
                median_fitness: 1235.5,
                mean_fitness: 1235.5,
                best_successes: 3,
                best_complete: false,
                pool_diversity: 0.5,
                duplicates_removed: 0,
                offspring_accepted: 0,
            }],
            next_generation: 1,
        }
    }

    #[test]
    fn single_checkpoint_round_trips_exactly() {
        let spec = FsmSpec::paper(GridKind::Triangulate);
        let state = sample_state(spec);
        let ckpt = Checkpoint {
            digest: "00deadbeef00cafe".to_string(),
            spec,
            counters: Counters { cache_entries: 7, cache_hits: 3 },
            payload: Payload::Single(state.clone()),
        };
        let doc = a2a_obs::json::parse(&ckpt.to_json().to_string()).unwrap();
        let back = Checkpoint::from_json(&doc).unwrap();
        assert_eq!(back.digest, ckpt.digest);
        assert_eq!(back.spec, spec);
        assert_eq!(back.counters, ckpt.counters);
        let Payload::Single(got) = back.payload else { panic!("wrong mode") };
        assert_eq!(got.rng_state, state.rng_state);
        assert_eq!(got.pool, state.pool);
        assert_eq!(got.history, state.history);
        assert_eq!(got.next_generation, state.next_generation);
    }

    #[test]
    fn rng_words_survive_above_2_pow_53() {
        let spec = FsmSpec::paper(GridKind::Square);
        let mut state = sample_state(spec);
        state.rng_state = [u64::MAX, 1 << 60, (1 << 53) + 1, 0xDEAD_BEEF_DEAD_BEEF];
        let ckpt = Checkpoint {
            digest: "d".repeat(16),
            spec,
            counters: Counters::default(),
            payload: Payload::Single(state.clone()),
        };
        let doc = a2a_obs::json::parse(&ckpt.to_json().to_string()).unwrap();
        let Payload::Single(got) = Checkpoint::from_json(&doc).unwrap().payload else {
            panic!("wrong mode")
        };
        assert_eq!(got.rng_state, state.rng_state);
    }

    #[test]
    fn tampered_checkpoint_fails_checksum() {
        let spec = FsmSpec::paper(GridKind::Square);
        let ckpt = Checkpoint {
            digest: "a".repeat(16),
            spec,
            counters: Counters::default(),
            payload: Payload::Single(sample_state(spec)),
        };
        let mut doc = ckpt.to_json();
        doc.set("next_generation", 99u64);
        let err = Checkpoint::from_json(&doc).unwrap_err();
        assert!(err.contains("checksum"), "got: {err}");
    }

    #[test]
    fn all_zero_rng_state_is_rejected() {
        let spec = FsmSpec::paper(GridKind::Square);
        let mut state = sample_state(spec);
        state.rng_state = [0; 4];
        let ckpt = Checkpoint {
            digest: "b".repeat(16),
            spec,
            counters: Counters::default(),
            payload: Payload::Single(state),
        };
        let err = Checkpoint::from_json(&ckpt.to_json()).unwrap_err();
        assert!(err.contains("all-zero"), "got: {err}");
    }

    #[test]
    fn islands_checkpoint_round_trips() {
        let spec = FsmSpec::paper(GridKind::Square);
        let state = sample_state(spec);
        let outcome = a2a_ga::EvolutionOutcome {
            pool: state.pool.clone(),
            history: state.history.clone(),
        };
        let ckpt = Checkpoint {
            digest: "c".repeat(16),
            spec,
            counters: Counters::default(),
            payload: Payload::Islands(IslandsState {
                next_epoch: 2,
                outcomes: vec![outcome.clone(), outcome.clone()],
            }),
        };
        let doc = a2a_obs::json::parse(&ckpt.to_json().to_string()).unwrap();
        let back = Checkpoint::from_json(&doc).unwrap();
        let Payload::Islands(got) = back.payload else { panic!("wrong mode") };
        assert_eq!(got.next_epoch, 2);
        assert_eq!(got.outcomes.len(), 2);
        assert_eq!(got.outcomes[0].pool, outcome.pool);
        assert_eq!(got.outcomes[1].history, outcome.history);
    }

    #[test]
    fn digest_distinguishes_experiments() {
        let world_s = WorldConfig::paper(GridKind::Square, 8);
        let world_t = WorldConfig::paper(GridKind::Triangulate, 8);
        let cfg = GaConfig::paper(10, 42);
        let a = context_digest(&cfg, &world_s, 200, &[]);
        let b = context_digest(&cfg, &world_t, 200, &[]);
        let c = context_digest(&cfg, &world_s, 201, &[]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, context_digest(&cfg, &world_s, 200, &[]));
        assert_eq!(a.len(), 16);
    }
}

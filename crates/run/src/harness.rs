//! The crash-safe run harness: wires [`Evolution::run_resumable`] /
//! [`run_islands_resumable`] to a [`CheckpointStore`], persisting the
//! resumable state on a configurable cadence and restoring it under
//! `--resume`.
//!
//! Failure policy:
//!
//! * A checkpoint **save** failure is a warning, not a run failure — the
//!   run continues, the previous checkpoint file survives (atomic
//!   write), and the error count is reported so callers/CI can notice.
//! * A checkpoint **load** failure under `resume: true` is a hard error:
//!   silently restarting from scratch (or from someone else's
//!   experiment — digest mismatch) would fabricate results.
//! * The `run.generation` fault site is probed at every boundary; when
//!   it fires the run stops as if the process had been killed, which is
//!   exactly how the chaos suite simulates kills without losing the
//!   test harness itself.
//!
//! [`Evolution::run_resumable`]: a2a_ga::Evolution::run_resumable
//! [`run_islands_resumable`]: a2a_ga::run_islands_resumable

use crate::checkpoint::{context_digest, Checkpoint, Counters, Payload};
use crate::store::CheckpointStore;
use a2a_fsm::{FsmSpec, Genome};
use a2a_ga::{
    run_islands_resumable, Evaluator, Evolution, EvolutionOutcome, GaConfig, GenerationStats,
    IslandConfig, IslandOutcome, IslandsState, RunControl,
};
use a2a_obs::fault;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative stop flag checked at every generation/epoch boundary
/// (after the due checkpoint is persisted, so a stopped run is always
/// resumable from its last boundary). Clones share the flag; any holder
/// can raise it from any thread — the seam `a2a-serve` uses for job
/// deadlines and graceful drain.
#[derive(Debug, Clone, Default)]
pub struct StopSignal {
    flag: Arc<AtomicBool>,
}

impl StopSignal {
    /// A fresh, unraised signal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every harnessed run holding a clone stops at
    /// its next boundary.
    pub fn stop(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been raised.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// How a harnessed run persists and restores checkpoints.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Where checkpoints go; `None` disables persistence entirely.
    pub store: Option<CheckpointStore>,
    /// Checkpoint every `cadence` generation boundaries (0 is treated as
    /// 1). The final boundary is always checkpointed when a store is
    /// configured.
    pub cadence: usize,
    /// Restore from the store's checkpoint before running. Requires a
    /// store; a missing checkpoint file just starts fresh, but a corrupt
    /// one or a context-digest mismatch is a hard error.
    pub resume: bool,
    /// Cooperative stop flag; `None` means the run only stops at its
    /// generation budget (or a simulated kill).
    pub stop: Option<StopSignal>,
}

impl RunOptions {
    /// Persistence into `store` at every boundary, no resume.
    #[must_use]
    pub fn persisting(store: CheckpointStore) -> Self {
        Self { store: Some(store), cadence: 1, resume: false, stop: None }
    }

    /// Builder-style cadence override.
    #[must_use]
    pub fn every(mut self, cadence: usize) -> Self {
        self.cadence = cadence;
        self
    }

    /// Builder-style resume flag.
    #[must_use]
    pub fn resuming(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Builder-style cooperative stop signal.
    #[must_use]
    pub fn with_stop(mut self, stop: StopSignal) -> Self {
        self.stop = Some(stop);
        self
    }
}

/// What a harnessed single-pool run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The (possibly partial) outcome, pool sorted best-first.
    pub outcome: EvolutionOutcome,
    /// `false` iff the run stopped before its generation budget.
    pub completed: bool,
    /// The generation index the run resumed at (`None` for a fresh
    /// start).
    pub resumed_from: Option<usize>,
    /// Checkpoints successfully persisted during this run.
    pub checkpoints_written: usize,
    /// Checkpoint saves that failed (run continued).
    pub checkpoint_errors: usize,
    /// Whether the `run.generation` fault site stopped the run
    /// (simulated kill).
    pub killed: bool,
    /// Whether a [`StopSignal`] stopped the run at a boundary (the run
    /// is resumable from its last checkpoint).
    pub stopped: bool,
}

/// What a harnessed island-model run produced.
#[derive(Debug, Clone)]
pub struct IslandsReport {
    /// The (possibly partial) outcome.
    pub outcome: IslandOutcome,
    /// `false` iff the run stopped before its epoch budget.
    pub completed: bool,
    /// The epoch index the run resumed at (`None` for a fresh start).
    pub resumed_from: Option<usize>,
    /// Checkpoints successfully persisted during this run.
    pub checkpoints_written: usize,
    /// Checkpoint saves that failed (run continued).
    pub checkpoint_errors: usize,
    /// Whether the `run.generation` fault site stopped the run.
    pub killed: bool,
    /// Whether a [`StopSignal`] stopped the run at a boundary.
    pub stopped: bool,
}

/// Book-keeping shared by both harness flavours.
#[derive(Debug, Default)]
struct Progress {
    written: usize,
    errors: usize,
    killed: bool,
    stopped: bool,
}

impl Progress {
    /// Persists `checkpoint` if due at boundary `index`, then probes the
    /// kill site and the cooperative stop flag. Returns the control
    /// verdict for the boundary.
    fn boundary(
        &mut self,
        store: Option<&CheckpointStore>,
        stop: Option<&StopSignal>,
        due: bool,
        checkpoint: impl FnOnce() -> Checkpoint,
    ) -> RunControl {
        // A raised stop flag forces this boundary's checkpoint even off
        // cadence, so the stopped run resumes exactly where it stopped.
        let stopping = stop.is_some_and(StopSignal::is_stopped);
        let due = due || stopping;
        if let Some(store) = store {
            if due {
                match store.save(&checkpoint()) {
                    Ok(()) => {
                        self.written += 1;
                        if a2a_obs::metrics_enabled() {
                            a2a_obs::global().counter("run.checkpoint.writes").incr();
                        }
                    }
                    Err(e) => {
                        self.errors += 1;
                        if a2a_obs::metrics_enabled() {
                            a2a_obs::global().counter("run.checkpoint.errors").incr();
                        }
                        a2a_obs::event!(
                            a2a_obs::Level::Warn,
                            "run.checkpoint.failed",
                            "error" => e.to_string()
                        );
                        // A failed checkpoint write is exactly the
                        // moment the recent event history matters —
                        // dump the flight recorder while the evidence
                        // is still in the rings.
                        a2a_obs::flight::dump("checkpoint-write-failed");
                    }
                }
            }
        }
        if fault::should_kill("run.generation") {
            self.killed = true;
            return RunControl::Stop;
        }
        if stopping {
            self.stopped = true;
            return RunControl::Stop;
        }
        RunControl::Continue
    }
}

fn counters(evaluator: &Evaluator) -> Counters {
    Counters {
        cache_entries: evaluator.cache().len() as u64,
        cache_hits: evaluator.cache().hits(),
    }
}

/// Restores the checkpoint for `digest`/`spec` if `opts` asks for it.
///
/// # Errors
///
/// `resume: true` without a store, an unreadable/corrupt checkpoint, a
/// digest mismatch, or a spec mismatch.
fn restore(opts: &RunOptions, digest: &str, spec: FsmSpec) -> Result<Option<Payload>, String> {
    if !opts.resume {
        return Ok(None);
    }
    let store = opts
        .store
        .as_ref()
        .ok_or("resume requested but no checkpoint store configured")?;
    let Some(ckpt) = store.load()? else {
        return Ok(None); // Fresh directory: nothing to resume, start clean.
    };
    if ckpt.digest != digest {
        return Err(format!(
            "checkpoint digest {} does not match this experiment ({digest}); \
             refusing to resume across different configurations",
            ckpt.digest
        ));
    }
    if ckpt.spec != spec {
        return Err("checkpoint spec does not match this experiment".to_string());
    }
    Ok(Some(ckpt.payload))
}

/// Runs the single-pool procedure with checkpoint persistence and
/// optional resume. A resumed run's `outcome` is bit-identical to the
/// uninterrupted run's (see the `equivalence` integration test).
///
/// # Errors
///
/// Resume failures only (see [`RunOptions::resume`]); checkpoint save
/// failures are counted, not raised.
///
/// # Panics
///
/// As [`Evolution::new`] (invalid GA parameters).
pub fn run_evolution(
    spec: FsmSpec,
    evaluator: &Evaluator,
    config: GaConfig,
    seeds: Vec<Genome>,
    opts: &RunOptions,
    mut on_generation: impl FnMut(&GenerationStats),
) -> Result<RunReport, String> {
    let digest = context_digest(&config, evaluator.config(), evaluator.t_max(), evaluator.configs());
    let resume_state = match restore(opts, &digest, spec)? {
        None => None,
        Some(Payload::Single(state)) => Some(state),
        Some(Payload::Islands(_)) => {
            return Err("checkpoint is an island-model snapshot, not a single run".to_string())
        }
    };
    let resumed_from = resume_state.as_ref().map(|s| s.next_generation);
    let cadence = opts.cadence.max(1);
    let last = config.generations;
    let mut progress = Progress::default();
    let run = Evolution::new(spec, evaluator.clone(), config).run_resumable(
        resume_state,
        seeds,
        |stats, state| {
            on_generation(stats);
            let boundary_index = state.next_generation - 1;
            let due = boundary_index % cadence == 0 || boundary_index == last;
            progress.boundary(opts.store.as_ref(), opts.stop.as_ref(), due, || Checkpoint {
                digest: digest.clone(),
                spec,
                counters: counters(evaluator),
                payload: Payload::Single(state.clone()),
            })
        },
    );
    Ok(RunReport {
        outcome: run.outcome,
        completed: run.completed && !progress.killed && !progress.stopped,
        resumed_from,
        checkpoints_written: progress.written,
        checkpoint_errors: progress.errors,
        killed: progress.killed,
        stopped: progress.stopped,
    })
}

/// Island-model counterpart of [`run_evolution`]: checkpoints at epoch
/// boundaries (the island model's native unit of resumable work).
///
/// # Errors
///
/// Resume failures only; checkpoint save failures are counted.
///
/// # Panics
///
/// As [`run_islands_resumable`] (zero islands, oversized migration).
pub fn run_islands_checkpointed(
    spec: FsmSpec,
    evaluator: &Evaluator,
    config: GaConfig,
    island_config: IslandConfig,
    opts: &RunOptions,
    mut on_epoch: impl FnMut(usize, &[EvolutionOutcome]),
) -> Result<IslandsReport, String> {
    let digest = context_digest(&config, evaluator.config(), evaluator.t_max(), evaluator.configs());
    let resume_state = match restore(opts, &digest, spec)? {
        None => None,
        Some(Payload::Islands(state)) => Some(state),
        Some(Payload::Single(_)) => {
            return Err("checkpoint is a single-run snapshot, not an island model".to_string())
        }
    };
    let resumed_from = resume_state.as_ref().map(|s| s.next_epoch);
    let cadence = opts.cadence.max(1);
    let epochs = config.generations.div_ceil(island_config.epoch.max(1));
    let mut progress = Progress::default();
    let run = run_islands_resumable(
        spec,
        evaluator,
        config,
        island_config,
        resume_state,
        |epoch, state: &IslandsState| {
            on_epoch(epoch, &state.outcomes);
            let due = epoch % cadence == 0 || state.next_epoch >= epochs;
            progress.boundary(opts.store.as_ref(), opts.stop.as_ref(), due, || Checkpoint {
                digest: digest.clone(),
                spec,
                counters: counters(evaluator),
                payload: Payload::Islands(state.clone()),
            })
        },
    );
    Ok(IslandsReport {
        outcome: run.outcome,
        completed: run.completed && !progress.killed && !progress.stopped,
        resumed_from,
        checkpoints_written: progress.written,
        checkpoint_errors: progress.errors,
        killed: progress.killed,
        stopped: progress.stopped,
    })
}

//! Campaign engine: a MAP-Elites-style archive over (grid, density, k)
//! niches fed by sharded island workers that exchange migrants through
//! sealed archive-delta files in a shared store.
//!
//! # Shape of a campaign
//!
//! A campaign proceeds in synchronous **rounds**. Each round, every
//! shard computes a batch of candidate genomes for its assigned niches,
//! dedups them against the campaign-wide digest set, evaluates the
//! survivors on the shared [`WorkerPool`], and publishes the outcome as
//! one sealed **archive delta** (`a2a-run/archive-delta/v1`). A
//! coordinator waits for all deltas of a round, folds them into the
//! merged archive with conflict-free niche-min semantics, and publishes
//! the sealed merged archive plus the round's new digests — the barrier
//! the next round starts from.
//!
//! # Crash-only determinism
//!
//! Every shard round is a **pure function** of `(campaign seed, shard
//! index, round index, merged archive of the previous round)` — the
//! per-round RNG is re-seeded from those via FNV, so no RNG state is
//! carried across rounds and the delta files *are* the checkpoints.
//! Resume is "find the artifacts that exist, recompute the ones that
//! don't": a shard killed mid-round (SIGKILL, fault injection, power
//! loss) simply redoes the round on restart and — by purity — writes a
//! byte-identical delta, so the final archive of an interrupted
//! campaign is byte-identical to an uninterrupted control run. The
//! chaos suite asserts exactly that.
//!
//! # Dedup and merge semantics
//!
//! * A genome digest is FNV-1a 64 over `niche_id|digits`, so dedup is
//!   per-niche (the same FSM is legitimately re-evaluated in a
//!   different world). Digests ride inside the same sealed delta as the
//!   folded results — a digest is never durable without its elite, the
//!   invariant behind "dedup never drops a strictly-better elite".
//! * Cross-shard dedup is at **round granularity**: shards see the
//!   union of all digests through completed rounds. Two shards *can*
//!   collide within one round; the coordinator counts those honestly as
//!   `collisions` instead of pretending they were deduplicated.
//! * The archive merge keeps, per niche, the elite with **lower**
//!   fitness (the paper minimises), ties broken by lexicographically
//!   smaller digits. That order is total, so folding is commutative,
//!   associative and idempotent — deltas can arrive in any interleaving
//!   and the merged archive is identical (property-tested).
//!
//! # Work distribution
//!
//! Niche assignment is deterministic work-stealing: every round the
//! niche deck is re-ordered cold-first (uncovered niches ahead of
//! covered, unsolved ahead of solved), rotated by the round index, and
//! dealt round-robin across shards with larger budgets for cold niches.
//! No shard idles on a cold-only set, and because the deal is a pure
//! function of the merged archive, every replica computes the same
//! assignment without coordination.

use a2a_fsm::{offspring, FsmSpec, Genome, MutationRates};
use a2a_ga::{Evaluator, FitnessReport, WorkerPool};
use a2a_grid::{GridKind, Lattice};
use a2a_obs::json::Json;
use a2a_obs::{atomic_write, fault, schema};
use a2a_sim::{paper_config_set, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema identifier of the sealed campaign spec document.
pub const CAMPAIGN_SPEC_SCHEMA: &str = "a2a-run/campaign-spec/v1";
/// Schema identifier of sealed per-shard-per-round archive deltas.
pub const ARCHIVE_DELTA_SCHEMA: &str = "a2a-run/archive-delta/v1";
/// Schema identifier of sealed merged-archive round barriers.
pub const CAMPAIGN_MERGED_SCHEMA: &str = "a2a-run/campaign-merged/v1";
/// Schema identifier of the sealed final archive.
pub const ARCHIVE_SCHEMA: &str = "a2a-run/archive/v1";
/// Schema identifier of the sealed campaign summary.
pub const CAMPAIGN_SUMMARY_SCHEMA: &str = "a2a-run/campaign-summary/v1";

/// Fault-injection site probed at every shard round boundary (the
/// campaign analogue of `run.generation`): a fired kill makes the shard
/// die like a SIGKILLed process, before the round's delta is durable.
pub const CAMPAIGN_ROUND_SITE: &str = "campaign.round";

/// How long barrier polls wait before declaring the campaign wedged.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(300);
/// Poll cadence of the file-based round barriers.
const BARRIER_POLL: Duration = Duration::from_millis(2);

/// One cell of the MAP-Elites archive: a (grid kind, field size, agent
/// count) niche. Density is implied (`k / m²`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NicheKey {
    /// Grid family (S or T).
    pub kind: GridKind,
    /// Field edge length (`m × m` torus).
    pub m: u16,
    /// Agents placed on the field.
    pub k: usize,
}

impl NicheKey {
    /// Canonical niche identifier, e.g. `t-m8-k4`. Used as the archive
    /// key and inside genome digests, so it must stay stable.
    #[must_use]
    pub fn id(&self) -> String {
        let kind = match self.kind {
            GridKind::Square => 's',
            GridKind::Triangulate => 't',
        };
        format!("{kind}-m{}-k{}", self.m, self.k)
    }

    /// Parses [`NicheKey::id`] back.
    ///
    /// # Errors
    ///
    /// A message naming the malformed part.
    pub fn parse(id: &str) -> Result<Self, String> {
        let mut parts = id.split('-');
        let kind = match parts.next() {
            Some("s") => GridKind::Square,
            Some("t") => GridKind::Triangulate,
            other => return Err(format!("bad niche kind in `{id}`: {other:?}")),
        };
        let m = parts
            .next()
            .and_then(|p| p.strip_prefix('m'))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad niche field size in `{id}`"))?;
        let k = parts
            .next()
            .and_then(|p| p.strip_prefix('k'))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad niche agent count in `{id}`"))?;
        if parts.next().is_some() {
            return Err(format!("trailing junk in niche id `{id}`"));
        }
        Ok(Self { kind, m, k })
    }

    /// Agent density of the niche (`k / m²`), the paper's x-axis.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.k as f64 / (f64::from(self.m) * f64::from(self.m))
    }
}

/// Parameters of one campaign. Everything downstream — niche ids,
/// RNG streams, budgets — derives from this, so two processes with the
/// same spec replay the same campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The archive cells.
    pub niches: Vec<NicheKey>,
    /// Worker shards feeding the archive.
    pub shards: usize,
    /// Synchronous rounds to run.
    pub rounds: usize,
    /// Base candidate budget per niche per round (cold niches get 2×).
    pub batch: usize,
    /// Seeded random configurations per niche evaluation set (the
    /// paper's designed hard cases are always appended).
    pub configs: usize,
    /// Simulation horizon per configuration.
    pub t_max: u32,
    /// Campaign seed; every RNG stream derives from it.
    pub seed: u64,
}

impl CampaignSpec {
    /// Context digest binding artifacts to this spec (same role as
    /// [`crate::context_digest`] for checkpoints).
    #[must_use]
    pub fn digest(&self) -> String {
        format!("{:016x}", schema::fnv1a64(format!("{self:?}").as_bytes()))
    }

    /// Serialises the spec as a sealed document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let doc = Json::object()
            .with("schema", CAMPAIGN_SPEC_SCHEMA)
            .with("digest", self.digest())
            .with(
                "niches",
                Json::Arr(self.niches.iter().map(|n| Json::Str(n.id())).collect()),
            )
            .with("shards", self.shards as u64)
            .with("rounds", self.rounds as u64)
            .with("batch", self.batch as u64)
            .with("configs", self.configs as u64)
            .with("t_max", u64::from(self.t_max))
            .with("seed", format!("{:016x}", self.seed));
        schema::seal(doc)
    }

    /// Parses and validates a sealed spec document.
    ///
    /// # Errors
    ///
    /// Checksum mismatch, wrong schema, or a missing/mistyped member.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        schema::verify_checksum(doc)?;
        expect_schema(doc, CAMPAIGN_SPEC_SCHEMA)?;
        let niches = doc
            .get("niches")
            .and_then(Json::as_arr)
            .ok_or("campaign spec missing `niches` array")?
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| "niche id must be a string".to_string())
                    .and_then(NicheKey::parse)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let seed = doc
            .get("seed")
            .and_then(Json::as_str)
            .ok_or("campaign spec missing hex `seed`")?;
        let spec = Self {
            niches,
            shards: usize_member(doc, "shards")?,
            rounds: usize_member(doc, "rounds")?,
            batch: usize_member(doc, "batch")?,
            configs: usize_member(doc, "configs")?,
            t_max: usize_member(doc, "t_max")? as u32,
            seed: u64::from_str_radix(seed, 16).map_err(|e| format!("bad seed `{seed}`: {e}"))?,
        };
        let recorded = doc.get("digest").and_then(Json::as_str).unwrap_or("");
        if recorded != spec.digest() {
            return Err(format!(
                "campaign spec digest mismatch: recorded {recorded}, computed {}",
                spec.digest()
            ));
        }
        Ok(spec)
    }
}

fn expect_schema(doc: &Json, want: &str) -> Result<(), String> {
    let got = doc.get("schema").and_then(Json::as_str).unwrap_or("<missing>");
    if got == want {
        Ok(())
    } else {
        Err(format!("expected schema `{want}`, found `{got}`"))
    }
}

fn usize_member(doc: &Json, key: &str) -> Result<usize, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("document missing numeric `{key}`"))
}

fn u64_member(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("document missing numeric `{key}`"))
}

/// One archive entry: the niche champion and its full evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Elite {
    /// Genome digits (decodable via the niche's [`FsmSpec`]).
    pub digits: String,
    /// The sealed-in evaluation of those digits on the niche's
    /// configuration set.
    pub report: FitnessReport,
}

impl Elite {
    /// The total order that makes archive folding commutative: lower
    /// fitness wins (the paper minimises); exact ties break toward the
    /// lexicographically smaller digits string. Evaluation is
    /// bit-identical across engines and replays (PR 3/5), so comparing
    /// `f64` fitness exactly is sound.
    #[must_use]
    pub fn better_than(&self, other: &Elite) -> bool {
        if self.report.fitness != other.report.fitness {
            return self.report.fitness < other.report.fitness;
        }
        self.digits < other.digits
    }

    fn to_json(&self) -> Json {
        Json::object()
            .with("digits", self.digits.as_str())
            .with("report", self.report.to_json())
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let digits = doc
            .get("digits")
            .and_then(Json::as_str)
            .ok_or("elite missing string `digits`")?
            .to_string();
        let report =
            FitnessReport::from_json(doc.get("report").ok_or("elite missing `report`")?)?;
        Ok(Self { digits, report })
    }
}

/// The MAP-Elites archive: best-known elite per niche id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Archive {
    entries: BTreeMap<String, Elite>,
}

impl Archive {
    /// An empty archive.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one candidate in; returns whether it became (or improved)
    /// the niche elite. Commutative in the sense documented on
    /// [`Elite::better_than`].
    pub fn fold(&mut self, niche_id: &str, elite: Elite) -> bool {
        match self.entries.get(niche_id) {
            Some(best) if !elite.better_than(best) => false,
            _ => {
                self.entries.insert(niche_id.to_string(), elite);
                true
            }
        }
    }

    /// Folds a whole delta in; returns how many niches improved.
    pub fn merge(&mut self, delta: &ArchiveDelta) -> usize {
        let mut improved = 0;
        for (niche_id, elite) in &delta.entries {
            if self.fold(niche_id, elite.clone()) {
                improved += 1;
            }
        }
        improved
    }

    /// The elite of a niche, if the niche is covered.
    #[must_use]
    pub fn get(&self, niche_id: &str) -> Option<&Elite> {
        self.entries.get(niche_id)
    }

    /// Iterates `(niche id, elite)` in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Elite)> {
        self.entries.iter()
    }

    /// Covered niches (any elite at all).
    #[must_use]
    pub fn covered(&self) -> usize {
        self.entries.len()
    }

    /// Niches whose elite solves every training configuration.
    #[must_use]
    pub fn solved(&self) -> usize {
        self.entries.values().filter(|e| e.report.is_completely_successful()).count()
    }

    fn entries_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|(id, e)| e.to_json().with("niche", id.as_str()))
                .collect(),
        )
    }

    fn entries_from_json(doc: &Json) -> Result<BTreeMap<String, Elite>, String> {
        let mut entries = BTreeMap::new();
        for item in doc.as_arr().ok_or("`entries` must be an array")? {
            let id = item
                .get("niche")
                .and_then(Json::as_str)
                .ok_or("archive entry missing string `niche`")?;
            entries.insert(id.to_string(), Elite::from_json(item)?);
        }
        Ok(entries)
    }

    /// Serialises the archive as the sealed final-artifact document
    /// (the file the chaos suite byte-compares).
    #[must_use]
    pub fn to_json(&self, spec_digest: &str) -> Json {
        let doc = Json::object()
            .with("schema", ARCHIVE_SCHEMA)
            .with("digest", spec_digest)
            .with("covered", self.covered() as u64)
            .with("solved", self.solved() as u64)
            .with("entries", self.entries_json());
        schema::seal(doc)
    }

    /// Parses a sealed archive document.
    ///
    /// # Errors
    ///
    /// Checksum mismatch, wrong schema, or malformed entries.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        schema::verify_checksum(doc)?;
        expect_schema(doc, ARCHIVE_SCHEMA)?;
        Ok(Self {
            entries: Self::entries_from_json(
                doc.get("entries").ok_or("archive missing `entries`")?,
            )?,
        })
    }
}

/// Digest of one candidate genome in one niche: FNV-1a 64 over
/// `niche_id|digits`. Niche-scoped on purpose — the same FSM in a
/// different world is a different evaluation.
#[must_use]
pub fn genome_digest(niche_id: &str, digits: &str) -> u64 {
    schema::fnv1a64(format!("{niche_id}|{digits}").as_bytes())
}

/// The campaign-wide persistent dedup set: every genome digest whose
/// evaluation is already durable in some sealed artifact.
#[derive(Debug, Clone, Default)]
pub struct DigestSet {
    set: HashSet<u64>,
}

impl DigestSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `digest` is already known.
    #[must_use]
    pub fn contains(&self, digest: u64) -> bool {
        self.set.contains(&digest)
    }

    /// Inserts; returns `true` when the digest was new.
    pub fn insert(&mut self, digest: u64) -> bool {
        self.set.insert(digest)
    }

    /// Number of known digests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no digest is known yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// One shard's sealed output for one round: improved elites, the
/// digests of every genome it evaluated, and honest counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArchiveDelta {
    /// Producing shard.
    pub shard: usize,
    /// Round index.
    pub round: usize,
    /// Best candidate per niche this shard touched this round.
    pub entries: BTreeMap<String, Elite>,
    /// Digests of genomes newly evaluated this round (sorted hex).
    pub digests: Vec<u64>,
    /// Evaluations actually performed.
    pub evals: u64,
    /// Candidates skipped because their digest was already known.
    pub dedup_hits: u64,
    /// Candidates derived from another niche's elite (migrants).
    pub migrations: u64,
}

impl ArchiveDelta {
    /// Folds a candidate outcome into the delta (same total order as
    /// the archive).
    pub fn fold(&mut self, niche_id: &str, elite: Elite) {
        match self.entries.get(niche_id) {
            Some(best) if !elite.better_than(best) => {}
            _ => {
                self.entries.insert(niche_id.to_string(), elite);
            }
        }
    }

    /// Serialises as a sealed delta document.
    #[must_use]
    pub fn to_json(&self, spec_digest: &str) -> Json {
        let mut digests = self.digests.clone();
        digests.sort_unstable();
        let doc = Json::object()
            .with("schema", ARCHIVE_DELTA_SCHEMA)
            .with("digest", spec_digest)
            .with("shard", self.shard as u64)
            .with("round", self.round as u64)
            .with(
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|(id, e)| e.to_json().with("niche", id.as_str()))
                        .collect(),
                ),
            )
            .with(
                "digests",
                Json::Arr(digests.iter().map(|d| Json::Str(format!("{d:016x}"))).collect()),
            )
            .with("evals", self.evals)
            .with("dedup_hits", self.dedup_hits)
            .with("migrations", self.migrations);
        schema::seal(doc)
    }

    /// Parses a sealed delta document.
    ///
    /// # Errors
    ///
    /// Checksum mismatch, wrong schema, or malformed members.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        schema::verify_checksum(doc)?;
        expect_schema(doc, ARCHIVE_DELTA_SCHEMA)?;
        let digests = doc
            .get("digests")
            .and_then(Json::as_arr)
            .ok_or("delta missing `digests` array")?
            .iter()
            .map(|v| {
                let s = v.as_str().ok_or("digest must be a hex string")?;
                u64::from_str_radix(s, 16).map_err(|e| format!("bad digest `{s}`: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            shard: usize_member(doc, "shard")?,
            round: usize_member(doc, "round")?,
            entries: Archive::entries_from_json(
                doc.get("entries").ok_or("delta missing `entries`")?,
            )?,
            digests,
            evals: u64_member(doc, "evals")?,
            dedup_hits: u64_member(doc, "dedup_hits")?,
            migrations: u64_member(doc, "migrations")?,
        })
    }
}

/// Cumulative campaign counters, as carried by each merged barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignCounters {
    /// Evaluations performed campaign-wide.
    pub evals: u64,
    /// Dedup hits (candidates skipped because already evaluated).
    pub dedup_hits: u64,
    /// Migrant-derived candidates.
    pub migrations: u64,
    /// Same-round cross-shard duplicate evaluations (counted honestly;
    /// round-granularity dedup cannot prevent them).
    pub collisions: u64,
}

/// Per-round statistics, the source of the coverage curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Round index.
    pub round: usize,
    /// Cumulative counters after this round's merge.
    pub counters: CampaignCounters,
    /// Covered niches after this round.
    pub covered: usize,
    /// Completely-successful niches after this round.
    pub solved: usize,
}

/// Final outcome of a coordinated campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The merged final archive.
    pub archive: Archive,
    /// Cumulative counters.
    pub counters: CampaignCounters,
    /// Per-round history (coverage curve).
    pub rounds: Vec<RoundStats>,
}

/// File layout of one campaign in a store directory.
///
/// ```text
/// <root>/campaign.json          sealed spec
/// <root>/delta-s<S>-r<R>.json   sealed shard deltas (the checkpoints)
/// <root>/digests-r<R>.json      sealed new-digest log per merged round
/// <root>/merged-r<R>.json       sealed merged archive (round barrier)
/// <root>/archive-final.json     sealed final archive
/// <root>/campaign-summary.json  sealed counters + coverage curve
/// ```
#[derive(Debug, Clone)]
pub struct CampaignStore {
    root: PathBuf,
}

impl CampaignStore {
    /// A store rooted at `root` (created on first write).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn delta_path(&self, shard: usize, round: usize) -> PathBuf {
        self.root.join(format!("delta-s{shard}-r{round}.json"))
    }

    fn digests_path(&self, round: usize) -> PathBuf {
        self.root.join(format!("digests-r{round}.json"))
    }

    fn merged_path(&self, round: usize) -> PathBuf {
        self.root.join(format!("merged-r{round}.json"))
    }

    /// Path of the sealed final archive.
    #[must_use]
    pub fn final_path(&self) -> PathBuf {
        self.root.join("archive-final.json")
    }

    /// Path of the sealed campaign summary.
    #[must_use]
    pub fn summary_path(&self) -> PathBuf {
        self.root.join("campaign-summary.json")
    }

    fn spec_path(&self) -> PathBuf {
        self.root.join("campaign.json")
    }

    fn write_doc(&self, path: &Path, doc: &Json) -> Result<(), String> {
        std::fs::create_dir_all(&self.root)
            .map_err(|e| format!("cannot create campaign store {}: {e}", self.root.display()))?;
        fault::io_error("run.checkpoint.write")
            .and_then(|()| atomic_write(path, format!("{doc}\n").as_bytes()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    fn read_doc(&self, path: &Path) -> Result<Option<Json>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        a2a_obs::json::parse(text.trim())
            .map(Some)
            .map_err(|e| format!("corrupt document {}: {e}", path.display()))
    }

    /// Publishes the sealed spec, or verifies it matches an existing
    /// one (resume against a different spec is refused, like checkpoint
    /// digest mismatches).
    ///
    /// # Errors
    ///
    /// Write failures, or a pre-existing spec with a different digest.
    pub fn init(&self, spec: &CampaignSpec) -> Result<(), String> {
        if let Some(doc) = self.read_doc(&self.spec_path())? {
            let existing = CampaignSpec::from_json(&doc)?;
            if existing.digest() != spec.digest() {
                return Err(format!(
                    "campaign store {} belongs to a different spec \
                     (stored digest {}, this campaign {})",
                    self.root.display(),
                    existing.digest(),
                    spec.digest()
                ));
            }
            return Ok(());
        }
        self.write_doc(&self.spec_path(), &spec.to_json())
    }

    /// Loads the sealed spec, if the store is initialised.
    ///
    /// # Errors
    ///
    /// Unreadable or corrupt spec document.
    pub fn load_spec(&self) -> Result<Option<CampaignSpec>, String> {
        self.read_doc(&self.spec_path())?.map(|d| CampaignSpec::from_json(&d)).transpose()
    }

    /// Persists one shard delta (atomic; the shard's round checkpoint).
    ///
    /// # Errors
    ///
    /// Write failures (including injected `run.checkpoint.write` faults).
    pub fn save_delta(&self, spec: &CampaignSpec, delta: &ArchiveDelta) -> Result<(), String> {
        self.write_doc(&self.delta_path(delta.shard, delta.round), &delta.to_json(&spec.digest()))
    }

    /// Loads one shard delta if present and intact.
    ///
    /// # Errors
    ///
    /// Unreadable or corrupt (checksum-failing) delta.
    pub fn load_delta(&self, shard: usize, round: usize) -> Result<Option<ArchiveDelta>, String> {
        self.read_doc(&self.delta_path(shard, round))?
            .map(|d| ArchiveDelta::from_json(&d))
            .transpose()
    }

    /// Persists the merged barrier of `round`: first the sealed digest
    /// log, then the sealed merged archive (the order makes the merged
    /// file the commit point — if the coordinator dies between the two
    /// writes, the redo rewrites both identically).
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn save_merged(
        &self,
        spec: &CampaignSpec,
        stats: &RoundStats,
        archive: &Archive,
        new_digests: &BTreeSet<u64>,
    ) -> Result<(), String> {
        let digest_doc = schema::seal(
            Json::object()
                .with("schema", "a2a-run/digest-log/v1")
                .with("digest", spec.digest())
                .with("round", stats.round as u64)
                .with(
                    "digests",
                    Json::Arr(
                        new_digests.iter().map(|d| Json::Str(format!("{d:016x}"))).collect(),
                    ),
                ),
        );
        self.write_doc(&self.digests_path(stats.round), &digest_doc)?;
        let merged = schema::seal(
            Json::object()
                .with("schema", CAMPAIGN_MERGED_SCHEMA)
                .with("digest", spec.digest())
                .with("round", stats.round as u64)
                .with("evals", stats.counters.evals)
                .with("dedup_hits", stats.counters.dedup_hits)
                .with("migrations", stats.counters.migrations)
                .with("collisions", stats.counters.collisions)
                .with("covered", stats.covered as u64)
                .with("solved", stats.solved as u64)
                .with("entries", archive.entries_json()),
        );
        self.write_doc(&self.merged_path(stats.round), &merged)
    }

    /// Loads the merged barrier of `round`, if committed.
    ///
    /// # Errors
    ///
    /// Unreadable or corrupt merged document.
    pub fn load_merged(&self, round: usize) -> Result<Option<(RoundStats, Archive)>, String> {
        let Some(doc) = self.read_doc(&self.merged_path(round))? else {
            return Ok(None);
        };
        schema::verify_checksum(&doc)?;
        expect_schema(&doc, CAMPAIGN_MERGED_SCHEMA)?;
        let stats = RoundStats {
            round: usize_member(&doc, "round")?,
            counters: CampaignCounters {
                evals: u64_member(&doc, "evals")?,
                dedup_hits: u64_member(&doc, "dedup_hits")?,
                migrations: u64_member(&doc, "migrations")?,
                collisions: u64_member(&doc, "collisions")?,
            },
            covered: usize_member(&doc, "covered")?,
            solved: usize_member(&doc, "solved")?,
        };
        let archive = Archive {
            entries: Archive::entries_from_json(
                doc.get("entries").ok_or("merged document missing `entries`")?,
            )?,
        };
        Ok(Some((stats, archive)))
    }

    /// Loads the sealed digest log of one merged round.
    ///
    /// # Errors
    ///
    /// Missing, unreadable or corrupt digest log.
    pub fn load_digests(&self, round: usize) -> Result<Vec<u64>, String> {
        let doc = self
            .read_doc(&self.digests_path(round))?
            .ok_or_else(|| format!("digest log of round {round} is missing"))?;
        schema::verify_checksum(&doc)?;
        doc.get("digests")
            .and_then(Json::as_arr)
            .ok_or("digest log missing `digests` array")?
            .iter()
            .map(|v| {
                let s = v.as_str().ok_or("digest must be a hex string")?;
                u64::from_str_radix(s, 16).map_err(|e| format!("bad digest `{s}`: {e}"))
            })
            .collect()
    }

    /// Rebuilds the campaign-wide [`DigestSet`] through round
    /// `before_round - 1` (what a shard starting `before_round` sees).
    ///
    /// # Errors
    ///
    /// A missing or corrupt digest log of a committed round.
    pub fn digest_set(&self, before_round: usize) -> Result<DigestSet, String> {
        let mut set = DigestSet::new();
        for round in 0..before_round {
            for d in self.load_digests(round)? {
                set.insert(d);
            }
        }
        Ok(set)
    }
}

/// Lazily-built per-niche evaluators sharing one [`WorkerPool`] — the
/// zero-copy reuse path: every niche evaluation in a shard runs on the
/// same threads, worlds and scratch buffers (PR 3/5 machinery).
#[derive(Debug)]
pub struct EvaluatorBank {
    spec: CampaignSpec,
    threads: usize,
    pool: Arc<WorkerPool>,
    evaluators: HashMap<String, Evaluator>,
}

impl EvaluatorBank {
    /// A bank for `spec` evaluating on `threads` workers.
    #[must_use]
    pub fn new(spec: &CampaignSpec, threads: usize) -> Self {
        Self {
            spec: spec.clone(),
            threads: threads.max(1),
            pool: Arc::new(WorkerPool::new(threads.max(1))),
            evaluators: HashMap::new(),
        }
    }

    /// The evaluator of one niche (built on first use).
    ///
    /// # Panics
    ///
    /// Panics when the niche's configuration set cannot be generated
    /// (`k` exceeding the cell count — a spec bug, not a runtime state).
    pub fn evaluator_for(&mut self, niche: NicheKey) -> &Evaluator {
        let id = niche.id();
        if !self.evaluators.contains_key(&id) {
            let world = WorldConfig::paper(niche.kind, niche.m);
            let configs = paper_config_set(
                Lattice::torus(niche.m, niche.m),
                niche.kind,
                niche.k,
                self.spec.configs,
                self.spec.seed,
            )
            .unwrap_or_else(|e| panic!("niche {id} has no valid configuration set: {e}"));
            let evaluator = Evaluator::new(world, configs)
                .with_t_max(self.spec.t_max)
                .with_threads(self.threads)
                .with_cache_context("campaign.shard")
                .with_pool(Arc::clone(&self.pool));
            self.evaluators.insert(id.clone(), evaluator);
        }
        &self.evaluators[&id]
    }
}

/// The deterministic work-stealing deal: per shard, the niches it works
/// this round with their candidate budgets. A pure function of the spec
/// and the merged archive, so every replica agrees without messages.
#[must_use]
pub fn assign_round(
    spec: &CampaignSpec,
    round: usize,
    archive: &Archive,
) -> Vec<Vec<(NicheKey, usize)>> {
    // Cold-first deck: uncovered, then covered-but-unsolved, then
    // solved; stable by id within a class.
    let mut deck: Vec<(u8, String, NicheKey)> = spec
        .niches
        .iter()
        .map(|n| {
            let id = n.id();
            let class = match archive.get(&id) {
                None => 0u8,
                Some(e) if !e.report.is_completely_successful() => 1,
                Some(_) => 2,
            };
            (class, id, *n)
        })
        .collect();
    deck.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    let mut shards: Vec<Vec<(NicheKey, usize)>> = vec![Vec::new(); spec.shards.max(1)];
    let n = deck.len();
    for (i, (class, _, niche)) in deck.into_iter().enumerate() {
        // Rotating the deal by the round index spreads cold niches
        // across shards over time (no shard is pinned to a cold set).
        let shard = (i + round) % spec.shards.max(1);
        let budget = match class {
            0 => spec.batch * 2, // cold niches soak up spare capacity
            1 => spec.batch,
            // Solved niches still refine (lower mean t_comm): at least
            // the incumbent probe plus one mutation slot.
            _ => (spec.batch / 2).max(2),
        };
        let _ = n;
        shards[shard].push((niche, budget));
    }
    shards
}

/// Up to two migrant parents for `niche`: elites of *other* niches with
/// the same grid kind, nearest by (m, k) distance, deterministic order.
fn migrants_for(spec: &CampaignSpec, niche: NicheKey, archive: &Archive) -> Vec<Elite> {
    let mut sources: Vec<(u64, String, Elite)> = spec
        .niches
        .iter()
        .filter(|n| n.kind == niche.kind && **n != niche)
        .filter_map(|n| {
            let id = n.id();
            archive.get(&id).map(|e| {
                let dm = (i64::from(n.m) - i64::from(niche.m)).unsigned_abs();
                let dk = (n.k as i64 - niche.k as i64).unsigned_abs();
                (dm * 1000 + dk, id, e.clone())
            })
        })
        .collect();
    sources.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    sources.into_iter().take(2).map(|(_, _, e)| e).collect()
}

/// Runs one shard round: a pure function of the spec, shard, round and
/// previous merged archive (plus the digest set derived from committed
/// rounds). See the module docs for the candidate schedule.
pub fn run_shard_round(
    spec: &CampaignSpec,
    shard: usize,
    round: usize,
    merged: &Archive,
    digests: &DigestSet,
    bank: &mut EvaluatorBank,
) -> ArchiveDelta {
    let assignment = assign_round(spec, round, merged);
    let mut delta = ArchiveDelta { shard, round, ..ArchiveDelta::default() };
    let mut in_round: HashSet<u64> = HashSet::new();
    let rates = MutationRates::paper();
    for (niche, budget) in assignment.get(shard).cloned().unwrap_or_default() {
        let niche_id = niche.id();
        let fsm_spec = FsmSpec::paper(niche.kind);
        let stream = format!("{:016x}|{shard}|{round}|{niche_id}", spec.seed);
        let mut rng = SmallRng::seed_from_u64(schema::fnv1a64(stream.as_bytes()));
        let incumbent = merged.get(&niche_id).cloned();
        let migrants = migrants_for(spec, niche, merged);

        // Candidate schedule: the incumbent re-probe first (exercising
        // the dedup path every round), then mutations cycling over
        // incumbent + migrant parents, one fresh random genome last.
        let mut parents: Vec<(Genome, bool)> = Vec::new();
        if let Some(e) = &incumbent {
            if let Some(g) = Genome::from_digits(fsm_spec, &e.digits) {
                parents.push((g, false));
            }
        }
        for m in &migrants {
            if let Some(g) = Genome::from_digits(fsm_spec, &m.digits) {
                parents.push((g, true));
            }
        }
        let mut candidates: Vec<Genome> = Vec::with_capacity(budget);
        if let Some((g, _)) = parents.first() {
            candidates.push(g.clone()); // incumbent/migrant re-probe
        }
        // Start the parent cycle at the round index so small budgets
        // still rotate through migrants over the campaign instead of
        // re-mutating the incumbent forever.
        let mut next_parent = round;
        // One trailing random-exploration slot, but only when the
        // budget leaves room for at least one mutation beside it.
        let reserve_random = budget >= 3;
        while candidates.len() < budget {
            let remaining = budget - candidates.len();
            if parents.is_empty() || (reserve_random && remaining == 1) {
                candidates.push(Genome::random(fsm_spec, &mut rng));
            } else {
                let (parent, is_migrant) = &parents[next_parent % parents.len()];
                next_parent += 1;
                if *is_migrant {
                    delta.migrations += 1;
                }
                candidates.push(offspring(parent, rates, &mut rng));
            }
        }

        let mut to_eval: Vec<Genome> = Vec::new();
        for genome in candidates {
            let digest = genome_digest(&niche_id, &genome.to_digits());
            if digests.contains(digest) || !in_round.insert(digest) {
                delta.dedup_hits += 1;
            } else {
                delta.digests.push(digest);
                to_eval.push(genome);
            }
        }
        let reports = bank.evaluator_for(niche).evaluate_all(&to_eval);
        delta.evals += to_eval.len() as u64;
        for (genome, report) in to_eval.into_iter().zip(reports) {
            delta.fold(&niche_id, Elite { digits: genome.to_digits(), report });
        }
    }
    delta.digests.sort_unstable();
    if a2a_obs::metrics_enabled() {
        let reg = a2a_obs::global();
        reg.counter("campaign.evals").add(delta.evals);
        reg.counter("campaign.dedup.hits").add(delta.dedup_hits);
        reg.counter("campaign.migrations").add(delta.migrations);
    }
    delta
}

/// How a shard loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardExit {
    /// All rounds produced durable deltas.
    Done,
    /// A scheduled [`CAMPAIGN_ROUND_SITE`] fault fired — the caller
    /// should die like a real crash (`exit(137)`), leaving the store
    /// resumable.
    Killed,
}

/// Runs one shard's full campaign loop against the store: waits on the
/// round barriers, skips rounds whose delta is already durable
/// (resume), computes and publishes the rest.
///
/// # Errors
///
/// Store I/O failures, spec mismatches or a wedged barrier.
pub fn run_shard_process(
    store: &CampaignStore,
    spec: &CampaignSpec,
    shard: usize,
    threads: usize,
) -> Result<ShardExit, String> {
    store.init(spec)?;
    let mut bank = EvaluatorBank::new(spec, threads);
    let mut digests = DigestSet::new();
    let mut loaded_through = 0usize; // digest logs folded so far
    for round in 0..spec.rounds {
        let merged = if round == 0 {
            Archive::new()
        } else {
            wait_for_merged(store, round - 1)?.1
        };
        while loaded_through < round {
            for d in store.load_digests(loaded_through)? {
                digests.insert(d);
            }
            loaded_through += 1;
        }
        if fault::should_kill(CAMPAIGN_ROUND_SITE) {
            return Ok(ShardExit::Killed);
        }
        if store.load_delta(shard, round)?.is_some() {
            continue; // already durable — resume skips the round
        }
        let delta = run_shard_round(spec, shard, round, &merged, &digests, &mut bank);
        store.save_delta(spec, &delta)?;
    }
    Ok(ShardExit::Done)
}

fn wait_for_merged(store: &CampaignStore, round: usize) -> Result<(RoundStats, Archive), String> {
    let start = Instant::now();
    loop {
        if let Some(found) = store.load_merged(round)? {
            return Ok(found);
        }
        if start.elapsed() > BARRIER_TIMEOUT {
            return Err(format!(
                "round {round} barrier never committed within {BARRIER_TIMEOUT:?} \
                 (coordinator dead?)"
            ));
        }
        std::thread::sleep(BARRIER_POLL);
    }
}

/// Coordinates a campaign over an already-populated (or concurrently
/// populating) store: waits for every shard delta of each round,
/// performs the batched conflict-free merge, commits the barrier, and
/// finally seals `archive-final.json` plus the summary.
///
/// `tick` is called on every barrier poll with the round being waited
/// on — process-mode drivers use it to reap and respawn dead shard
/// children; inline drivers use it to compute the deltas themselves.
///
/// # Errors
///
/// Store I/O failures, corrupt artifacts, `tick` errors, or a barrier
/// that never fills.
pub fn coordinate<F>(
    store: &CampaignStore,
    spec: &CampaignSpec,
    mut tick: F,
) -> Result<CampaignOutcome, String>
where
    F: FnMut(usize) -> Result<(), String>,
{
    store.init(spec)?;
    let mut archive = Archive::new();
    let mut counters = CampaignCounters::default();
    let mut rounds = Vec::with_capacity(spec.rounds);
    for round in 0..spec.rounds {
        // Resume: a committed barrier carries the cumulative state.
        if let Some((stats, merged)) = store.load_merged(round)? {
            archive = merged;
            counters = stats.counters;
            rounds.push(stats);
            continue;
        }
        let deltas = wait_for_deltas(store, spec, round, &mut tick)?;
        let mut new_digests: BTreeSet<u64> = BTreeSet::new();
        for delta in &deltas {
            counters.evals += delta.evals;
            counters.dedup_hits += delta.dedup_hits;
            counters.migrations += delta.migrations;
            for d in &delta.digests {
                if !new_digests.insert(*d) {
                    counters.collisions += 1;
                }
            }
            archive.merge(delta);
        }
        let stats = RoundStats {
            round,
            counters,
            covered: archive.covered(),
            solved: archive.solved(),
        };
        store.save_merged(spec, &stats, &archive, &new_digests)?;
        rounds.push(stats);
    }
    let final_doc = archive.to_json(&spec.digest());
    store.write_doc(&store.final_path(), &final_doc)?;
    let summary = schema::seal(
        Json::object()
            .with("schema", CAMPAIGN_SUMMARY_SCHEMA)
            .with("digest", spec.digest())
            .with("rounds", spec.rounds as u64)
            .with("shards", spec.shards as u64)
            .with("niches", spec.niches.len() as u64)
            .with("evals", counters.evals)
            .with("dedup_hits", counters.dedup_hits)
            .with("migrations", counters.migrations)
            .with("collisions", counters.collisions)
            .with(
                "coverage_curve",
                Json::Arr(
                    rounds
                        .iter()
                        .map(|r| {
                            Json::object()
                                .with("round", r.round as u64)
                                .with("covered", r.covered as u64)
                                .with("solved", r.solved as u64)
                                .with("evals", r.counters.evals)
                        })
                        .collect(),
                ),
            ),
    );
    store.write_doc(&store.summary_path(), &summary)?;
    Ok(CampaignOutcome { archive, counters, rounds })
}

fn wait_for_deltas<F>(
    store: &CampaignStore,
    spec: &CampaignSpec,
    round: usize,
    tick: &mut F,
) -> Result<Vec<ArchiveDelta>, String>
where
    F: FnMut(usize) -> Result<(), String>,
{
    let start = Instant::now();
    loop {
        tick(round)?;
        let mut deltas = Vec::with_capacity(spec.shards);
        for shard in 0..spec.shards {
            match store.load_delta(shard, round)? {
                Some(d) => deltas.push(d),
                None => break,
            }
        }
        if deltas.len() == spec.shards {
            return Ok(deltas);
        }
        if start.elapsed() > BARRIER_TIMEOUT {
            return Err(format!(
                "round {round}: only {}/{} shard deltas appeared within {BARRIER_TIMEOUT:?}",
                deltas.len(),
                spec.shards
            ));
        }
        std::thread::sleep(BARRIER_POLL);
    }
}

/// Runs a whole campaign inside this process: shards take turns within
/// each round (sharing one evaluator bank), then the round is merged —
/// byte-identical artifacts to the multi-process mode, because shard
/// rounds are pure functions of durable state.
///
/// # Errors
///
/// Store I/O failures or corrupt artifacts.
pub fn run_inline(
    store: &CampaignStore,
    spec: &CampaignSpec,
    threads: usize,
) -> Result<CampaignOutcome, String> {
    store.init(spec)?;
    let mut bank = EvaluatorBank::new(spec, threads);
    coordinate(store, spec, |round| {
        let merged =
            if round == 0 { Archive::new() } else { store.load_merged(round - 1)?.map(|m| m.1).ok_or("previous barrier vanished")? };
        let digests = store.digest_set(round)?;
        for shard in 0..spec.shards {
            if store.load_delta(shard, round)?.is_none() {
                let delta = run_shard_round(spec, shard, round, &merged, &digests, &mut bank);
                store.save_delta(spec, &delta)?;
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            niches: vec![
                NicheKey { kind: GridKind::Square, m: 4, k: 2 },
                NicheKey { kind: GridKind::Triangulate, m: 4, k: 2 },
                NicheKey { kind: GridKind::Triangulate, m: 4, k: 3 },
            ],
            shards: 2,
            rounds: 2,
            batch: 3,
            configs: 2,
            t_max: 40,
            seed: 11,
        }
    }

    fn elite(digits: &str, fitness: f64) -> Elite {
        Elite {
            digits: digits.to_string(),
            report: FitnessReport { fitness, successes: 0, total: 2, mean_t_comm: None },
        }
    }

    #[test]
    fn niche_id_round_trips() {
        for n in tiny_spec().niches {
            assert_eq!(NicheKey::parse(&n.id()).unwrap(), n);
        }
        assert!(NicheKey::parse("x-m4-k2").is_err());
        assert!(NicheKey::parse("t-m4-k2-junk").is_err());
    }

    #[test]
    fn spec_round_trips_sealed() {
        let spec = tiny_spec();
        let doc = spec.to_json();
        assert!(schema::verify_checksum(&doc).is_ok());
        assert_eq!(CampaignSpec::from_json(&doc).unwrap(), spec);
    }

    #[test]
    fn elite_order_is_total_and_fold_is_commutative() {
        let a = elite("111", 5.0);
        let b = elite("222", 5.0);
        let c = elite("000", 3.0);
        assert!(a.better_than(&b) && !b.better_than(&a));
        assert!(c.better_than(&a));
        let mut one = Archive::new();
        let mut two = Archive::new();
        for e in [&a, &b, &c] {
            one.fold("n", (*e).clone());
        }
        for e in [&c, &b, &a] {
            two.fold("n", (*e).clone());
        }
        assert_eq!(one, two);
        assert_eq!(one.get("n").unwrap().digits, "000");
    }

    #[test]
    fn delta_round_trips_sealed() {
        let mut delta = ArchiveDelta { shard: 1, round: 3, ..Default::default() };
        delta.fold("t-m4-k2", elite("012", 42.5));
        delta.digests = vec![9, 4];
        delta.evals = 2;
        delta.dedup_hits = 1;
        delta.migrations = 1;
        let doc = delta.to_json("cafe");
        let back = ArchiveDelta::from_json(&doc).unwrap();
        // Serialisation sorts the digest list (canonical form).
        let mut want = delta.clone();
        want.digests.sort_unstable();
        assert_eq!(back, want);
    }

    #[test]
    fn archive_final_round_trips_sealed() {
        let mut archive = Archive::new();
        archive.fold("s-m4-k2", elite("001", 7.0));
        let doc = archive.to_json("deadbeef");
        assert_eq!(Archive::from_json(&doc).unwrap(), archive);
    }

    #[test]
    fn assignment_covers_every_niche_and_boosts_cold_ones() {
        let spec = tiny_spec();
        let empty = Archive::new();
        let deal = assign_round(&spec, 0, &empty);
        assert_eq!(deal.len(), spec.shards);
        let all: Vec<_> = deal.iter().flatten().collect();
        assert_eq!(all.len(), spec.niches.len(), "every niche dealt exactly once");
        assert!(all.iter().all(|(_, b)| *b == spec.batch * 2), "cold niches get 2x budget");
        // Once a niche is covered its budget drops to the base batch.
        let mut partial = Archive::new();
        partial.fold(&spec.niches[0].id(), elite("0", 1.0));
        let deal = assign_round(&spec, 1, &partial);
        let covered: Vec<_> = deal
            .iter()
            .flatten()
            .filter(|(n, _)| *n == spec.niches[0])
            .collect();
        assert_eq!(covered[0].1, spec.batch);
    }

    #[test]
    fn assignment_rotates_across_rounds() {
        let spec = tiny_spec();
        let empty = Archive::new();
        let r0 = assign_round(&spec, 0, &empty);
        let r1 = assign_round(&spec, 1, &empty);
        assert_ne!(
            r0.iter().map(|s| s.iter().map(|(n, _)| n.id()).collect::<Vec<_>>()).collect::<Vec<_>>(),
            r1.iter().map(|s| s.iter().map(|(n, _)| n.id()).collect::<Vec<_>>()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn shard_round_is_a_pure_function_of_its_inputs() {
        let spec = tiny_spec();
        let empty = Archive::new();
        let digests = DigestSet::new();
        let mut bank_a = EvaluatorBank::new(&spec, 1);
        let mut bank_b = EvaluatorBank::new(&spec, 1);
        let a = run_shard_round(&spec, 0, 0, &empty, &digests, &mut bank_a);
        let b = run_shard_round(&spec, 0, 0, &empty, &digests, &mut bank_b);
        assert_eq!(a, b);
        assert_eq!(format!("{}", a.to_json("d")), format!("{}", b.to_json("d")));
        assert!(a.evals > 0);
    }

    #[test]
    fn dedup_skips_already_known_digests() {
        let spec = tiny_spec();
        let empty = Archive::new();
        let mut bank = EvaluatorBank::new(&spec, 1);
        let first = run_shard_round(&spec, 0, 0, &empty, &DigestSet::new(), &mut bank);
        let mut known = DigestSet::new();
        for d in &first.digests {
            known.insert(*d);
        }
        let second = run_shard_round(&spec, 0, 0, &empty, &known, &mut bank);
        assert_eq!(second.evals, 0, "every candidate was already evaluated");
        assert_eq!(second.dedup_hits, first.evals + first.dedup_hits);
    }

    #[test]
    fn inline_campaign_runs_merges_and_seals() {
        let dir = std::env::temp_dir().join(format!("a2a_campaign_inline_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CampaignStore::new(&dir);
        let spec = tiny_spec();
        let outcome = run_inline(&store, &spec, 1).unwrap();
        assert_eq!(outcome.rounds.len(), spec.rounds);
        assert!(outcome.counters.evals > 0);
        assert!(outcome.counters.dedup_hits > 0, "incumbent re-probes hit the dedup set");
        assert!(outcome.counters.migrations > 0, "same-kind elites migrate");
        assert_eq!(outcome.archive.covered(), spec.niches.len());
        // Final artifact parses back to the merged archive.
        let text = std::fs::read_to_string(store.final_path()).unwrap();
        let doc = a2a_obs::json::parse(text.trim()).unwrap();
        assert_eq!(Archive::from_json(&doc).unwrap(), outcome.archive);
        // Coverage curve is monotone.
        for w in outcome.rounds.windows(2) {
            assert!(w[1].covered >= w[0].covered);
            assert!(w[1].counters.evals >= w[0].counters.evals);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_campaign_is_byte_identical_to_control() {
        let base = std::env::temp_dir().join(format!("a2a_campaign_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let spec = tiny_spec();
        // Control: uninterrupted.
        let control = CampaignStore::new(base.join("control"));
        run_inline(&control, &spec, 1).unwrap();
        // Interrupted: run round 0 only, drop a shard-1 delta of round 1
        // on the floor (as a mid-round kill would), then resume.
        let broken = CampaignStore::new(base.join("broken"));
        broken.init(&spec).unwrap();
        let mut bank = EvaluatorBank::new(&spec, 1);
        let empty = Archive::new();
        let d0 = run_shard_round(&spec, 0, 0, &empty, &DigestSet::new(), &mut bank);
        broken.save_delta(&spec, &d0).unwrap();
        // Shard 1's round-0 delta never lands — the "kill". Resume:
        run_inline(&broken, &spec, 1).unwrap();
        let a = std::fs::read(control.final_path()).unwrap();
        let b = std::fs::read(broken.final_path()).unwrap();
        assert_eq!(a, b, "resumed archive must be byte-identical to the control");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn store_refuses_a_different_spec() {
        let dir = std::env::temp_dir().join(format!("a2a_campaign_spec_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CampaignStore::new(&dir);
        let spec = tiny_spec();
        store.init(&spec).unwrap();
        let other = CampaignSpec { seed: 99, ..spec };
        let err = store.init(&other).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Multi-job checkpoint layout: a [`JobStore`] roots many independent
//! jobs under one directory, each with its own manifest, rolling
//! checkpoint, and (once finished) result document.
//!
//! ```text
//! <root>/jobs/<id>/manifest.json     sealed a2a-run/job-manifest/v1
//! <root>/jobs/<id>/checkpoint.json   rolling a2a-run/checkpoint/v1
//! <root>/jobs/<id>/result.json       sealed result (opaque to this crate)
//! ```
//!
//! The layout is what makes `a2a-serve` crash-only: every piece of job
//! state a restart needs lives in exactly one job subdirectory, every
//! file is written atomically ([`a2a_obs::atomic_write`]), and two jobs
//! can never share a file path because job ids are validated to be
//! plain path components ([`validate_job_id`]). A killed server
//! therefore re-lists `jobs/`, reloads each manifest, and resumes each
//! non-terminal job from its own checkpoint with nothing shared to
//! corrupt — the property the concurrent-writer tests in
//! `tests/jobs.rs` pin down.
//!
//! Manifest and result writes probe the `serve.checkpoint` fault site,
//! so the chaos suite can inject IO failures at exactly the moments a
//! job's durable state transitions.

use crate::store::CheckpointStore;
use a2a_obs::fault;
use a2a_obs::json::{self, Json};
use a2a_obs::schema;
use std::path::{Path, PathBuf};

/// Schema identifier of the sealed job manifest document.
pub const JOB_MANIFEST_SCHEMA: &str = "a2a-run/job-manifest/v1";

/// File name of a job's manifest inside its subdirectory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// File name of a job's sealed result inside its subdirectory.
pub const RESULT_FILE: &str = "result.json";

/// Longest accepted job id (path-component safety, not a protocol
/// limit).
pub const MAX_JOB_ID_LEN: usize = 64;

/// Where a job is in its lifecycle. `Completed`, `Failed` and
/// `TimedOut` are terminal: a restarting server re-enqueues only
/// `Queued`/`Running` jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for an executor.
    Queued,
    /// An executor is (or was, at crash time) running it.
    Running,
    /// Finished; `result.json` holds the sealed outcome.
    Completed,
    /// Exhausted its retry budget or hit a non-retryable error.
    Failed,
    /// Stopped by its own deadline.
    TimedOut,
}

impl JobStatus {
    /// Canonical wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Completed => "completed",
            Self::Failed => "failed",
            Self::TimedOut => "timed_out",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Names the unknown status.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "queued" => Ok(Self::Queued),
            "running" => Ok(Self::Running),
            "completed" => Ok(Self::Completed),
            "failed" => Ok(Self::Failed),
            "timed_out" => Ok(Self::TimedOut),
            other => Err(format!("unknown job status `{other}`")),
        }
    }

    /// Whether the job will never run again.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Completed | Self::Failed | Self::TimedOut)
    }
}

/// The durable per-job record: everything a restarted server needs to
/// re-enqueue and resume the job. The submitted spec rides along
/// verbatim (opaque [`Json`]) so the executor can rebuild the exact
/// evaluator; scheduling state (priority, admission sequence number)
/// is preserved so recovery respects the original ordering.
#[derive(Debug, Clone)]
pub struct JobManifest {
    /// Validated job id ([`validate_job_id`]).
    pub id: String,
    /// Owning tenant (quota accounting).
    pub tenant: String,
    /// Scheduling priority (higher first).
    pub priority: u32,
    /// Admission sequence number (FIFO tie-break within a priority).
    pub seq: u64,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Execution attempts so far (retries increment this).
    pub attempts: u32,
    /// The submitted job spec, verbatim.
    pub spec: Json,
    /// Terminal error message, if any.
    pub error: Option<String>,
}

impl JobManifest {
    /// Serialises the manifest as a sealed JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object()
            .with("schema", JOB_MANIFEST_SCHEMA)
            .with("id", self.id.as_str())
            .with("tenant", self.tenant.as_str())
            .with("priority", u64::from(self.priority))
            .with("seq", self.seq)
            .with("status", self.status.as_str())
            .with("attempts", u64::from(self.attempts))
            .with("spec", self.spec.clone());
        if let Some(e) = &self.error {
            doc.set("error", e.as_str());
        }
        schema::seal(doc)
    }

    /// Parses and validates a manifest document (checksum first).
    ///
    /// # Errors
    ///
    /// A message naming the first failed gate.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        schema::verify_checksum(doc)?;
        let schema_name = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("manifest missing string `schema`")?;
        if schema_name != JOB_MANIFEST_SCHEMA {
            return Err(format!("schema `{schema_name}` is not `{JOB_MANIFEST_SCHEMA}`"));
        }
        let str_member = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing string `{key}`"))
        };
        let num_member = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("manifest missing numeric `{key}`"))
        };
        let id = str_member("id")?;
        validate_job_id(&id)?;
        Ok(Self {
            id,
            tenant: str_member("tenant")?,
            priority: u32::try_from(num_member("priority")?).map_err(|e| e.to_string())?,
            seq: num_member("seq")?,
            status: JobStatus::parse(&str_member("status")?)?,
            attempts: u32::try_from(num_member("attempts")?).map_err(|e| e.to_string())?,
            spec: doc.get("spec").cloned().ok_or("manifest missing `spec`")?,
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// Rejects any id that is not a plain path component: 1 to
/// [`MAX_JOB_ID_LEN`] characters from `[A-Za-z0-9._-]`, not starting
/// with a dot. Everything the store does with an id goes through this
/// gate, so `../`, separators, and hidden-file tricks can never escape
/// the `jobs/` directory.
///
/// # Errors
///
/// A message naming the violated rule.
pub fn validate_job_id(id: &str) -> Result<(), String> {
    if id.is_empty() {
        return Err("job id must not be empty".to_string());
    }
    if id.len() > MAX_JOB_ID_LEN {
        return Err(format!("job id longer than {MAX_JOB_ID_LEN} characters"));
    }
    if id.starts_with('.') {
        return Err("job id must not start with `.`".to_string());
    }
    if let Some(bad) =
        id.chars().find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!("job id contains forbidden character `{bad}`"));
    }
    Ok(())
}

/// A directory tree of independent jobs (see the module docs for the
/// layout). Cloning shares nothing but the root path; all coordination
/// happens through the per-job files themselves.
#[derive(Debug, Clone)]
pub struct JobStore {
    root: PathBuf,
}

impl JobStore {
    /// A store rooted at `root` (created lazily on first save).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The subdirectory owning every file of job `id`.
    ///
    /// # Errors
    ///
    /// Invalid job id ([`validate_job_id`]).
    pub fn job_dir(&self, id: &str) -> Result<PathBuf, String> {
        validate_job_id(id)?;
        Ok(self.root.join("jobs").join(id))
    }

    /// The rolling [`CheckpointStore`] for job `id` (its evolution
    /// checkpoints live next to its manifest).
    ///
    /// # Errors
    ///
    /// Invalid job id.
    pub fn checkpoints(&self, id: &str) -> Result<CheckpointStore, String> {
        Ok(CheckpointStore::new(self.job_dir(id)?))
    }

    /// Every job id present under `jobs/`, sorted. An absent root is an
    /// empty store, not an error (nothing was ever saved).
    #[must_use]
    pub fn list(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(self.root.join("jobs")) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .filter_map(Result::ok)
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|id| validate_job_id(id).is_ok())
            .collect();
        ids.sort();
        ids
    }

    /// One page of job ids: the first `limit` ids strictly after the
    /// `after` cursor (lexicographic, matching [`JobStore::list`]'s
    /// order). `after: None` starts at the beginning; a returned page
    /// shorter than `limit` means the listing is exhausted, otherwise
    /// the last id of the page is the next cursor.
    #[must_use]
    pub fn list_page(&self, after: Option<&str>, limit: usize) -> Vec<String> {
        self.list()
            .into_iter()
            .filter(|id| after.is_none_or(|cursor| id.as_str() > cursor))
            .take(limit)
            .collect()
    }

    /// Retention sweep: deletes the job directories of terminal jobs
    /// (completed / failed / timed-out) beyond the `keep` most recently
    /// admitted ones, ordered by manifest `seq`. Non-terminal jobs and
    /// jobs whose manifest is missing or unreadable are never touched —
    /// expiry must not destroy evidence of corruption or in-flight
    /// work. Returns the pruned ids, sorted.
    ///
    /// # Errors
    ///
    /// The first directory removal that fails (already-pruned jobs stay
    /// pruned; the sweep is safe to re-run).
    pub fn prune_terminal(&self, keep: usize) -> Result<Vec<String>, String> {
        let mut terminal: Vec<(u64, String)> = self
            .list()
            .into_iter()
            .filter_map(|id| match self.load_manifest(&id) {
                Ok(Some(m)) if m.status.is_terminal() => Some((m.seq, id)),
                _ => None,
            })
            .collect();
        // Newest admissions first; everything past `keep` expires.
        terminal.sort_by(|a, b| b.cmp(a));
        let mut pruned: Vec<String> = Vec::new();
        for (_, id) in terminal.into_iter().skip(keep) {
            let dir = self.job_dir(&id)?;
            std::fs::remove_dir_all(&dir)
                .map_err(|e| format!("cannot prune {}: {e}", dir.display()))?;
            pruned.push(id);
        }
        pruned.sort();
        Ok(pruned)
    }

    /// Persists `manifest` atomically (probing the `serve.checkpoint`
    /// fault site first).
    ///
    /// # Errors
    ///
    /// Invalid job id (as [`std::io::ErrorKind::InvalidInput`]) or any
    /// IO failure; the previous manifest survives either.
    pub fn save_manifest(&self, manifest: &JobManifest) -> std::io::Result<()> {
        fault::io_error("serve.checkpoint")?;
        let dir = self
            .job_dir(&manifest.id)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        std::fs::create_dir_all(&dir)?;
        let mut text = manifest.to_json().to_string();
        text.push('\n');
        a2a_obs::atomic_write(dir.join(MANIFEST_FILE), text.as_bytes())
    }

    /// Loads and validates job `id`'s manifest. `Ok(None)` when the job
    /// has none yet.
    ///
    /// # Errors
    ///
    /// Invalid id, unreadable file, bad JSON, checksum mismatch, or any
    /// schema violation — corruption is an error, never absence.
    pub fn load_manifest(&self, id: &str) -> Result<Option<JobManifest>, String> {
        let path = self.job_dir(id)?.join(MANIFEST_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = json::parse(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
        JobManifest::from_json(&doc).map(Some).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Persists a job's sealed result document atomically (probing the
    /// `serve.checkpoint` fault site first). The document must already
    /// be sealed — the store verifies rather than re-seals, so a caller
    /// bug cannot be laundered into a valid-looking artifact.
    ///
    /// # Errors
    ///
    /// An unsealed document or invalid id (as
    /// [`std::io::ErrorKind::InvalidInput`]), or any IO failure.
    pub fn save_result(&self, id: &str, result: &Json) -> std::io::Result<()> {
        fault::io_error("serve.checkpoint")?;
        let invalid = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, e);
        schema::verify_checksum(result).map_err(invalid)?;
        let dir = self.job_dir(id).map_err(invalid)?;
        std::fs::create_dir_all(&dir)?;
        let mut text = result.to_string();
        text.push('\n');
        a2a_obs::atomic_write(dir.join(RESULT_FILE), text.as_bytes())
    }

    /// Loads and checksum-verifies job `id`'s result. `Ok(None)` when
    /// no result was published yet.
    ///
    /// # Errors
    ///
    /// Invalid id, unreadable file, bad JSON, or checksum mismatch.
    pub fn load_result(&self, id: &str) -> Result<Option<Json>, String> {
        let path = self.job_dir(id)?.join(RESULT_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = json::parse(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
        schema::verify_checksum(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Some(doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(id: &str) -> JobManifest {
        JobManifest {
            id: id.to_string(),
            tenant: "acme".to_string(),
            priority: 3,
            seq: 17,
            status: JobStatus::Queued,
            attempts: 0,
            spec: Json::object().with("generations", 4u64).with("seed", 42u64),
            error: None,
        }
    }

    #[test]
    fn manifest_round_trips_through_sealed_json() {
        let m = manifest("job-1");
        let back = JobManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.id, "job-1");
        assert_eq!(back.tenant, "acme");
        assert_eq!(back.priority, 3);
        assert_eq!(back.seq, 17);
        assert_eq!(back.status, JobStatus::Queued);
        assert_eq!(back.attempts, 0);
        assert_eq!(back.spec.get("seed").and_then(Json::as_f64), Some(42.0));
        assert!(back.error.is_none());

        let mut failed = manifest("job-1");
        failed.status = JobStatus::Failed;
        failed.error = Some("boom".to_string());
        let back = JobManifest::from_json(&failed.to_json()).unwrap();
        assert_eq!(back.status, JobStatus::Failed);
        assert_eq!(back.error.as_deref(), Some("boom"));
    }

    #[test]
    fn tampered_manifest_fails_checksum() {
        let mut doc = manifest("job-1").to_json();
        doc.set("attempts", 99u64);
        assert!(JobManifest::from_json(&doc).is_err());
    }

    #[test]
    fn job_ids_are_confined_to_path_components() {
        for ok in ["job-1", "a", "X.y_z-9", &"n".repeat(MAX_JOB_ID_LEN)] {
            validate_job_id(ok).unwrap();
        }
        for bad in ["", "..", ".hidden", "a/b", "a\\b", "a b", "tab\tid", "é"] {
            assert!(validate_job_id(bad).is_err(), "{bad:?} must be rejected");
        }
        assert!(validate_job_id(&"n".repeat(MAX_JOB_ID_LEN + 1)).is_err());
        let store = JobStore::new("/tmp/nowhere");
        assert!(store.job_dir("../escape").is_err());
        assert!(store.checkpoints("x/y").is_err());
    }

    #[test]
    fn statuses_round_trip_and_classify() {
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::TimedOut,
        ] {
            assert_eq!(JobStatus::parse(s.as_str()).unwrap(), s);
        }
        assert!(JobStatus::parse("exploded").is_err());
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Completed.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert!(JobStatus::TimedOut.is_terminal());
    }

    #[test]
    fn store_saves_lists_and_reloads_jobs() {
        let root = std::env::temp_dir().join("a2a_run_jobstore_test");
        let _ = std::fs::remove_dir_all(&root);
        let store = JobStore::new(&root);
        assert!(store.list().is_empty(), "absent root lists empty");
        assert!(store.load_manifest("job-b").unwrap().is_none());

        store.save_manifest(&manifest("job-b")).unwrap();
        store.save_manifest(&manifest("job-a")).unwrap();
        assert_eq!(store.list(), vec!["job-a".to_string(), "job-b".to_string()]);

        let mut m = store.load_manifest("job-a").unwrap().unwrap();
        m.status = JobStatus::Running;
        m.attempts = 1;
        store.save_manifest(&m).unwrap();
        let back = store.load_manifest("job-a").unwrap().unwrap();
        assert_eq!(back.status, JobStatus::Running);
        assert_eq!(back.attempts, 1);
        // job-b's manifest is untouched by job-a's updates.
        assert_eq!(store.load_manifest("job-b").unwrap().unwrap().status, JobStatus::Queued);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn pagination_walks_the_listing_in_stable_pages() {
        let root = std::env::temp_dir().join("a2a_run_jobstore_page_test");
        let _ = std::fs::remove_dir_all(&root);
        let store = JobStore::new(&root);
        assert!(store.list_page(None, 10).is_empty(), "absent root pages empty");
        for i in 0..5 {
            store.save_manifest(&manifest(&format!("job-{i}"))).unwrap();
        }
        assert_eq!(store.list_page(None, 2), vec!["job-0", "job-1"]);
        assert_eq!(store.list_page(Some("job-1"), 2), vec!["job-2", "job-3"]);
        // Short page signals exhaustion; a cursor past the end is empty.
        assert_eq!(store.list_page(Some("job-3"), 2), vec!["job-4"]);
        assert!(store.list_page(Some("job-4"), 2).is_empty());
        // Walking page-by-page reconstructs the full listing exactly.
        let mut walked = Vec::new();
        let mut cursor: Option<String> = None;
        loop {
            let page = store.list_page(cursor.as_deref(), 2);
            let done = page.len() < 2;
            cursor = page.last().cloned();
            walked.extend(page);
            if done {
                break;
            }
        }
        assert_eq!(walked, store.list());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn retention_prunes_oldest_terminal_jobs_only() {
        let root = std::env::temp_dir().join("a2a_run_jobstore_prune_test");
        let _ = std::fs::remove_dir_all(&root);
        let store = JobStore::new(&root);
        // seq encodes admission age; statuses mix terminal and live.
        for (id, seq, status) in [
            ("done-old", 1, JobStatus::Completed),
            ("failed-old", 2, JobStatus::Failed),
            ("live-old", 3, JobStatus::Running),
            ("done-mid", 4, JobStatus::TimedOut),
            ("queued", 5, JobStatus::Queued),
            ("done-new", 6, JobStatus::Completed),
        ] {
            let mut m = manifest(id);
            m.seq = seq;
            m.status = status;
            store.save_manifest(&m).unwrap();
        }
        // Keep the 2 newest terminal jobs: done-new (6) and done-mid (4).
        let pruned = store.prune_terminal(2).unwrap();
        assert_eq!(pruned, vec!["done-old", "failed-old"]);
        assert_eq!(
            store.list(),
            vec!["done-mid", "done-new", "live-old", "queued"],
            "non-terminal jobs survive regardless of age"
        );
        // Re-running the sweep is a no-op; keep=0 expires every terminal job.
        assert!(store.prune_terminal(2).unwrap().is_empty());
        assert_eq!(store.prune_terminal(0).unwrap(), vec!["done-mid", "done-new"]);
        assert_eq!(store.list(), vec!["live-old", "queued"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn results_must_be_sealed_and_survive_round_trip() {
        let root = std::env::temp_dir().join("a2a_run_jobstore_result_test");
        let _ = std::fs::remove_dir_all(&root);
        let store = JobStore::new(&root);
        assert!(store.load_result("job-r").unwrap().is_none());

        let unsealed = Json::object().with("best", 123u64);
        let err = store.save_result("job-r", &unsealed).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

        let sealed = schema::seal(Json::object().with("best", 123u64));
        store.save_result("job-r", &sealed).unwrap();
        let back = store.load_result("job-r").unwrap().unwrap();
        assert_eq!(back.get("best").and_then(Json::as_f64), Some(123.0));

        // A torn/edited result is an error, never silently absent.
        std::fs::write(store.job_dir("job-r").unwrap().join(RESULT_FILE), b"{\"best\": 5}")
            .unwrap();
        assert!(store.load_result("job-r").is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}

//! Concurrent-writer isolation for the multi-job store layout: two
//! jobs sharing a [`JobStore`] root (and therefore two
//! [`CheckpointStore`]s under it) must never cross-corrupt, whatever
//! the interleaving of saves and loads. This is the disk-level
//! property `a2a-serve` leans on when several executor threads
//! checkpoint different jobs into one store.

use a2a_fsm::{FsmSpec, Genome};
use a2a_ga::{FitnessReport, Individual, RunState};
use a2a_grid::GridKind;
use a2a_obs::json::Json;
use a2a_run::{Checkpoint, Counters, JobManifest, JobStatus, JobStore, Payload};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A checkpoint whose content is a pure function of `(tag, round)` —
/// comparing digests and generation counters is enough to prove a load
/// saw one specific save, untouched by the other job's writes.
fn stamped_checkpoint(tag: u64, round: u64) -> Checkpoint {
    let spec = FsmSpec::paper(GridKind::Square);
    let mut rng = SmallRng::seed_from_u64(tag ^ (round << 16));
    Checkpoint {
        digest: format!("{tag:08x}{round:08x}"),
        spec,
        counters: Counters { cache_entries: tag, cache_hits: round },
        payload: Payload::Single(RunState {
            rng_state: [tag | 1, round | 1, 3, 4],
            pool: vec![Individual {
                genome: Genome::random(spec, &mut rng),
                report: FitnessReport {
                    fitness: (tag * 1000 + round) as f64,
                    successes: 1,
                    total: 2,
                    mean_t_comm: None,
                },
            }],
            history: Vec::new(),
            next_generation: round as usize,
        }),
    }
}

fn manifest(id: &str, attempts: u32) -> JobManifest {
    JobManifest {
        id: id.to_string(),
        tenant: format!("tenant-{id}"),
        priority: 1,
        seq: 0,
        status: JobStatus::Running,
        attempts,
        spec: Json::object().with("job", id),
        error: None,
    }
}

/// Two real threads hammer their own job subdirectories through one
/// shared root — every load must return that job's own latest complete
/// state, proving per-PID temp names and per-job directories keep the
/// writers fully isolated.
#[test]
fn concurrent_jobs_never_cross_corrupt() {
    let root = std::env::temp_dir().join("a2a_run_jobs_concurrent_test");
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(JobStore::new(&root));

    let writer = |job: &'static str, tag: u64| {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            let ckpts = store.checkpoints(job).unwrap();
            for round in 0..60u64 {
                store
                    .save_manifest(&manifest(job, u32::try_from(round).unwrap()))
                    .unwrap();
                ckpts.save(&stamped_checkpoint(tag, round)).unwrap();
                // Read-back mid-interleaving: whatever the other thread
                // is doing, this job's files hold this job's data.
                let m = store.load_manifest(job).unwrap().unwrap();
                assert_eq!(m.id, job);
                assert_eq!(m.tenant, format!("tenant-{job}"));
                assert_eq!(u64::from(m.attempts), round);
                let c = ckpts.load().unwrap().unwrap();
                assert_eq!(c.digest, format!("{tag:08x}{round:08x}"));
                assert_eq!(c.counters.cache_entries, tag);
                assert_eq!(c.counters.cache_hits, round);
            }
        })
    };
    let a = writer("job-a", 0xAAAA);
    let b = writer("job-b", 0xBBBB);
    a.join().unwrap();
    b.join().unwrap();

    // Final state: each job's files hold its own round-59 stamp.
    for (job, tag) in [("job-a", 0xAAAAu64), ("job-b", 0xBBBB)] {
        let c = store.checkpoints(job).unwrap().load().unwrap().unwrap();
        assert_eq!(c.digest, format!("{tag:08x}{:08x}", 59));
        assert_eq!(store.load_manifest(job).unwrap().unwrap().attempts, 59);
    }
    assert_eq!(store.list(), vec!["job-a".to_string(), "job-b".to_string()]);
    let _ = std::fs::remove_dir_all(&root);
}

/// One interleaving step: which job acts, and whether it saves or
/// loads.
#[derive(Debug, Clone, Copy)]
enum Op {
    Save(usize),
    Load(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..2usize, any::<bool>()).prop_map(|(job, save)| if save { Op::Save(job) } else { Op::Load(job) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random serialised interleavings of saves and loads across two
    /// job subdirectories: every load observes exactly the acting job's
    /// most recent save (or absence before the first), regardless of
    /// what the other job did in between.
    #[test]
    fn interleaved_saves_and_loads_stay_isolated(ops in proptest::collection::vec(op_strategy(), 1..40), case in 0u64..u64::MAX) {
        let root = std::env::temp_dir().join(format!("a2a_run_jobs_prop_{case:x}"));
        let _ = std::fs::remove_dir_all(&root);
        let store = JobStore::new(&root);
        let jobs = ["job-x", "job-y"];
        let tags = [0x1111u64, 0x2222];
        let mut last_round: [Option<u64>; 2] = [None, None];
        let mut rounds = [0u64, 0];
        for op in ops {
            match op {
                Op::Save(j) => {
                    let round = rounds[j];
                    rounds[j] += 1;
                    store.save_manifest(&manifest(jobs[j], u32::try_from(round).unwrap())).unwrap();
                    store.checkpoints(jobs[j]).unwrap().save(&stamped_checkpoint(tags[j], round)).unwrap();
                    last_round[j] = Some(round);
                }
                Op::Load(j) => {
                    let ckpt = store.checkpoints(jobs[j]).unwrap().load().unwrap();
                    let man = store.load_manifest(jobs[j]).unwrap();
                    match last_round[j] {
                        None => {
                            prop_assert!(ckpt.is_none(), "job {j} loaded a checkpoint it never saved");
                            prop_assert!(man.is_none());
                        }
                        Some(round) => {
                            let ckpt = ckpt.expect("saved checkpoint must load");
                            prop_assert_eq!(&ckpt.digest, &format!("{:08x}{:08x}", tags[j], round));
                            prop_assert_eq!(ckpt.counters.cache_hits, round);
                            let man = man.expect("saved manifest must load");
                            prop_assert_eq!(u64::from(man.attempts), round);
                            prop_assert_eq!(man.id, jobs[j]);
                        }
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

//! The tentpole guarantee of the crash-safe harness: a run that is
//! killed at a generation boundary and later resumed from its rolling
//! checkpoint produces a **bit-identical** `EvolutionOutcome` (history
//! and final pool) to the same run executed uninterrupted — on both
//! grid families.
//!
//! The kill is injected through the real `run.generation` fault site
//! (armed mid-run from the generation observer), and the resumed run
//! uses a *fresh* evaluator so the test also witnesses PR 3's
//! determinism guarantee: a cold fitness cache changes timing, never
//! results.

use a2a_fsm::FsmSpec;
use a2a_ga::{Evaluator, GaConfig};
use a2a_grid::GridKind;
use a2a_obs::fault::{self, FaultPlan};
use a2a_run::{run_evolution, CheckpointStore, RunOptions};
use a2a_sim::{paper_config_set, WorldConfig};
use std::sync::Mutex;

/// Fault arming is process-global; tests that use it take this lock.
static FAULT_GUARD: Mutex<()> = Mutex::new(());

fn evaluator(kind: GridKind) -> Evaluator {
    let cfg = WorldConfig::paper(kind, 8);
    let configs = paper_config_set(cfg.lattice, kind, 4, 6, 17).unwrap();
    Evaluator::new(cfg, configs).with_threads(2).with_t_max(100)
}

fn assert_interrupt_resume_equivalence(kind: GridKind, kill_at_generation: usize) {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::disarm();
    let spec = FsmSpec::paper(kind);
    let config = GaConfig::paper(9, 4242);

    // Reference: the same experiment, uninterrupted, no persistence.
    let full = run_evolution(
        spec,
        &evaluator(kind),
        config,
        Vec::new(),
        &RunOptions::default(),
        |_| (),
    )
    .unwrap();
    assert!(full.completed && full.resumed_from.is_none());
    assert_eq!(full.outcome.history.len(), config.generations + 1);

    // Interrupted: arm a certain kill once the target generation's
    // boundary is reached; the harness checkpoints the boundary first,
    // then the probe fires — exactly a crash after a durable save.
    let dir = std::env::temp_dir().join(format!("a2a_run_equiv_{kind:?}"));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = RunOptions::persisting(CheckpointStore::new(&dir));
    let killed = run_evolution(spec, &evaluator(kind), config, Vec::new(), &opts, |stats| {
        if stats.generation == kill_at_generation {
            fault::arm(FaultPlan::seeded(1).with("run.generation", 1.0, 1));
        }
    })
    .unwrap();
    fault::disarm();
    assert!(killed.killed && !killed.completed, "the armed kill must fire");
    assert_eq!(
        killed.outcome.history.len(),
        kill_at_generation + 1,
        "run died right after the target generation"
    );

    // Resumed: fresh evaluator (cold cache), auto-restore from the
    // checkpoint, run to the end of the budget.
    let resumed = run_evolution(
        spec,
        &evaluator(kind),
        config,
        Vec::new(),
        &opts.clone().resuming(true),
        |_| (),
    )
    .unwrap();
    assert!(resumed.completed);
    assert_eq!(
        resumed.resumed_from,
        Some(kill_at_generation + 1),
        "resume continues at the first un-run generation"
    );
    assert_eq!(
        resumed.outcome.history, full.outcome.history,
        "resumed history must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        resumed.outcome.pool, full.outcome.pool,
        "resumed final pool must be bit-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn square_grid_interrupt_resume_is_bit_identical() {
    assert_interrupt_resume_equivalence(GridKind::Square, 4);
}

#[test]
fn triangulate_grid_interrupt_resume_is_bit_identical() {
    assert_interrupt_resume_equivalence(GridKind::Triangulate, 3);
}

#[test]
fn resume_refuses_a_different_experiment() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::disarm();
    let kind = GridKind::Square;
    let spec = FsmSpec::paper(kind);
    let dir = std::env::temp_dir().join("a2a_run_equiv_digest_mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = RunOptions::persisting(CheckpointStore::new(&dir));
    let first =
        run_evolution(spec, &evaluator(kind), GaConfig::paper(2, 1), Vec::new(), &opts, |_| ())
            .unwrap();
    assert!(first.checkpoints_written > 0);

    // Same directory, different seed → different context digest.
    let err = run_evolution(
        spec,
        &evaluator(kind),
        GaConfig::paper(2, 2),
        Vec::new(),
        &opts.clone().resuming(true),
        |_| (),
    )
    .unwrap_err();
    assert!(err.contains("digest"), "got: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cadence_skips_intermediate_boundaries_but_keeps_the_last() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::disarm();
    let kind = GridKind::Square;
    let spec = FsmSpec::paper(kind);
    let dir = std::env::temp_dir().join("a2a_run_equiv_cadence");
    let _ = std::fs::remove_dir_all(&dir);
    let config = GaConfig::paper(5, 3);
    let opts = RunOptions::persisting(CheckpointStore::new(&dir)).every(3);
    let report =
        run_evolution(spec, &evaluator(kind), config, Vec::new(), &opts, |_| ()).unwrap();
    // Boundaries 0..=5; due at 0, 3 and the final boundary 5.
    assert_eq!(report.checkpoints_written, 3);
    let ckpt = CheckpointStore::new(&dir).load().unwrap().expect("final checkpoint");
    let a2a_run::Payload::Single(state) = ckpt.payload else { panic!("wrong mode") };
    assert_eq!(state.next_generation, config.generations + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Chaos suite: seeded, deterministic fault schedules driving the three
//! fault sites end to end.
//!
//! * `ga.pool.item` — worker panics inside the evaluation pool: the
//!   watchdog retries the genome and the run's results are unaffected;
//! * `run.checkpoint.write` — IO errors while persisting: the run
//!   continues, errors are counted, the previous checkpoint survives;
//! * `run.generation` — simulated kills between generations: a
//!   kill/resume crash loop converges to the exact uninterrupted result.
//!
//! Every schedule is a pure function of the plan seed, so failures
//! reproduce exactly. Fault arming is process-global; the suite
//! serialises through one mutex.

use a2a_fsm::FsmSpec;
use a2a_ga::{Evaluator, GaConfig, IslandConfig};
use a2a_grid::GridKind;
use a2a_obs::fault::{self, FaultPlan};
use a2a_run::{
    run_evolution, run_islands_checkpointed, CheckpointStore, Payload, RunOptions,
};
use a2a_sim::{paper_config_set, WorldConfig};
use std::sync::Mutex;

static FAULT_GUARD: Mutex<()> = Mutex::new(());

fn evaluator(kind: GridKind) -> Evaluator {
    let cfg = WorldConfig::paper(kind, 8);
    let configs = paper_config_set(cfg.lattice, kind, 4, 6, 23).unwrap();
    Evaluator::new(cfg, configs).with_threads(3).with_t_max(100)
}

#[test]
fn worker_panics_do_not_change_results() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::disarm();
    let kind = GridKind::Triangulate;
    let spec = FsmSpec::paper(kind);
    let config = GaConfig::paper(4, 77);

    let clean =
        run_evolution(spec, &evaluator(kind), config, Vec::new(), &RunOptions::default(), |_| ())
            .unwrap();

    // A low-rate panic schedule: a handful of evaluation items blow up,
    // each is retried inline by the watchdog.
    fault::arm(FaultPlan::seeded(99).with("ga.pool.item", 0.02, 5));
    let faulty =
        run_evolution(spec, &evaluator(kind), config, Vec::new(), &RunOptions::default(), |_| ())
            .unwrap();
    let panics = fault::fired("ga.pool.item");
    fault::disarm();

    assert!(panics > 0, "the schedule must actually inject panics");
    assert!(faulty.completed);
    assert_eq!(
        faulty.outcome.history, clean.outcome.history,
        "retried evaluations must not change the evolution trajectory"
    );
    assert_eq!(faulty.outcome.pool, clean.outcome.pool);
}

#[test]
fn checkpoint_write_errors_are_survived_and_counted() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::disarm();
    let kind = GridKind::Square;
    let spec = FsmSpec::paper(kind);
    let config = GaConfig::paper(5, 13);
    let dir = std::env::temp_dir().join("a2a_run_chaos_io");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = RunOptions::persisting(CheckpointStore::new(&dir));

    // The first two saves fail with injected IO errors; the rest land.
    fault::arm(FaultPlan::seeded(7).with("run.checkpoint.write", 1.0, 2));
    let report =
        run_evolution(spec, &evaluator(kind), config, Vec::new(), &opts, |_| ()).unwrap();
    fault::disarm();

    assert!(report.completed);
    assert_eq!(report.checkpoint_errors, 2);
    // Boundaries 0..=5 are all due at cadence 1; two saves were eaten.
    assert_eq!(report.checkpoints_written, config.generations + 1 - 2);
    // The surviving rolling checkpoint is the final state, intact.
    let ckpt = CheckpointStore::new(&dir).load().unwrap().expect("final checkpoint persisted");
    let Payload::Single(state) = ckpt.payload else { panic!("wrong mode") };
    assert_eq!(state.next_generation, config.generations + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_resume_crash_loop_converges_to_the_uninterrupted_result() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::disarm();
    let kind = GridKind::Square;
    let spec = FsmSpec::paper(kind);
    let config = GaConfig::paper(8, 5150);

    let full =
        run_evolution(spec, &evaluator(kind), config, Vec::new(), &RunOptions::default(), |_| ())
            .unwrap();

    let dir = std::env::temp_dir().join("a2a_run_chaos_killloop");
    let _ = std::fs::remove_dir_all(&dir);
    let base = RunOptions::persisting(CheckpointStore::new(&dir));

    // Three certain kills: the first three boundary probes stop the
    // process image; occurrence bookkeeping persists across the loop's
    // re-invocations (same armed plan), so each restart gets further.
    fault::arm(FaultPlan::seeded(3).with("run.generation", 1.0, 3));
    let mut attempts = 0;
    let final_report = loop {
        attempts += 1;
        assert!(attempts <= 10, "crash loop must converge");
        let opts = base.clone().resuming(attempts > 1);
        let report =
            run_evolution(spec, &evaluator(kind), config, Vec::new(), &opts, |_| ()).unwrap();
        if report.completed {
            break report;
        }
        assert!(report.killed, "incomplete runs in this loop are killed runs");
    };
    let kills = fault::fired("run.generation");
    fault::disarm();

    assert_eq!(kills, 3, "the schedule allows exactly three kills");
    assert_eq!(attempts, 4, "three kills then a clean completion");
    assert_eq!(
        final_report.outcome.history, full.outcome.history,
        "crash-looped history must be bit-identical to the uninterrupted run"
    );
    assert_eq!(final_report.outcome.pool, full.outcome.pool);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn islands_kill_resume_matches_uninterrupted() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::disarm();
    let kind = GridKind::Square;
    let spec = FsmSpec::paper(kind);
    let config = GaConfig::paper(10, 31);
    let islands = IslandConfig { islands: 2, epoch: 5, migrants: 1 };

    let full = run_islands_checkpointed(
        spec,
        &evaluator(kind),
        config,
        islands,
        &RunOptions::default(),
        |_, _| (),
    )
    .unwrap();

    let dir = std::env::temp_dir().join("a2a_run_chaos_islands");
    let _ = std::fs::remove_dir_all(&dir);
    let base = RunOptions::persisting(CheckpointStore::new(&dir));
    fault::arm(FaultPlan::seeded(8).with("run.generation", 1.0, 1));
    let killed = run_islands_checkpointed(
        spec,
        &evaluator(kind),
        config,
        islands,
        &base,
        |_, _| (),
    )
    .unwrap();
    fault::disarm();
    assert!(killed.killed && !killed.completed);

    let resumed = run_islands_checkpointed(
        spec,
        &evaluator(kind),
        config,
        islands,
        &base.clone().resuming(true),
        |_, _| (),
    )
    .unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.resumed_from, Some(1));
    assert_eq!(resumed.outcome.islands.len(), full.outcome.islands.len());
    for (a, b) in resumed.outcome.islands.iter().zip(&full.outcome.islands) {
        assert_eq!(a.pool, b.pool, "resumed island pools must be bit-identical");
        assert_eq!(a.history, b.history);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_kill_leaves_a_sealed_flight_dump_replaying_recent_events() {
    let _guard = FAULT_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::disarm();
    let dir = std::env::temp_dir().join("a2a_run_chaos_flight");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Arm the black box: small rings so the run overwrites them many
    // times over, dumps landing in the scratch dir.
    a2a_obs::flight::set_capacity(64);
    a2a_obs::flight::set_dump_dir(&dir);
    a2a_obs::flight::enable();

    let kind = GridKind::Square;
    let spec = FsmSpec::paper(kind);
    let config = GaConfig::paper(6, 4242);
    fault::arm(FaultPlan::seeded(11).with("run.generation", 1.0, 1));
    let report =
        run_evolution(spec, &evaluator(kind), config, Vec::new(), &RunOptions::default(), |_| ())
            .unwrap();
    fault::disarm();
    a2a_obs::flight::disable();
    assert!(report.killed, "the schedule kills the first boundary");

    // Exactly one dump, triggered by the kill site, sealed and valid.
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .collect();
    assert_eq!(dumps.len(), 1, "one kill, one flight dump: {dumps:?}");
    let content = std::fs::read_to_string(&dumps[0]).unwrap();
    let summary = a2a_obs::schema::validate_flight(&content)
        .expect("dump is a sealed, checksum-valid a2a-obs/flight/v1 stream");
    assert!(summary.reason.contains("run.generation"), "reason names the site");
    assert!(summary.truncated_tail.is_none(), "atomic publish never tears");

    // The dump replays the recent history: the kill fault record itself
    // is the newest thing the rings saw, preceded by the span traffic
    // of the generations that ran — within each thread, at most the
    // ring capacity of retained records, in sequence order.
    let (_, records) = a2a_obs::flight::parse_dump(&content).unwrap();
    assert!(!records.is_empty());
    assert!(
        records.iter().any(|r| r.kind == "fault" && r.name == "fault.kill"),
        "the injected kill is on the record"
    );
    assert!(
        records.iter().any(|r| r.kind == "span_enter"),
        "pre-kill span traffic is replayed"
    );
    let mut per_thread: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
    for r in &records {
        per_thread.entry(r.thread).or_default().push(r.seq);
    }
    for (thread, seqs) in per_thread {
        assert!(seqs.len() <= 64, "thread {thread} kept more than one ring of records");
        let max = *seqs.iter().max().unwrap();
        let min = *seqs.iter().min().unwrap();
        assert_eq!(
            max - min + 1,
            seqs.len() as u64,
            "thread {thread}'s replay is a contiguous window of its newest records"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
#[test]
fn env_spec_grammar_parses_the_ci_schedule() {
    // The CI chaos job arms via A2A_FAULT; keep its grammar honest here
    // (parsing is pure — no env mutation, safe under parallel tests).
    let plan = FaultPlan::parse("seed=7,ga.pool.item:0.02:5,run.generation:1.0:3");
    assert_eq!(plan.seed, 7);
    assert_eq!(plan.rules.len(), 2);
    assert!(plan.fires("run.generation", 0));
}

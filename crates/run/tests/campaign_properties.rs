//! Property-based tests for the campaign archive algebra (DESIGN.md
//! §15): batched niche-min merges must be order-independent (any
//! interleaving of shard deltas folds to the same archive), and
//! digest-based cross-shard dedup must never drop a strictly better
//! elite — skipping a duplicate genome is only sound because evaluation
//! is deterministic, so the model here derives every report from the
//! genome digest exactly as the real evaluator's purity guarantees.

use a2a_ga::FitnessReport;
use a2a_run::campaign::{genome_digest, Archive, ArchiveDelta, DigestSet, Elite};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The deterministic-evaluation model: one genome in one niche always
/// produces the same report (the property PR 3/5 pin down for the real
/// engines). Fitness and the secondary fields all derive from the
/// digest so distinct genomes collide on fitness often enough to
/// exercise the lexicographic tie-break.
fn report_for(niche_id: &str, digits: &str) -> FitnessReport {
    let digest = genome_digest(niche_id, digits);
    FitnessReport {
        fitness: (digest % 97) as f64 * 10.0,
        successes: (digest % 7) as usize,
        total: 10,
        mean_t_comm: digest.is_multiple_of(2).then_some((digest % 301) as f64),
    }
}

fn elite_for(niche_id: &str, digits: &str) -> Elite {
    Elite { digits: digits.to_string(), report: report_for(niche_id, digits) }
}

/// A small niche universe (real campaigns have tens of niches, and
/// collisions are the interesting case).
fn niche_id(index: usize) -> String {
    format!("T-m8-k{}", 2 + index % 5)
}

/// Strategy: a batch of shard deltas, each a list of (niche, genome)
/// candidate outcomes. Genomes are short digit strings so duplicates
/// across shards are common.
fn deltas_strategy() -> impl Strategy<Value = Vec<Vec<(usize, String)>>> {
    prop::collection::vec(
        prop::collection::vec((0usize..5, "[0-3]{1,4}"), 0..12),
        1..6,
    )
}

fn build_delta(shard: usize, candidates: &[(usize, String)]) -> ArchiveDelta {
    let mut delta = ArchiveDelta { shard, round: 0, ..ArchiveDelta::default() };
    for (niche, digits) in candidates {
        let id = niche_id(*niche);
        delta.fold(&id, elite_for(&id, digits));
        delta.digests.push(genome_digest(&id, digits));
        delta.evals += 1;
    }
    delta
}

fn archive_text(archive: &Archive) -> String {
    archive.to_json("prop-digest").to_string()
}

proptest! {
    /// Merging the same set of shard deltas in any order — and in any
    /// batching — yields a byte-identical archive. This is the property
    /// that lets the coordinator fold deltas as they land instead of
    /// sorting them, and lets a resumed coordinator replay them from
    /// disk in directory order.
    #[test]
    fn merge_is_order_independent(
        batches in deltas_strategy(),
        shuffle_seed in 0u64..1_000,
    ) {
        let deltas: Vec<ArchiveDelta> = batches
            .iter()
            .enumerate()
            .map(|(shard, candidates)| build_delta(shard, candidates))
            .collect();

        let mut in_order = Archive::new();
        for delta in &deltas {
            in_order.merge(delta);
        }

        let mut shuffled: Vec<&ArchiveDelta> = deltas.iter().collect();
        let mut rng = SmallRng::seed_from_u64(shuffle_seed);
        // Fisher–Yates, driven by the proptest-drawn seed.
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.random_range(0..=i));
        }
        let mut reversed_merge = Archive::new();
        for delta in shuffled {
            reversed_merge.merge(delta);
        }

        // A third ordering: every candidate folded one at a time,
        // interleaved round-robin across shards.
        let mut folded = Archive::new();
        let mut cursors: Vec<usize> = vec![0; batches.len()];
        loop {
            let mut progressed = false;
            for (shard, candidates) in batches.iter().enumerate() {
                if let Some((niche, digits)) = candidates.get(cursors[shard]) {
                    let id = niche_id(*niche);
                    folded.fold(&id, elite_for(&id, digits));
                    cursors[shard] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        prop_assert_eq!(&in_order, &reversed_merge);
        prop_assert_eq!(&in_order, &folded);
        prop_assert_eq!(archive_text(&in_order), archive_text(&reversed_merge));
    }

    /// Dedup soundness: a pipeline that skips every candidate whose
    /// genome digest was already recorded finishes with exactly the
    /// archive of the pipeline that evaluates everything. A strictly
    /// better elite can therefore never be lost to dedup — a skipped
    /// genome's evaluation is bit-identical to the recorded one.
    #[test]
    fn dedup_never_drops_a_strictly_better_elite(
        batches in deltas_strategy(),
    ) {
        let mut full = Archive::new();
        let mut deduped = Archive::new();
        let mut seen = DigestSet::new();
        let mut hits = 0u64;
        let mut total = 0u64;
        for candidates in &batches {
            for (niche, digits) in candidates {
                let id = niche_id(*niche);
                total += 1;
                full.fold(&id, elite_for(&id, digits));
                if seen.insert(genome_digest(&id, digits)) {
                    deduped.fold(&id, elite_for(&id, digits));
                } else {
                    hits += 1;
                }
            }
        }
        prop_assert_eq!(&full, &deduped);
        prop_assert_eq!(archive_text(&full), archive_text(&deduped));
        prop_assert_eq!(seen.len() as u64 + hits, total, "every candidate is counted once");
        // Dedup only ever *removes* work: the deduped pipeline performs
        // exactly one evaluation per distinct genome.
        prop_assert!(seen.len() as u64 <= total);
    }
}

//! Property-based tests: the `a2a-run/checkpoint/v1` codec round-trips
//! arbitrary run states exactly — through the full serialised text, not
//! just the in-memory `Json` tree — and validation rejects any
//! single-character corruption of the sealed document that changes its
//! meaning.

use a2a_fsm::{FsmSpec, Genome};
use a2a_ga::{FitnessReport, GenerationStats, Individual, RunState};
use a2a_grid::GridKind;
use a2a_run::{Checkpoint, Counters, Payload};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

fn spec_for(choice: u8) -> FsmSpec {
    match choice % 3 {
        0 => FsmSpec::paper(GridKind::Square),
        1 => FsmSpec::paper(GridKind::Triangulate),
        _ => FsmSpec::new(4, 3, a2a_fsm::TurnSet::TriangulateFull),
    }
}

/// Builds a structurally valid but value-arbitrary checkpoint from a
/// handful of scalar draws (genomes and floats come from a seeded RNG,
/// keeping the strategy simple while covering the whole value space).
fn sample_checkpoint(spec_choice: u8, seed: u64, pool_len: usize, gens: usize) -> Checkpoint {
    let spec = spec_for(spec_choice);
    let mut rng = SmallRng::seed_from_u64(seed);
    let pool: Vec<Individual> = (0..pool_len)
        .map(|_| Individual {
            genome: Genome::random(spec, &mut rng),
            report: FitnessReport {
                fitness: rng.random_range(0.0..1.0) * 1e6,
                successes: rng.random_range(0..10),
                total: 10,
                mean_t_comm: rng.random_bool(0.5).then(|| rng.random_range(0.0..1.0) * 200.0),
            },
        })
        .collect();
    let history: Vec<GenerationStats> = (0..gens)
        .map(|g| GenerationStats {
            generation: g,
            best_fitness: rng.random_range(0.0..1.0) * 1e5,
            median_fitness: rng.random_range(0.0..1.0) * 1e5,
            mean_fitness: rng.random_range(0.0..1.0) * 1e5,
            best_successes: rng.random_range(0..10),
            best_complete: rng.random_bool(0.5),
            pool_diversity: rng.random_range(0.0..1.0),
            duplicates_removed: rng.random_range(0..5),
            offspring_accepted: rng.random_range(0..10),
        })
        .collect();
    let mut rng_state = [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()];
    if rng_state == [0; 4] {
        rng_state[0] = 1;
    }
    Checkpoint {
        digest: format!("{:016x}", seed),
        spec,
        counters: Counters {
            cache_entries: seed % 1000,
            cache_hits: seed % 333,
        },
        payload: Payload::Single(RunState {
            rng_state,
            pool,
            history,
            next_generation: gens,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn checkpoint_round_trips_through_serialised_text(
        spec_choice in any::<u8>(),
        seed in any::<u64>(),
        pool_len in 0usize..6,
        gens in 0usize..5,
    ) {
        let ckpt = sample_checkpoint(spec_choice, seed, pool_len, gens);
        let text = ckpt.to_json().to_string();
        let doc = a2a_obs::json::parse(&text).expect("serialised checkpoint parses");
        let back = Checkpoint::from_json(&doc).expect("valid checkpoint decodes");
        prop_assert_eq!(back.digest, ckpt.digest);
        prop_assert_eq!(back.spec, ckpt.spec);
        prop_assert_eq!(back.counters, ckpt.counters);
        let (Payload::Single(a), Payload::Single(b)) = (back.payload, ckpt.payload) else {
            panic!("wrong mode");
        };
        prop_assert_eq!(a.rng_state, b.rng_state);
        prop_assert_eq!(a.pool, b.pool);
        prop_assert_eq!(a.history, b.history);
        prop_assert_eq!(a.next_generation, b.next_generation);
    }

    #[test]
    fn corrupting_one_digit_of_the_document_is_detected(
        seed in any::<u64>(),
        victim in 0usize..4096,
    ) {
        let ckpt = sample_checkpoint(1, seed, 2, 2);
        let text = ckpt.to_json().to_string();
        // Flip one decimal digit somewhere in the serialised form; any
        // digit position keeps the text valid JSON, so the only gate
        // left standing is the checksum (or, for the checksum's own
        // digits, the recomputation mismatch).
        let bytes: Vec<usize> = text
            .bytes()
            .enumerate()
            .filter(|(_, b)| b.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        let at = bytes[victim % bytes.len()];
        let mut corrupted = text.clone().into_bytes();
        corrupted[at] = if corrupted[at] == b'9' { b'0' } else { corrupted[at] + 1 };
        let corrupted = String::from_utf8(corrupted).unwrap();
        if let Ok(doc) = a2a_obs::json::parse(&corrupted) {
            // A flip in a float's last digit can alias to the same f64
            // (decimals are denser than doubles there); such a flip is
            // meaning-preserving and legitimately undetectable. Compare
            // canonical serialisations to tell the cases apart.
            let original = a2a_obs::json::parse(&text).unwrap();
            if doc.to_string() != original.to_string() {
                prop_assert!(
                    Checkpoint::from_json(&doc).is_err(),
                    "a meaning-changing one-digit corruption must not decode cleanly"
                );
            }
        }
    }
}

//! Genome-fitness memoization: an LRU-bounded map from canonical genome
//! keys to exact [`FitnessReport`]s.
//!
//! The GA re-evaluates survivors constantly — every island epoch restarts
//! its pool through `run_seeded`, re-simulating the same 20 genomes on
//! the same configuration set. Fitness is a pure function of
//! `(spec, digits, environment, configs, t_max)`; the evaluator fixes the
//! last three, so a per-evaluator cache keyed on `(spec, digits)` makes
//! those re-evaluations free without changing a single result. Only
//! *exact* full-set reports are ever inserted — pruned partial sums (see
//! `Evaluator::evaluate_selection`) never enter the cache.
//!
//! Hit/miss totals are kept on the cache itself (cheap relaxed atomics,
//! always on, used by benches and tests) and mirrored into the global
//! `ga.cache.hits` / `ga.cache.misses` counters while metrics are on.
//! A cache built with [`FitnessCache::with_context`] mirrors into
//! `ga.cache.<context>.hits` / `.misses` instead, so e.g. a campaign
//! shard's LRU traffic is attributed separately from the campaign-wide
//! digest-set dedup (`campaign.dedup.hits`) and from ordinary
//! single-run caches.

use crate::fitness::FitnessReport;
use a2a_fsm::{FsmSpec, Genome};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default capacity: comfortably holds every distinct genome a
/// paper-scale run touches per training set (20-pool × hundreds of
/// generations produces thousands of *distinct* genomes, most of which
/// die immediately; the LRU keeps the live ones).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Canonical cache key: the spec disambiguates digit strings across
/// grid kinds / FSM shapes.
type Key = (FsmSpec, String);

#[derive(Debug)]
struct Entry {
    report: FitnessReport,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    tick: u64,
}

/// A bounded, thread-safe memoization table for exact fitness reports.
///
/// Shared across clones of an `Evaluator` (and therefore across
/// islands) through an `Arc`; the interior mutex is held only for the
/// map operation itself, never across a simulation.
#[derive(Debug)]
pub struct FitnessCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Global metric names this cache mirrors into (interned once).
    hit_metric: String,
    miss_metric: String,
}

impl FitnessCache {
    /// Creates a cache bounded to `capacity` entries (minimum 1),
    /// attributed to the default `ga.cache` metric context.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_metric: "ga.cache.hits".to_string(),
            miss_metric: "ga.cache.misses".to_string(),
        }
    }

    /// Re-attributes the cache's global counters to
    /// `ga.cache.<context>.hits` / `.misses`, so distinct consumers
    /// (campaign shards, service jobs, plain runs) don't conflate their
    /// hit rates in one metric pair. The per-instance [`hits`] /
    /// [`misses`] totals are unaffected.
    ///
    /// [`hits`]: FitnessCache::hits
    /// [`misses`]: FitnessCache::misses
    #[must_use]
    pub fn with_context(mut self, context: &str) -> Self {
        self.hit_metric = format!("ga.cache.{context}.hits");
        self.miss_metric = format!("ga.cache.{context}.misses");
        self
    }

    /// The metric context the cache reports under (`"ga.cache"` by
    /// default, `"ga.cache.<context>"` after [`FitnessCache::with_context`]).
    #[must_use]
    pub fn metric_context(&self) -> &str {
        self.hit_metric.strip_suffix(".hits").unwrap_or(&self.hit_metric)
    }

    /// Looks `genome` up, refreshing its recency on a hit.
    #[must_use]
    pub fn lookup(&self, genome: &Genome) -> Option<FitnessReport> {
        let key = (genome.spec(), genome.to_digits());
        let mut inner = self.inner.lock().expect("cache lock is never poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            e.report
        });
        drop(inner);
        let counter = if found.is_some() { &self.hits } else { &self.misses };
        counter.fetch_add(1, Ordering::Relaxed);
        if a2a_obs::metrics_enabled() {
            let name = if found.is_some() { &self.hit_metric } else { &self.miss_metric };
            a2a_obs::global().counter(name).incr();
        }
        found
    }

    /// Stores an exact full-set report for `genome`, evicting the least
    /// recently used entries when over capacity.
    pub fn insert(&self, genome: &Genome, report: FitnessReport) {
        let key = (genome.spec(), genome.to_digits());
        let mut inner = self.inner.lock().expect("cache lock is never poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, Entry { report, last_used: tick });
        if inner.map.len() > self.capacity {
            // Amortised eviction: drop the oldest quarter in one pass
            // instead of a full LRU chain per insert.
            let mut ages: Vec<u64> = inner.map.values().map(|e| e.last_used).collect();
            ages.sort_unstable();
            let cutoff = ages[inner.map.len() - self.capacity * 3 / 4];
            inner.map.retain(|_, e| e.last_used > cutoff);
        }
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock is never poisoned").map.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Default for FitnessCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn report(fitness: f64) -> FitnessReport {
        FitnessReport { fitness, successes: 1, total: 1, mean_t_comm: Some(fitness) }
    }

    #[test]
    fn round_trips_and_counts() {
        let cache = FitnessCache::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let g = Genome::random(FsmSpec::paper(GridKind::Square), &mut rng);
        assert_eq!(cache.lookup(&g), None);
        cache.insert(&g, report(5.0));
        assert_eq!(cache.lookup(&g), Some(report(5.0)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let cache = FitnessCache::new(8);
        let spec = FsmSpec::paper(GridKind::Square);
        let mut rng = SmallRng::seed_from_u64(2);
        let genomes: Vec<Genome> = (0..12).map(|_| Genome::random(spec, &mut rng)).collect();
        for (i, g) in genomes.iter().enumerate() {
            cache.insert(g, report(i as f64));
            // Keep genome 0 hot so eviction must spare it.
            let _ = cache.lookup(&genomes[0]);
        }
        assert!(cache.len() <= 8, "bounded: {}", cache.len());
        assert_eq!(cache.lookup(&genomes[0]), Some(report(0.0)), "hot entry survives");
        assert_eq!(cache.lookup(&genomes[1]), None, "cold entry evicted");
    }

    #[test]
    fn context_renames_the_global_metrics_only() {
        let plain = FitnessCache::new(4);
        assert_eq!(plain.metric_context(), "ga.cache");
        let shard = FitnessCache::new(4).with_context("campaign.shard");
        assert_eq!(shard.metric_context(), "ga.cache.campaign.shard");
        // Instance counters behave identically regardless of context.
        let mut rng = SmallRng::seed_from_u64(9);
        let g = Genome::random(FsmSpec::paper(GridKind::Square), &mut rng);
        assert_eq!(shard.lookup(&g), None);
        shard.insert(&g, report(2.0));
        assert_eq!(shard.lookup(&g), Some(report(2.0)));
        assert_eq!((shard.hits(), shard.misses()), (1, 1));
    }

    #[test]
    fn distinct_specs_do_not_collide() {
        // Same digit string, different spec ⇒ different key.
        let cache = FitnessCache::new(8);
        let s = FsmSpec::paper(GridKind::Square);
        let t = FsmSpec::paper(GridKind::Triangulate);
        let mut rng = SmallRng::seed_from_u64(3);
        let gs = Genome::random(s, &mut rng);
        cache.insert(&gs, report(1.0));
        let mut rng = SmallRng::seed_from_u64(3);
        let gt = Genome::random(t, &mut rng);
        assert_eq!(cache.lookup(&gt), None);
    }
}

//! Work-stealing parallel map on `std::thread::scope`, used to evaluate
//! fitness over hundreds of initial configurations and whole populations
//! without `unsafe` or any thread-pool dependency.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism. Callers that know their workload size should clamp with
/// [`default_threads_for`] so short batches don't spawn idle workers.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Clears the observability worker-id tag when the worker unwinds or
/// returns — without it, a panicking closure would leak the tag onto
/// whatever thread the scope hands back to the caller.
struct WorkerIdGuard;

impl Drop for WorkerIdGuard {
    fn drop(&mut self) {
        a2a_obs::set_worker_id(None);
    }
}

/// [`default_threads`] capped at `item_count` (minimum 1), for sizing a
/// worker pool to a known batch: spawning more threads than items only
/// adds startup cost.
#[must_use]
pub fn default_threads_for(item_count: usize) -> usize {
    default_threads().min(item_count.max(1))
}

/// Applies `f` to every item on `threads` scoped worker threads and
/// returns the results in input order.
///
/// Workers pull indices from a shared atomic counter, so heterogeneous
/// per-item costs (fast vs. slow simulations) balance automatically.
/// `threads` is clamped to `1..=items.len()`; with one effective thread
/// the map runs inline, which keeps call sites deterministic to profile.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    // The map itself is a span, and each worker adopts it as causal
    // parent before opening its own — a captured trace therefore shows
    // the logical fan-out (map → worker → whatever `f` opens) rather
    // than disconnected per-thread roots.
    let map_span = a2a_obs::Span::enter("parallel.map");
    let parent = a2a_obs::trace::current();
    // Each worker tags itself in the observability layer, so events
    // emitted from inside `f` carry the worker id; at `Debug` every
    // worker reports its own throughput when it drains.
    let debug = a2a_obs::enabled(a2a_obs::Level::Debug);
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    a2a_obs::set_worker_id(Some(w));
                    let _guard = WorkerIdGuard;
                    let _adopted = a2a_obs::trace::adopt(parent);
                    let _worker_span = a2a_obs::Span::enter("parallel.worker");
                    let started = debug.then(std::time::Instant::now);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    if let Some(started) = started {
                        a2a_obs::event!(a2a_obs::Level::Debug, "parallel.worker",
                            "items" => local.len(),
                            "elapsed_us" => started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker must not panic"))
            .collect()
    });
    drop(map_span);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let seq = parallel_map(&items, 1, |&x| x * x % 97);
        let par = parallel_map(&items, 4, |&x| x * x % 97);
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_clamped() {
        // Far more threads than items: must still produce every result in
        // order without panicking or deadlocking.
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(parallel_map(&items, 64, |&x| x + 10), vec![10, 11, 12]);
    }

    #[test]
    fn balances_heterogeneous_work() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let results = parallel_map(&items, 8, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(results, items);
    }

    #[test]
    fn worker_id_guard_clears_tag_on_panic() {
        // Simulate a worker whose closure panics: the guard must clear
        // the thread-local tag during unwinding, so a thread reused
        // afterwards does not report a stale worker id.
        let unwound = std::panic::catch_unwind(|| {
            a2a_obs::set_worker_id(Some(7));
            let _guard = WorkerIdGuard;
            panic!("worker died");
        });
        assert!(unwound.is_err());
        assert_eq!(a2a_obs::worker_id(), None, "tag must not leak past the panic");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn default_threads_for_caps_at_item_count() {
        assert_eq!(default_threads_for(1), 1);
        assert!(default_threads_for(0) >= 1);
        assert!(default_threads_for(usize::MAX) <= default_threads());
        assert!(default_threads_for(2) <= 2);
    }
}

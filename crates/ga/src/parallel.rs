//! Work-stealing parallel map on scoped threads (crossbeam), used to
//! evaluate fitness over hundreds of initial configurations and whole
//! populations without `unsafe` or a heavyweight thread-pool dependency.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped at the item count.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on `threads` scoped worker threads and
/// returns the results in input order.
///
/// Workers pull indices from a shared atomic counter, so heterogeneous
/// per-item costs (fast vs. slow simulations) balance automatically.
/// With `threads <= 1` the map runs inline, which keeps call sites
/// deterministic to profile.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker must not panic"))
            .collect()
    })
    .expect("scoped threads must not panic");
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let seq = parallel_map(&items, 1, |&x| x * x % 97);
        let par = parallel_map(&items, 4, |&x| x * x % 97);
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn balances_heterogeneous_work() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let results = parallel_map(&items, 8, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(results, items);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}

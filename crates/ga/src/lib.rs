//! The genetic procedure of Hoffmann & Désérable (PaCT 2013), Sect. 4:
//! evolving agent FSMs for the all-to-all communication task.
//!
//! The procedure is mutation-only: each generation the top `N/2`
//! individuals produce one offspring each by incrementing every genome
//! field with probability 18 %; the union is sorted by the dominance
//! fitness `F = W·(N_agents − informed) + t_comm` (`W = 10⁴`), duplicates
//! are deleted, the pool is truncated to `N = 20`, and individuals 7,8,9
//! are exchanged with 10,11,12 to preserve diversity.
//!
//! * [`Evaluator`] — adaptive fitness evaluation over a configuration
//!   set: persistent [`WorkerPool`], genome memoization
//!   ([`FitnessCache`]) and exact bound-based pruning
//!   ([`Evaluator::evaluate_selection`]) — see DESIGN.md §8;
//! * [`Evolution`] / [`GaConfig`] — the generational loop;
//! * [`screen`] — reliability screening across agent densities (Sect. 5);
//! * [`parallel_map`] — the scoped-thread work-stealing map kept for
//!   one-shot batches.
//!
//! # Examples
//!
//! A miniature evolution run (the real experiments use larger sets; see
//! the `evolve_run` binary in `a2a-bench`):
//!
//! ```
//! use a2a_ga::{Evaluator, Evolution, GaConfig};
//! use a2a_fsm::FsmSpec;
//! use a2a_grid::GridKind;
//! use a2a_sim::{paper_config_set, WorldConfig};
//!
//! # fn main() -> Result<(), a2a_sim::SimError> {
//! let env = WorldConfig::paper(GridKind::Square, 8);
//! let configs = paper_config_set(env.lattice, env.kind, 4, 8, 1)?;
//! let ga = Evolution::new(
//!     FsmSpec::paper(GridKind::Square),
//!     Evaluator::new(env, configs),
//!     GaConfig::paper(5, 42),
//! );
//! let outcome = ga.run(|_| ());
//! assert_eq!(outcome.history.len(), 6); // initial pool + 5 generations
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cache;
mod crossover;
mod evolve;
mod fitness;
mod islands;
mod parallel;
mod pool;
mod reliability;

pub use cache::{FitnessCache, DEFAULT_CACHE_CAPACITY};
pub use crossover::{one_point, uniform, ReproductionStrategy};
pub use evolve::{
    Evolution, EvolutionOutcome, GaConfig, GenerationStats, Individual, ResumableRun, RunControl,
    RunState,
};
pub use fitness::{
    Evaluator, FitnessReport, GenomeEval, PruneBound, PAPER_T_MAX, PAPER_WEIGHT,
};
pub use islands::{
    run_islands, run_islands_resumable, IslandConfig, IslandOutcome, IslandsState,
    ResumableIslands,
};
pub use parallel::{default_threads, default_threads_for, parallel_map};
pub use pool::{WorkerPool, DEFAULT_TASK_DEADLINE, MAX_STRIKES};
pub use reliability::{screen, DensityReport, ReliabilityReport};

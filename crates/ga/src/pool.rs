//! A persistent worker pool on `std::thread`: a condvar-guarded job
//! queue shared by long-lived workers, replacing the per-call scoped
//! threads of [`crate::parallel_map`] on the GA hot path.
//!
//! The GA calls `evaluate_all` once per generation; spawning and joining
//! OS threads each time costs tens of microseconds per worker and shows
//! up on short generations. A [`WorkerPool`] spawns its workers once,
//! parks them on a [`Condvar`], and hands them `'static` jobs — the
//! crate forbids `unsafe`, so instead of lifetime-erased borrows the
//! [`WorkerPool::map`] primitive shares its input through an [`Arc`].
//!
//! Workers tag themselves in the observability layer exactly like
//! `parallel_map` workers do (`a2a_obs::set_worker_id`), so events
//! emitted from inside jobs carry a stable worker id, and every executed
//! task bumps the `ga.pool.tasks` counter while metrics are on.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state behind the pool's mutex.
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// The mutex + condvar pair shared between the handle and the workers.
struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// A persistent pool of worker threads executing boxed jobs.
///
/// Dropping the pool shuts it down: the queue is closed and every worker
/// is joined. Jobs that panic are caught per-job ([`catch_unwind`]) so a
/// poisoned genome cannot take a long-lived worker down with it; callers
/// of [`WorkerPool::map`] detect the missing result and panic on their
/// own thread with a diagnosable message.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    ///
    /// A single-threaded pool spawns no OS threads at all: every
    /// [`WorkerPool::map`] runs inline on the caller, which keeps
    /// `threads = 1` call sites deterministic to profile — the same
    /// contract as [`crate::parallel_map`].
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        });
        let handles = if threads == 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|w| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("a2a-pool-{w}"))
                        .spawn(move || worker_loop(&shared, w))
                        .expect("worker threads must spawn")
                })
                .collect()
        };
        Self { shared, threads, handles }
    }

    /// Worker count the pool was built with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues one job and wakes a worker.
    fn submit(&self, job: Job) {
        let mut state = self.shared.state.lock().expect("pool workers do not poison the lock");
        state.queue.push_back(job);
        drop(state);
        self.shared.available.notify_one();
    }

    /// Applies `f` to every item of `items` across the pool and returns
    /// the results in input order. `f` receives `(index, &item)`.
    ///
    /// The input is shared by [`Arc`] because jobs outlive the call's
    /// stack frame on the worker side; the caller participates in the
    /// drain (work-stealing over a shared index), so the pool threads
    /// are pure extra bandwidth and `threads = 1` degenerates to a plain
    /// inline map.
    ///
    /// # Panics
    ///
    /// Panics if any application of `f` panicked on a worker (the
    /// worker itself survives).
    pub fn map<T, R, F>(&self, items: &Arc<Vec<T>>, f: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let started = a2a_obs::metrics_enabled().then(std::time::Instant::now);
        let f = Arc::new(f);
        let next = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<Vec<(usize, R)>>();
        // One task per worker; each drains the shared index until empty.
        // The caller keeps one share for itself.
        let helper_tasks = (self.threads - 1).min(n);
        for _ in 0..helper_tasks {
            let items = Arc::clone(items);
            let f = Arc::clone(&f);
            let next = Arc::clone(&next);
            let tx = tx.clone();
            self.submit(Box::new(move || {
                let _ = tx.send(drain(&items, &f, &next));
            }));
        }
        drop(tx);
        let mut tagged = drain(items, &f, &next);
        for _ in 0..helper_tasks {
            // A worker that panicked drops its sender without sending;
            // `recv` then errors and the items it claimed are missing.
            if let Ok(batch) = rx.recv() {
                tagged.extend(batch);
            }
        }
        assert!(
            tagged.len() == n,
            "a pool worker panicked while evaluating ({}/{n} results)",
            tagged.len()
        );
        if let Some(t0) = started {
            let reg = a2a_obs::global();
            reg.counter("ga.pool.items").add(n as u64);
            reg.histogram("ga.pool.map.us").record_duration_us(t0.elapsed());
        }
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

/// Pulls indices from `next` and applies `f` until the input is drained.
fn drain<T, R>(
    items: &Arc<Vec<T>>,
    f: &Arc<impl Fn(usize, &T) -> R>,
    next: &Arc<AtomicUsize>,
) -> Vec<(usize, R)> {
    let mut local = Vec::new();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            return local;
        }
        local.push((i, f(i, &items[i])));
    }
}

/// The long-lived worker body: tag, then pop-run until shutdown.
fn worker_loop(shared: &PoolShared, w: usize) {
    a2a_obs::set_worker_id(Some(w));
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock is never poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared
                    .available
                    .wait(state)
                    .expect("pool lock is never poisoned");
            }
        };
        let Some(job) = job else { return };
        // Contain panics to the job: its channel sender is dropped
        // unsent, which the `map` caller turns into a clean panic.
        let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
        if a2a_obs::metrics_enabled() {
            let reg = a2a_obs::global();
            reg.counter("ga.pool.tasks").incr();
            if panicked {
                reg.counter("ga.pool.panics").incr();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Arc<Vec<u64>> = Arc::new((0..1000).collect());
        let doubled = pool.map(&items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_maps() {
        let pool = WorkerPool::new(3);
        for round in 0..20u64 {
            let items: Arc<Vec<u64>> = Arc::new((0..50).collect());
            let got = pool.map(&items, move |_, &x| x + round);
            assert_eq!(got, (round..50 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_thread_pool_runs_inline_without_workers() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.handles.is_empty(), "threads = 1 must not spawn");
        let items: Arc<Vec<u32>> = Arc::new((0..10).collect());
        assert_eq!(pool.map(&items, |i, &x| i as u32 + x), (0..20).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let pool = WorkerPool::new(4);
        let empty: Arc<Vec<u32>> = Arc::new(Vec::new());
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        let one: Arc<Vec<u32>> = Arc::new(vec![5]);
        assert_eq!(pool.map(&one, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn worker_panics_are_contained_and_reported() {
        let pool = WorkerPool::new(2);
        let items: Arc<Vec<u32>> = Arc::new((0..8).collect());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                assert!(x != 3, "poisoned item");
                x
            })
        }));
        assert!(result.is_err(), "the caller must observe the panic");
        // The pool survives the panicking job and keeps serving.
        let items: Arc<Vec<u32>> = Arc::new((0..8).collect());
        assert_eq!(pool.map(&items, |_, &x| x), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }
}

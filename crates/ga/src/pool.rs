//! A persistent worker pool on `std::thread`: a condvar-guarded job
//! queue shared by long-lived workers, replacing the per-call scoped
//! threads of [`crate::parallel_map`] on the GA hot path.
//!
//! The GA calls `evaluate_all` once per generation; spawning and joining
//! OS threads each time costs tens of microseconds per worker and shows
//! up on short generations. A [`WorkerPool`] spawns its workers once,
//! parks them on a [`Condvar`], and hands them `'static` jobs — the
//! crate forbids `unsafe`, so instead of lifetime-erased borrows the
//! [`WorkerPool::map`] primitive shares its input through an [`Arc`].
//!
//! Workers tag themselves in the observability layer exactly like
//! `parallel_map` workers do (`a2a_obs::set_worker_id`), so events
//! emitted from inside jobs carry a stable worker id, and every executed
//! task bumps the `ga.pool.tasks` counter while metrics are on.
//!
//! # Watchdog
//!
//! Long evolution runs must survive a poisoned genome or a wedged
//! worker, so [`WorkerPool::map`] is defended in depth:
//!
//! * **Per-item containment** — each item application is wrapped in
//!   [`catch_unwind`]; a panic reports the item as failed (instead of
//!   silently losing every item the job had claimed) and the panic then
//!   propagates to the worker loop as a *strike*.
//! * **Quarantine** — a worker accumulating [`MAX_STRIKES`] strikes
//!   retires itself: the pool's live width shrinks (`ga.pool.poisoned`
//!   counter), later maps schedule fewer helper jobs, and with every
//!   helper quarantined the map degrades to a clean inline loop on the
//!   caller.
//! * **Deadline** — the caller waits at most
//!   [`WorkerPool::with_task_deadline`] (default [`DEFAULT_TASK_DEADLINE`],
//!   overridable process-wide with the `A2A_POOL_DEADLINE_MS` env var)
//!   for helper results; items a hung or dead worker never delivered
//!   are reclaimed, and any worker still stuck on a job older than the
//!   deadline is quarantined (`ga.pool.deadline_quarantines` counter)
//!   so later maps stop scheduling work for a thread that will never
//!   take it. Under concurrent maps on a shared pool this is
//!   deliberately conservative: a worker legitimately busy longer than
//!   the deadline retires early and the pool degrades toward inline
//!   maps — correctness is never affected, only helper bandwidth.
//! * **Bounded retry** — every failed or undelivered item is retried
//!   exactly once, inline on the caller (`ga.pool.retries` counter). A
//!   second failure propagates as a panic: deterministic poison must
//!   surface, not loop.
//!
//! A single-threaded pool keeps the old contract — a plain inline map
//! with no containment, no probes and no allocation, so `threads = 1`
//! runs stay deterministic to profile.
//!
//! Under the chaos suite, `a2a_obs::fault::panic_point("ga.pool.item")`
//! is probed before every multi-threaded item application, letting a
//! seeded `FaultPlan` simulate worker crashes; disarmed, the probe is
//! one relaxed atomic load per item.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Strikes (panicked jobs) after which a worker quarantines itself.
pub const MAX_STRIKES: usize = 3;

/// Default per-map deadline for helper results; items not delivered in
/// time are retried inline. Far above any sane generation time — the
/// deadline exists to unwedge a hung worker, not to pace healthy ones.
/// Overridable process-wide with the `A2A_POOL_DEADLINE_MS` env var
/// (read once per [`WorkerPool::new`]) or per pool with
/// [`WorkerPool::with_task_deadline`].
pub const DEFAULT_TASK_DEADLINE: Duration = Duration::from_secs(120);

/// Env var naming the watchdog deadline in milliseconds (see
/// [`DEFAULT_TASK_DEADLINE`]).
pub const POOL_DEADLINE_ENV: &str = "A2A_POOL_DEADLINE_MS";

/// Queue state behind the pool's mutex.
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// Per-worker watchdog slot.
#[derive(Default)]
struct WorkerSlot {
    /// Nanoseconds since the pool's epoch when the worker's current job
    /// started (`0` = idle). Written by the worker, read by callers
    /// reaping hung helpers at deadline expiry.
    busy_since_ns: AtomicU64,
    /// Set exactly once when the worker is retired (by its own strike
    /// budget or by a caller's deadline reap); guards the `live`
    /// decrement against double counting.
    quarantined: AtomicBool,
}

/// The mutex + condvar pair shared between the handle and the workers.
struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    /// Workers still serving (spawned minus quarantined).
    live: AtomicUsize,
    /// Monotonic origin for `busy_since_ns` stamps.
    epoch: Instant,
    /// One watchdog slot per spawned worker (empty for inline pools).
    workers: Vec<WorkerSlot>,
}

impl PoolShared {
    /// Nanoseconds since the pool epoch, clamped to ≥ 1 so `0` can mean
    /// idle in the busy stamps.
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX).max(1)
    }
}

/// Retires worker `w`: flips its quarantine flag and, on the first
/// flip only, shrinks the pool's live width and reports the event.
fn quarantine_worker(shared: &PoolShared, w: usize, cause: &'static str, counter: &'static str) {
    if shared.workers[w].quarantined.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.live.fetch_sub(1, Ordering::Relaxed);
    if a2a_obs::metrics_enabled() {
        a2a_obs::global().counter(counter).incr();
    }
    a2a_obs::event!(a2a_obs::Level::Warn, "ga.pool.quarantine",
        "worker" => w as u64, "cause" => cause);
}

/// A persistent pool of worker threads executing boxed jobs.
///
/// Dropping the pool shuts it down: the queue is closed and every worker
/// is joined. Jobs that panic are caught per-item ([`catch_unwind`]) so
/// a poisoned genome cannot take a long-lived worker down with it; see
/// the module docs for the full watchdog (quarantine, deadline, retry).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    deadline: Duration,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("live", &self.live_workers())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    ///
    /// A single-threaded pool spawns no OS threads at all: every
    /// [`WorkerPool::map`] runs inline on the caller, which keeps
    /// `threads = 1` call sites deterministic to profile — the same
    /// contract as [`crate::parallel_map`].
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let worker_count = if threads == 1 { 0 } else { threads };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
            live: AtomicUsize::new(0),
            epoch: Instant::now(),
            workers: (0..worker_count).map(|_| WorkerSlot::default()).collect(),
        });
        let handles = (0..worker_count)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("a2a-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("worker threads must spawn")
            })
            .collect::<Vec<_>>();
        shared.live.store(handles.len(), Ordering::Relaxed);
        let deadline = std::env::var(POOL_DEADLINE_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map_or(DEFAULT_TASK_DEADLINE, Duration::from_millis);
        Self { shared, threads, deadline, handles }
    }

    /// Replaces the per-map helper deadline (see [`DEFAULT_TASK_DEADLINE`]).
    #[must_use]
    pub fn with_task_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Worker count the pool was built with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers still serving (spawned minus quarantined). Zero once
    /// every helper retired — maps then run inline on the caller.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Quarantines every worker whose current job has been running for
    /// at least this pool's deadline (`ga.pool.deadline_quarantines`).
    /// Called by [`WorkerPool::map`] when its collection wait times
    /// out; the hung thread itself is left alone (it exits on its own
    /// if the job ever returns), but it no longer counts as live, so
    /// later maps schedule around it.
    fn reap_hung_workers(&self) {
        let now = self.shared.now_ns();
        let deadline_ns = u64::try_from(self.deadline.as_nanos()).unwrap_or(u64::MAX);
        // 3/4 of the deadline, not the full span: a worker stamps its
        // job a scheduling hiccup after the caller starts the deadline
        // clock, so demanding the full duration would let the exact
        // worker that starved this map slip the reap by microseconds.
        let stuck_ns = deadline_ns.saturating_sub(deadline_ns / 4);
        for w in 0..self.shared.workers.len() {
            let busy = self.shared.workers[w].busy_since_ns.load(Ordering::Relaxed);
            if busy != 0 && now.saturating_sub(busy) >= stuck_ns {
                quarantine_worker(&self.shared, w, "deadline", "ga.pool.deadline_quarantines");
            }
        }
    }

    /// Enqueues one job and wakes a worker.
    fn submit(&self, job: Job) {
        let mut state = self.shared.state.lock().expect("pool workers do not poison the lock");
        state.queue.push_back(job);
        drop(state);
        self.shared.available.notify_one();
    }

    /// Applies `f` to every item of `items` across the pool and returns
    /// the results in input order. `f` receives `(index, &item)`.
    ///
    /// The input is shared by [`Arc`] because jobs outlive the call's
    /// stack frame on the worker side; the caller participates in the
    /// drain (work-stealing over a shared index), so the pool threads
    /// are pure extra bandwidth and `threads = 1` degenerates to a plain
    /// inline map. Failed or undelivered items are retried once inline
    /// (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if any item fails twice (its first failure already
    /// consumed the bounded retry) — deterministic poison must surface.
    pub fn map<T, R, F>(&self, items: &Arc<Vec<T>>, f: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        // The map is a span and every helper drain adopts it as causal
        // parent before opening its own — the captured trace shows one
        // `ga.pool.map` fanning out into `ga.pool.drain` children no
        // matter which OS threads the jobs land on (and the adopt/span
        // guards unwind with a panicking item, so quarantined strikes
        // still close their span under the right parent).
        let _map_span = a2a_obs::Span::enter("ga.pool.map");
        let parent = a2a_obs::trace::current();
        let started = a2a_obs::metrics_enabled().then(Instant::now);
        let f = Arc::new(f);
        let next = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<(usize, Option<R>)>();
        // One task per live worker; each drains the shared index until
        // empty. The caller keeps one share for itself, so a fully
        // quarantined pool degrades to a clean inline map.
        let helper_tasks = (self.threads - 1).min(n).min(self.live_workers());
        for _ in 0..helper_tasks {
            let items = Arc::clone(items);
            let f = Arc::clone(&f);
            let next = Arc::clone(&next);
            let tx = tx.clone();
            self.submit(Box::new(move || {
                let _adopted = a2a_obs::trace::adopt(parent);
                let _drain_span = a2a_obs::Span::enter("ga.pool.drain");
                drain_to(&items, &f, &next, &tx);
            }));
        }
        drop(tx);

        let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut attempted = vec![false; n];
        let mut pending = n;
        // Caller participation: claim and run items like a worker, but
        // contain per-item panics locally (the caller has no strike
        // budget to spend — its failures go straight to the retry pass).
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| run_item(f.as_ref(), i, &items[i])));
            attempted[i] = true;
            pending -= 1;
            if let Ok(r) = outcome {
                results[i] = Some(r);
            }
        }
        // Collect helper deliveries until every item was attempted, the
        // helpers all hung up, or the deadline passed (hung worker).
        let deadline = Instant::now() + self.deadline;
        while pending > 0 {
            let timeout = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(timeout) {
                Ok((i, r)) => {
                    if !attempted[i] {
                        attempted[i] = true;
                        pending -= 1;
                    }
                    results[i] = r;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // A worker is wedged. Reclaim its items inline below
                    // and retire every worker stuck past the deadline so
                    // later maps stop feeding a thread that never
                    // delivers.
                    self.reap_hung_workers();
                    break;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break, // retry pass reclaims
            }
        }

        // Bounded retry: every failed or undelivered item gets exactly
        // one more attempt, inline. A second panic propagates.
        let mut retries = 0u64;
        for i in 0..n {
            if results[i].is_none() {
                retries += 1;
                results[i] = Some(run_item(f.as_ref(), i, &items[i]));
            }
        }
        if a2a_obs::metrics_enabled() {
            let reg = a2a_obs::global();
            reg.counter("ga.pool.items").add(n as u64);
            if retries > 0 {
                reg.counter("ga.pool.retries").add(retries);
            }
            if let Some(t0) = started {
                reg.histogram("ga.pool.map.us").record_duration_us(t0.elapsed());
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("the retry pass attempted every item"))
            .collect()
    }
}

/// The sim-facing executor seam: `a2a-sim`'s batch layer cannot name
/// this crate (it would cycle the dependency graph), so it shards work
/// through the [`a2a_sim::Dispatch`] trait and the pool plugs in here.
/// Jobs ride the full [`WorkerPool::map`] watchdog — deadline,
/// panic containment, quarantine — by parking each boxed job in a
/// taken-once slot; a job the pool fails to run leaves its slot's
/// result hole for the batch layer's deterministic inline repair.
impl a2a_sim::Dispatch for WorkerPool {
    fn run_jobs(&self, jobs: Vec<a2a_sim::DispatchJob>) {
        let slots: Arc<Vec<Mutex<Option<a2a_sim::DispatchJob>>>> =
            Arc::new(jobs.into_iter().map(|job| Mutex::new(Some(job))).collect());
        self.map(&slots, |_, slot| {
            // `take` makes the bounded retry a no-op for a job whose
            // first attempt panicked mid-run: dispatch jobs are not
            // idempotent from the pool's point of view, so the hole is
            // left for the caller to repair instead of re-executed.
            if let Some(job) = slot.lock().expect("dispatch slot lock").take() {
                job();
            }
        });
    }

    fn workers(&self) -> usize {
        self.threads().max(1)
    }
}

/// One item application, behind the chaos probe.
fn run_item<T, R>(f: &impl Fn(usize, &T) -> R, i: usize, item: &T) -> R {
    a2a_obs::fault::panic_point("ga.pool.item");
    f(i, item)
}

/// Worker-side drain: pulls indices from `next` and applies `f`,
/// delivering each result individually. A panicking item is delivered
/// as failed *before* the panic resumes — the caller learns which item
/// to retry, and the worker loop above records the strike.
fn drain_to<T, R>(
    items: &Arc<Vec<T>>,
    f: &Arc<impl Fn(usize, &T) -> R>,
    next: &Arc<AtomicUsize>,
    tx: &mpsc::Sender<(usize, Option<R>)>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            return;
        }
        match catch_unwind(AssertUnwindSafe(|| run_item(f.as_ref(), i, &items[i]))) {
            Ok(r) => {
                let _ = tx.send((i, Some(r)));
            }
            Err(payload) => {
                let _ = tx.send((i, None));
                resume_unwind(payload);
            }
        }
    }
}

/// The long-lived worker body: tag, then pop-run until shutdown or
/// quarantine.
fn worker_loop(shared: &PoolShared, w: usize) {
    a2a_obs::set_worker_id(Some(w));
    let mut strikes = 0usize;
    loop {
        // A caller's deadline reap may have retired this worker while it
        // was stuck in a job that eventually returned: honour the flag
        // before taking more work.
        if shared.workers[w].quarantined.load(Ordering::SeqCst) {
            return;
        }
        let job = {
            let mut state = shared.state.lock().expect("pool lock is never poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared
                    .available
                    .wait(state)
                    .expect("pool lock is never poisoned");
            }
        };
        let Some(job) = job else { return };
        // Contain panics to the job; the per-item delivery inside
        // `drain_to` already told the caller which item failed. The busy
        // stamp brackets the job so deadline reaps can tell a wedged
        // worker from an idle one.
        shared.workers[w].busy_since_ns.store(shared.now_ns(), Ordering::Relaxed);
        let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
        shared.workers[w].busy_since_ns.store(0, Ordering::Relaxed);
        if a2a_obs::metrics_enabled() {
            let reg = a2a_obs::global();
            reg.counter("ga.pool.tasks").incr();
            if panicked {
                reg.counter("ga.pool.panics").incr();
            }
        }
        if panicked {
            strikes += 1;
            if strikes >= MAX_STRIKES {
                // Quarantine: this worker has proven unreliable (or the
                // workload deterministically poisonous); retire it and
                // let the pool degrade gracefully.
                quarantine_worker(shared, w, "strikes", "ga.pool.poisoned");
                return;
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Arc<Vec<u64>> = Arc::new((0..1000).collect());
        let doubled = pool.map(&items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_maps() {
        let pool = WorkerPool::new(3);
        for round in 0..20u64 {
            let items: Arc<Vec<u64>> = Arc::new((0..50).collect());
            let got = pool.map(&items, move |_, &x| x + round);
            assert_eq!(got, (round..50 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_thread_pool_runs_inline_without_workers() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.handles.is_empty(), "threads = 1 must not spawn");
        let items: Arc<Vec<u32>> = Arc::new((0..10).collect());
        assert_eq!(pool.map(&items, |i, &x| i as u32 + x), (0..20).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_panics_propagate_directly() {
        // The inline path has no containment or retry: a panicking item
        // surfaces immediately, exactly like a plain iterator map.
        let pool = WorkerPool::new(1);
        let items: Arc<Vec<u32>> = Arc::new((0..4).collect());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                assert!(x != 2, "poisoned item");
                x
            })
        }));
        assert!(result.is_err());
        assert_eq!(pool.map(&items, |_, &x| x), (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let pool = WorkerPool::new(4);
        let empty: Arc<Vec<u32>> = Arc::new(Vec::new());
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        let one: Arc<Vec<u32>> = Arc::new(vec![5]);
        assert_eq!(pool.map(&one, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn worker_panics_are_contained_and_reported() {
        let pool = WorkerPool::new(2);
        let items: Arc<Vec<u32>> = Arc::new((0..8).collect());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                assert!(x != 3, "poisoned item");
                x
            })
        }));
        assert!(result.is_err(), "deterministic poison fails the retry and reaches the caller");
        // The pool survives the panicking job and keeps serving.
        let items: Arc<Vec<u32>> = Arc::new((0..8).collect());
        assert_eq!(pool.map(&items, |_, &x| x), (0..8).collect::<Vec<_>>());
    }

    /// An `f` that panics exactly once per item (first attempt), then
    /// succeeds — the transient-failure shape the bounded retry exists
    /// for.
    fn flaky_once() -> impl Fn(usize, &u64) -> u64 + Send + Sync + 'static {
        let failed: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
        move |i, &x| {
            let fresh = failed.lock().expect("test lock").insert(i);
            assert!(!fresh, "transient failure on first attempt of item {i}");
            x * 10
        }
    }

    #[test]
    fn transient_failures_are_retried_to_completion() {
        // Every item fails its first attempt, wherever it runs — worker
        // drains and the caller's own participation alike — and the
        // bounded retry completes the map. Multiple panics in a single
        // drain are therefore exercised on every run.
        let pool = WorkerPool::new(3).with_task_deadline(Duration::from_secs(10));
        let items: Arc<Vec<u64>> = Arc::new((0..40).collect());
        let got = pool.map(&items, flaky_once());
        assert_eq!(got, (0..40).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_poison_quarantines_workers_and_pool_degrades() {
        let pool = WorkerPool::new(3).with_task_deadline(Duration::from_millis(500));
        assert_eq!(pool.live_workers(), 3);
        // Every map poisons whatever worker claims an odd item; each
        // panicking job is one strike, so workers retire after
        // MAX_STRIKES poisoned maps. The caller observes each map's
        // failure (the retry also hits deterministic poison).
        for _ in 0..12 {
            let items: Arc<Vec<u32>> = Arc::new((0..64).collect());
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.map(&items, |_, &x| {
                    assert!(x % 2 == 0, "poison");
                    x
                })
            }));
            assert!(result.is_err());
            if pool.live_workers() == 0 {
                break;
            }
        }
        assert!(pool.live_workers() < 3, "repeatedly poisoned workers must quarantine");
        // Degraded (possibly to zero helpers), the pool still completes
        // clean maps — inline on the caller if need be.
        let items: Arc<Vec<u32>> = Arc::new((0..100).collect());
        assert_eq!(pool.map(&items, |_, &x| x), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn env_var_overrides_default_deadline() {
        // This test owns A2A_POOL_DEADLINE_MS — nothing else in the
        // suite reads it at pool-construction time.
        std::env::set_var(POOL_DEADLINE_ENV, "250");
        let pool = WorkerPool::new(2);
        assert_eq!(pool.deadline, Duration::from_millis(250));
        std::env::set_var(POOL_DEADLINE_ENV, "not a number");
        let pool = WorkerPool::new(2);
        assert_eq!(pool.deadline, DEFAULT_TASK_DEADLINE, "garbage falls back to the default");
        std::env::remove_var(POOL_DEADLINE_ENV);
        let pool = WorkerPool::new(2);
        assert_eq!(pool.deadline, DEFAULT_TASK_DEADLINE);
        let pool = pool.with_task_deadline(Duration::from_millis(7));
        assert_eq!(pool.deadline, Duration::from_millis(7), "builder still wins over env");
    }

    #[test]
    fn lowered_deadline_quarantines_hung_workers() {
        // Every item wedges when claimed by a pool helper (recognised by
        // the `a2a-pool-*` thread name) but computes instantly on the
        // caller. Both scheduled helpers therefore hang past the lowered
        // deadline, the caller reclaims their items inline, and the reap
        // retires the hung workers.
        let hang = Duration::from_millis(1500);
        let pool = WorkerPool::new(3).with_task_deadline(Duration::from_millis(100));
        assert_eq!(pool.live_workers(), 3);
        let items: Arc<Vec<u64>> = Arc::new((0..8).collect());
        let got = pool.map(&items, move |_, &x| {
            let on_helper = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("a2a-pool-"));
            // Helpers wedge; the caller dawdles just enough per item
            // that the helpers reliably wake and claim work before the
            // caller drains the whole input.
            std::thread::sleep(if on_helper { hang } else { Duration::from_millis(20) });
            x * 3
        });
        assert_eq!(got, (0..8).map(|x| x * 3).collect::<Vec<_>>(), "map still completes");
        assert!(
            pool.live_workers() < 3,
            "workers hung past the deadline must be quarantined (live = {})",
            pool.live_workers()
        );
        // The degraded pool keeps serving clean maps.
        let items: Arc<Vec<u64>> = Arc::new((0..64).collect());
        assert_eq!(pool.map(&items, |_, &x| x + 1), (1..65).collect::<Vec<_>>());
    }

    #[test]
    fn dispatch_runs_every_job_across_threads() {
        use a2a_sim::Dispatch;
        for threads in [1, 3] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.workers(), threads);
            let hits = Arc::new(AtomicUsize::new(0));
            let jobs: Vec<a2a_sim::DispatchJob> = (0..17)
                .map(|_| {
                    let hits = Arc::clone(&hits);
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as a2a_sim::DispatchJob
                })
                .collect();
            pool.run_jobs(jobs);
            assert_eq!(hits.load(Ordering::Relaxed), 17, "threads={threads}");
        }
    }

    #[test]
    fn dispatched_batch_runner_matches_serial() {
        use a2a_grid::GridKind;
        use a2a_sim::{BatchRunner, InitialConfig, WorldConfig};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let runner =
            BatchRunner::from_genome(&cfg, a2a_fsm::best_t_agent(), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        let inits: Vec<InitialConfig> = (0..2 * runner.chunk_size(16) + 5)
            .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng).unwrap())
            .collect();
        let serial = runner.run_all(&inits).unwrap();
        let pool: Arc<dyn a2a_sim::Dispatch> = Arc::new(WorkerPool::new(3));
        let dispatched = runner.with_dispatch(pool).run_all(&inits).unwrap();
        assert_eq!(serial, dispatched);
    }
}

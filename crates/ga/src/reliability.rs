//! Reliability screening (Sect. 4–5): testing a behaviour across agent
//! densities on fresh configuration sets, the step that distinguishes the
//! paper's "reliable" agents from merely fast ones.

use crate::fitness::{Evaluator, FitnessReport};
use a2a_fsm::Genome;
use a2a_sim::{paper_config_set, SimError, WorldConfig};
use serde::{Deserialize, Serialize};

/// Screening result for one agent count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityReport {
    /// Number of agents `k`.
    pub agents: usize,
    /// Aggregated outcome over the configuration set.
    pub report: FitnessReport,
}

/// Full reliability screen of one behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// One entry per screened agent count, in input order.
    pub per_density: Vec<DensityReport>,
}

impl ReliabilityReport {
    /// Whether the behaviour was completely successful on *every*
    /// configuration of *every* density — the paper's bar for a reliable
    /// agent (5 × 1003 + 1003 configurations in their protocol).
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.per_density.iter().all(|d| d.report.is_completely_successful())
    }

    /// Total configurations screened.
    #[must_use]
    pub fn total_configs(&self) -> usize {
        self.per_density.iter().map(|d| d.report.total).sum()
    }
}

/// Screens `genome` on `n_random + 3` configurations for every agent count
/// in `agent_counts` (the paper uses `{2, 4, 8, 16, 32, 256}` with 1000
/// random + 3 manual fields each).
///
/// A generous `t_max` should be used here (unlike evolution's 200) so a
/// slow-but-successful configuration is not misclassified; the paper's
/// Table 1 reports only successful averages.
///
/// # Errors
///
/// Propagates configuration-generation errors (e.g. an agent count
/// exceeding the cell count).
pub fn screen(
    genome: &Genome,
    env: &WorldConfig,
    agent_counts: &[usize],
    n_random: usize,
    seed: u64,
    t_max: u32,
    threads: usize,
) -> Result<ReliabilityReport, SimError> {
    let mut per_density = Vec::with_capacity(agent_counts.len());
    for &k in agent_counts {
        let configs = paper_config_set(env.lattice, env.kind, k, n_random, seed)?;
        let evaluator = Evaluator::new(env.clone(), configs)
            .with_t_max(t_max)
            .with_threads(threads);
        per_density.push(DensityReport { agents: k, report: evaluator.evaluate(genome) });
    }
    Ok(ReliabilityReport { per_density })
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::{best_t_agent, FsmSpec};
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn best_t_agent_is_reliable_on_a_small_screen() {
        let env = WorldConfig::paper(GridKind::Triangulate, 16);
        let report = screen(&best_t_agent(), &env, &[2, 8, 32], 15, 9, 2000, 2).unwrap();
        assert!(report.is_reliable(), "{report:?}");
        assert_eq!(report.per_density.len(), 3);
        // 15 random (+3 manual where representable: k = 2 and 8 fit).
        assert_eq!(report.total_configs(), 18 + 18 + 15);
    }

    #[test]
    fn random_genome_is_usually_unreliable() {
        let env = WorldConfig::paper(GridKind::Triangulate, 16);
        let mut rng = SmallRng::seed_from_u64(123);
        let genome = Genome::random(FsmSpec::paper(GridKind::Triangulate), &mut rng);
        let report = screen(&genome, &env, &[8], 15, 9, 200, 2).unwrap();
        assert!(!report.is_reliable(), "a random FSM solving everything would be a miracle");
    }

    #[test]
    fn screen_rejects_overfull_densities() {
        let env = WorldConfig::paper(GridKind::Triangulate, 4);
        let err = screen(&best_t_agent(), &env, &[17], 2, 0, 100, 1).unwrap_err();
        assert!(matches!(err, SimError::TooManyAgents { .. }));
    }
}

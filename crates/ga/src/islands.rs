//! Island-model evolution ("parallel populations" in the authors' prior
//! work): several independent pools evolving in parallel with periodic
//! migration of the best individuals. Compared against the single-pool
//! procedure in the `ga_convergence` experiment.

use crate::evolve::{Evolution, EvolutionOutcome, GaConfig, Individual, RunControl};
use crate::fitness::Evaluator;
use a2a_fsm::FsmSpec;
use serde::{Deserialize, Serialize};

/// Island-model parameters on top of a per-island [`GaConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IslandConfig {
    /// Number of islands (independent pools).
    pub islands: usize,
    /// Generations between migrations.
    pub epoch: usize,
    /// Individuals sent to the next island (ring topology) per migration.
    pub migrants: usize,
}

impl IslandConfig {
    /// A modest default: 4 islands, migrate 2 individuals every 10
    /// generations.
    #[must_use]
    pub const fn default_ring() -> Self {
        Self { islands: 4, epoch: 10, migrants: 2 }
    }
}

/// Result of an island run: the merged final pools, best island first.
#[derive(Debug, Clone)]
pub struct IslandOutcome {
    /// Per-island outcomes (pool + history), in island order.
    pub islands: Vec<EvolutionOutcome>,
}

impl IslandOutcome {
    /// The globally best individual across all islands.
    ///
    /// # Panics
    ///
    /// Never panics: every island pool is non-empty.
    #[must_use]
    pub fn best(&self) -> &Individual {
        self.islands
            .iter()
            .map(EvolutionOutcome::best)
            .min_by(|a, b| {
                a.report
                    .fitness
                    .partial_cmp(&b.report.fitness)
                    .expect("fitness is never NaN")
            })
            .expect("at least one island")
    }
}

/// A snapshot of the island model at an epoch boundary — everything
/// needed to continue bit-identically. Each epoch is a pure function of
/// the previous epoch's outcomes and derived per-island seeds, so the
/// completed outcomes plus the next epoch index suffice (much coarser
/// than the per-generation [`crate::RunState`], matching the island
/// model's coarser unit of work).
#[derive(Debug, Clone)]
pub struct IslandsState {
    /// The next epoch index the loop would run.
    pub next_epoch: usize,
    /// Per-island outcomes of the last completed epoch.
    pub outcomes: Vec<EvolutionOutcome>,
}

/// What [`run_islands_resumable`] produced.
#[derive(Debug, Clone)]
pub struct ResumableIslands {
    /// The (possibly partial) outcome.
    pub outcome: IslandOutcome,
    /// `false` iff the observer stopped the run before the epoch budget.
    pub completed: bool,
}

/// Runs the island model: each island executes the single-pool procedure
/// for `epoch` generations, then its best `migrants` individuals replace
/// the worst of the next island (ring topology), repeating until the
/// total generation budget of `config.generations` is spent.
///
/// Implementation note: migration is realised by restarting each island's
/// procedure from a seeded pool that includes the migrants; the paper
/// gives no protocol details, so the simplest faithful scheme is used.
/// Each restart re-ranks a pool that was already evaluated in the
/// previous epoch — because every island clones the same [`Evaluator`],
/// they share one worker pool and one fitness cache, so those
/// re-evaluations (and migrants arriving with known fitness) resolve
/// from the cache instead of re-simulating.
///
/// # Panics
///
/// Panics if `island_config.islands == 0` or `migrants` exceeds the pool.
#[must_use]
pub fn run_islands(
    spec: FsmSpec,
    evaluator: &Evaluator,
    config: GaConfig,
    island_config: IslandConfig,
    mut on_epoch: impl FnMut(usize, &[EvolutionOutcome]),
) -> IslandOutcome {
    run_islands_resumable(spec, evaluator, config, island_config, None, |epoch, state| {
        on_epoch(epoch, &state.outcomes);
        RunControl::Continue
    })
    .outcome
}

/// The checkpointable core of the island model: runs from scratch or
/// from a captured [`IslandsState`], reporting every epoch boundary to
/// `on_epoch` with the state that would resume there; the observer can
/// persist it and/or return [`RunControl::Stop`]. A resumed run
/// continues bit-identically (see [`Evolution::run_resumable`]). When
/// `resume` is `Some`, already-completed epochs are not re-reported —
/// and not re-run.
///
/// # Panics
///
/// Panics if `island_config.islands == 0` or `migrants` exceeds the pool.
#[must_use]
pub fn run_islands_resumable(
    spec: FsmSpec,
    evaluator: &Evaluator,
    config: GaConfig,
    island_config: IslandConfig,
    resume: Option<IslandsState>,
    mut on_epoch: impl FnMut(usize, &IslandsState) -> RunControl,
) -> ResumableIslands {
    assert!(island_config.islands > 0, "need at least one island");
    assert!(
        island_config.migrants < config.population,
        "migrants must leave room in the pool"
    );
    let epochs = config.generations.div_ceil(island_config.epoch.max(1));
    let mut stopped = false;

    // Each island evolves with its own seed; between epochs, migrant
    // genomes are injected by boosting the next island's seed pool.
    let (mut outcomes, start_epoch) = match resume {
        Some(state) => (state.outcomes, state.next_epoch),
        None => {
            let outcomes: Vec<EvolutionOutcome> = (0..island_config.islands)
                .map(|i| {
                    let island_cfg = GaConfig {
                        generations: island_config.epoch,
                        seed: config.seed.wrapping_add(i as u64 * 0xA5A5_A5A5),
                        ..config
                    };
                    Evolution::new(spec, evaluator.clone(), island_cfg).run(|_| ())
                })
                .collect();
            let state = IslandsState { next_epoch: 1, outcomes: outcomes.clone() };
            stopped = on_epoch(0, &state) == RunControl::Stop;
            (outcomes, 1)
        }
    };

    for epoch in start_epoch..epochs {
        if stopped {
            break;
        }
        // Epoch span: the per-island `ga.generation` spans opened by
        // `run_seeded` below nest under it in a captured trace.
        let _epoch_span = a2a_obs::Span::enter("ga.epoch");
        let mut next = Vec::with_capacity(island_config.islands);
        for (i, outcome) in outcomes.iter().enumerate() {
            // Receive migrants from the ring predecessor.
            let prev = &outcomes[(i + island_config.islands - 1) % island_config.islands];
            let mut seeds: Vec<_> = outcome
                .pool
                .iter()
                .take(config.population - island_config.migrants)
                .map(|ind| ind.genome.clone())
                .collect();
            seeds.extend(
                prev.pool
                    .iter()
                    .take(island_config.migrants)
                    .map(|ind| ind.genome.clone()),
            );
            let island_cfg = GaConfig {
                generations: island_config.epoch,
                seed: config
                    .seed
                    .wrapping_add(i as u64 * 0xA5A5_A5A5)
                    .wrapping_add(epoch as u64),
                ..config
            };
            next.push(
                Evolution::new(spec, evaluator.clone(), island_cfg)
                    .run_seeded(seeds, |_| ()),
            );
        }
        outcomes = next;
        let state = IslandsState { next_epoch: epoch + 1, outcomes: outcomes.clone() };
        stopped = on_epoch(epoch, &state) == RunControl::Stop;
    }
    ResumableIslands { outcome: IslandOutcome { islands: outcomes }, completed: !stopped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_grid::GridKind;
    use a2a_sim::{paper_config_set, WorldConfig};

    fn setup() -> (FsmSpec, Evaluator) {
        let kind = GridKind::Square;
        let cfg = WorldConfig::paper(kind, 8);
        let configs = paper_config_set(cfg.lattice, kind, 4, 8, 11).unwrap();
        (FsmSpec::paper(kind), Evaluator::new(cfg, configs).with_threads(2))
    }

    #[test]
    fn islands_run_and_report_global_best() {
        let (spec, evaluator) = setup();
        let mut epochs_seen = 0;
        let outcome = run_islands(
            spec,
            &evaluator,
            GaConfig::paper(20, 3),
            IslandConfig { islands: 3, epoch: 5, migrants: 2 },
            |_, islands| {
                assert_eq!(islands.len(), 3);
                epochs_seen += 1;
            },
        );
        assert_eq!(epochs_seen, 4, "20 generations / 5 per epoch");
        assert_eq!(outcome.islands.len(), 3);
        let best = outcome.best();
        // The global best is no worse than any island's best.
        for island in &outcome.islands {
            assert!(best.report.fitness <= island.best().report.fitness);
        }
    }

    #[test]
    fn migration_spreads_good_genomes() {
        let (spec, evaluator) = setup();
        let outcome = run_islands(
            spec,
            &evaluator,
            GaConfig::paper(10, 7),
            IslandConfig { islands: 2, epoch: 5, migrants: 2 },
            |_, _| {},
        );
        // After migration, each island's pool contains at least one genome
        // that also appears in (or descends from) the other island; the
        // weak observable check: fitness spread between islands is small.
        let bests: Vec<f64> = outcome
            .islands
            .iter()
            .map(|i| i.best().report.fitness)
            .collect();
        let spread = bests
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            - bests.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread.is_finite());
    }

    #[test]
    fn islands_share_the_fitness_cache() {
        let (spec, evaluator) = setup();
        // A clone observes the same cache the islands use.
        let probe = evaluator.clone();
        assert_eq!(probe.cache().hits(), 0);
        let _ = run_islands(
            spec,
            &evaluator,
            GaConfig::paper(10, 5),
            IslandConfig { islands: 2, epoch: 5, migrants: 2 },
            |_, _| {},
        );
        // Epoch restarts re-rank already-evaluated pools: with a shared
        // cache those lookups must hit.
        assert!(probe.cache().hits() > 0, "epoch restarts should be cache hits");
        assert!(!probe.cache().is_empty());
    }

    #[test]
    fn interrupted_then_resumed_islands_match_uninterrupted() {
        let (spec, evaluator) = setup();
        let config = GaConfig::paper(15, 9);
        let islands = IslandConfig { islands: 2, epoch: 5, migrants: 1 };
        let full = run_islands(spec, &evaluator, config, islands, |_, _| {});

        let mut captured = None;
        let partial = run_islands_resumable(spec, &evaluator, config, islands, None, |e, state| {
            if e == 1 {
                captured = Some(state.clone());
                RunControl::Stop
            } else {
                RunControl::Continue
            }
        });
        assert!(!partial.completed);

        let resumed = run_islands_resumable(
            spec,
            &evaluator,
            config,
            islands,
            captured,
            |_, _| RunControl::Continue,
        );
        assert!(resumed.completed);
        assert_eq!(resumed.outcome.islands.len(), full.islands.len());
        for (a, b) in resumed.outcome.islands.iter().zip(&full.islands) {
            assert_eq!(a.pool, b.pool, "resumed island pools must be bit-identical");
            assert_eq!(a.history, b.history);
        }
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_rejected() {
        let (spec, evaluator) = setup();
        let _ = run_islands(
            spec,
            &evaluator,
            GaConfig::paper(5, 1),
            IslandConfig { islands: 0, epoch: 5, migrants: 1 },
            |_, _| {},
        );
    }
}

//! The genetic procedure of Sect. 4: a 20-individual pool, mutation-only
//! offspring from the top half, duplicate elimination, truncation and the
//! diversity exchange between pool halves.

use crate::crossover::{one_point, uniform, ReproductionStrategy};
use crate::fitness::{Evaluator, FitnessReport, GenomeEval};
use a2a_fsm::{offspring, FsmSpec, Genome, MutationRates};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the genetic procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Pool size `N` (paper: 20).
    pub population: usize,
    /// Diversity-exchange width `b` (paper: 3 — individuals 7,8,9 swap
    /// with 10,11,12).
    pub exchange_b: usize,
    /// Per-field mutation probabilities (paper: 18 % each).
    pub rates: MutationRates,
    /// Generations to run.
    pub generations: usize,
    /// RNG seed for initial population and mutations.
    pub seed: u64,
    /// How offspring are produced (the paper settled on mutation only).
    pub strategy: ReproductionStrategy,
}

impl GaConfig {
    /// The paper's GA parameters with a caller-chosen generation budget.
    #[must_use]
    pub fn paper(generations: usize, seed: u64) -> Self {
        Self {
            population: 20,
            exchange_b: 3,
            rates: MutationRates::paper(),
            generations,
            seed,
            strategy: ReproductionStrategy::MutationOnly,
        }
    }

    /// The paper's parameters with a different reproduction strategy
    /// (for the crossover comparison the paper describes).
    #[must_use]
    pub fn with_strategy(generations: usize, seed: u64, strategy: ReproductionStrategy) -> Self {
        Self { strategy, ..Self::paper(generations, seed) }
    }
}

/// One ranked individual of the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// The behaviour.
    pub genome: Genome,
    /// Its evaluation on the training configuration set.
    pub report: FitnessReport,
}

/// Per-generation progress record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0 = initial random pool).
    pub generation: usize,
    /// Best (lowest) fitness in the pool.
    pub best_fitness: f64,
    /// Median fitness over the pool.
    pub median_fitness: f64,
    /// Mean fitness over the pool.
    pub mean_fitness: f64,
    /// Successes of the best individual.
    pub best_successes: usize,
    /// Whether the best individual is completely successful.
    pub best_complete: bool,
    /// Mean pairwise Hamming distance of the pool (the diversity the
    /// b=3 exchange is designed to preserve).
    pub pool_diversity: f64,
    /// Duplicate individuals eliminated from the parent/child union
    /// this generation (0 for the initial pool).
    pub duplicates_removed: usize,
    /// Offspring of this generation that made it into the new pool
    /// (mutation acceptance; 0 for the initial pool).
    pub offspring_accepted: usize,
}

impl GenerationStats {
    /// The JSON form used in checkpoints and the `ga.series` artifact.
    #[must_use]
    pub fn to_json(&self) -> a2a_obs::json::Json {
        a2a_obs::json::Json::object()
            .with("generation", self.generation as u64)
            .with("best_fitness", self.best_fitness)
            .with("median_fitness", self.median_fitness)
            .with("mean_fitness", self.mean_fitness)
            .with("best_successes", self.best_successes as u64)
            .with("best_complete", self.best_complete)
            .with("pool_diversity", self.pool_diversity)
            .with("duplicates_removed", self.duplicates_removed as u64)
            .with("offspring_accepted", self.offspring_accepted as u64)
    }

    /// Parses the [`GenerationStats::to_json`] form. Floats round-trip
    /// exactly (the JSON layer prints shortest-round-trip reprs), so a
    /// decoded history is bit-identical to the encoded one.
    ///
    /// # Errors
    ///
    /// A message naming the first missing or mistyped member.
    pub fn from_json(doc: &a2a_obs::json::Json) -> Result<Self, String> {
        use a2a_obs::json::Json;
        let num = |key: &str| {
            doc.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing numeric `{key}`"))
        };
        let int = |key: &str| num(key).map(|v| v as usize);
        let best_complete = match doc.get("best_complete") {
            Some(&Json::Bool(b)) => b,
            _ => return Err("missing boolean `best_complete`".to_string()),
        };
        Ok(Self {
            generation: int("generation")?,
            best_fitness: num("best_fitness")?,
            median_fitness: num("median_fitness")?,
            mean_fitness: num("mean_fitness")?,
            best_successes: int("best_successes")?,
            best_complete,
            pool_diversity: num("pool_diversity")?,
            duplicates_removed: int("duplicates_removed")?,
            offspring_accepted: int("offspring_accepted")?,
        })
    }
}

/// Result of an evolution run.
#[derive(Debug, Clone)]
pub struct EvolutionOutcome {
    /// Final pool, best first.
    pub pool: Vec<Individual>,
    /// Progress per generation (index 0 is the initial pool).
    pub history: Vec<GenerationStats>,
}

impl EvolutionOutcome {
    /// The best individual of the final pool.
    ///
    /// # Panics
    ///
    /// Never panics: the pool is non-empty by construction.
    #[must_use]
    pub fn best(&self) -> &Individual {
        &self.pool[0]
    }

    /// The top completely successful individuals (paper: the "top 3
    /// completely successful FSMs of each run" enter reliability
    /// screening).
    #[must_use]
    pub fn top_completely_successful(&self, n: usize) -> Vec<&Individual> {
        self.pool
            .iter()
            .filter(|i| i.report.is_completely_successful())
            .take(n)
            .collect()
    }
}

/// A snapshot of the procedure at a generation boundary — everything
/// needed to continue the run bit-identically. The loop is driven
/// solely by its [`SmallRng`] and deterministic evaluation, so the RNG
/// state plus the pool in its exact post-exchange order (order is
/// load-bearing: parent selection and duplicate deletion are positional)
/// plus the history so far reproduce the remainder of the run exactly.
///
/// The `a2a-run` crate persists these to disk; see its checkpoint
/// format (`a2a-run/checkpoint/v1`).
#[derive(Debug, Clone)]
pub struct RunState {
    /// RNG state at the boundary ([`SmallRng::state`]).
    pub rng_state: [u64; 4],
    /// The pool exactly as the generation loop left it (post-exchange
    /// order, NOT sorted best-first).
    pub pool: Vec<Individual>,
    /// History up to and including the last completed generation.
    pub history: Vec<GenerationStats>,
    /// The next generation index the loop would run (`generations + 1`
    /// when the run is complete).
    pub next_generation: usize,
}

/// What a boundary observer tells [`Evolution::run_resumable`] to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunControl {
    /// Keep evolving.
    Continue,
    /// Stop at this boundary (simulated kill, external shutdown). The
    /// partial outcome is returned with `completed = false`.
    Stop,
}

/// What [`Evolution::run_resumable`] produced.
#[derive(Debug, Clone)]
pub struct ResumableRun {
    /// The (possibly partial) outcome, pool sorted best-first.
    pub outcome: EvolutionOutcome,
    /// `false` iff the observer stopped the run before the configured
    /// generation budget.
    pub completed: bool,
}

/// The genetic procedure. Owns the evaluator (environment + training
/// configurations) and the GA parameters.
#[derive(Debug)]
pub struct Evolution {
    spec: FsmSpec,
    evaluator: Evaluator,
    config: GaConfig,
}

impl Evolution {
    /// Creates a procedure evolving FSMs of `spec` against `evaluator`.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than 2 or `exchange_b` exceeds
    /// half the population.
    #[must_use]
    pub fn new(spec: FsmSpec, evaluator: Evaluator, config: GaConfig) -> Self {
        assert!(config.population >= 2, "population must hold at least 2 individuals");
        assert!(
            config.exchange_b <= config.population / 2,
            "exchange width b must fit in half the pool"
        );
        Self { spec, evaluator, config }
    }

    /// Runs the procedure, reporting each generation to `on_generation`
    /// (use `|_| ()` to run silently).
    #[must_use]
    pub fn run(&self, on_generation: impl FnMut(&GenerationStats)) -> EvolutionOutcome {
        self.run_seeded(Vec::new(), on_generation)
    }

    /// Like [`Evolution::run`] but starts from the given genomes (topped
    /// up with random FSMs to the pool size) — used by the island model's
    /// migration and for resuming a previous pool.
    ///
    /// # Panics
    ///
    /// Panics if a seed genome's spec differs from the procedure's.
    #[must_use]
    pub fn run_seeded(
        &self,
        seeds: Vec<Genome>,
        mut on_generation: impl FnMut(&GenerationStats),
    ) -> EvolutionOutcome {
        self.run_resumable(None, seeds, |stats, _| {
            on_generation(stats);
            RunControl::Continue
        })
        .outcome
    }

    /// The checkpointable core of the procedure: runs from scratch or
    /// from a captured [`RunState`], reporting every generation boundary
    /// (including generation 0, the ranked initial pool) to
    /// `on_boundary` together with the state that would resume there.
    /// The observer can persist the state and/or return
    /// [`RunControl::Stop`] to end the run at that boundary.
    ///
    /// A run resumed from a boundary state continues the interrupted
    /// run bit-identically: same history, same pool, same best genome
    /// (the fitness cache starting cold does not change results — only
    /// speed). When `resume` is `Some`, `seeds` is ignored and the
    /// already-completed boundaries are not re-reported.
    ///
    /// # Panics
    ///
    /// Panics if a seed genome's spec differs from the procedure's.
    #[must_use]
    pub fn run_resumable(
        &self,
        resume: Option<RunState>,
        seeds: Vec<Genome>,
        mut on_boundary: impl FnMut(&GenerationStats, &RunState) -> RunControl,
    ) -> ResumableRun {
        let n = self.config.population;
        let mut stopped = false;
        let (mut rng, mut pool, mut history, start_generation) = match resume {
            Some(state) => (
                SmallRng::from_state(state.rng_state),
                state.pool,
                state.history,
                state.next_generation,
            ),
            None => {
                let mut rng = SmallRng::seed_from_u64(self.config.seed);
                // Initial pool: the seeds plus random FSMs up to N
                // ("usually there is no FSM in the initial population
                // that is successful").
                for g in &seeds {
                    assert_eq!(g.spec(), self.spec, "seed genome spec mismatch");
                }
                let mut genomes = seeds;
                genomes.truncate(n);
                while genomes.len() < n {
                    genomes.push(Genome::random(self.spec, &mut rng));
                }
                let timer = a2a_obs::metrics_enabled().then(std::time::Instant::now);
                let pool = self.rank(genomes);
                let mut history = Vec::with_capacity(self.config.generations + 1);
                let stats = Self::stats(0, &pool, 0, 0);
                Self::observe(&stats, timer.map(|t| t.elapsed()));
                history.push(stats);
                let state = RunState {
                    rng_state: rng.state(),
                    pool: pool.clone(),
                    history: history.clone(),
                    next_generation: 1,
                };
                stopped = on_boundary(&stats, &state) == RunControl::Stop;
                (rng, pool, history, 1)
            }
        };

        for generation in start_generation..=self.config.generations {
            if stopped {
                break;
            }
            // Each generation is a causal span: evaluation fan-outs
            // (`parallel.map` / `ga.pool.map`) opened below adopt it as
            // parent, so a captured trace groups work by generation.
            let _gen_span = a2a_obs::Span::enter("ga.generation");
            let timer = a2a_obs::metrics_enabled().then(std::time::Instant::now);
            // N/2 offspring from the top N/2 individuals.
            let parents = &pool[..(n / 2).min(pool.len())];
            let children: Vec<Genome> = match self.config.strategy {
                ReproductionStrategy::MutationOnly => parents
                    .iter()
                    .map(|p| offspring(&p.genome, self.config.rates, &mut rng))
                    .collect(),
                ReproductionStrategy::OnePointCrossover
                | ReproductionStrategy::UniformCrossover => (0..parents.len())
                    .map(|i| {
                        // Pair each top parent with a random distinct mate,
                        // then mutate the recombined child.
                        let j = if parents.len() > 1 {
                            let mut j = rng.random_range(0..parents.len() - 1);
                            if j >= i {
                                j += 1;
                            }
                            j
                        } else {
                            i
                        };
                        let child = match self.config.strategy {
                            ReproductionStrategy::OnePointCrossover => {
                                one_point(&parents[i].genome, &parents[j].genome, &mut rng)
                            }
                            _ => uniform(&parents[i].genome, &parents[j].genome, &mut rng),
                        };
                        offspring(&child, self.config.rates, &mut rng)
                    })
                    .collect(),
            };
            let child_digits: std::collections::HashSet<String> =
                children.iter().map(Genome::to_digits).collect();
            let mut union: Vec<Individual> = pool;

            // Adaptive selection (DESIGN.md §8). Children whose digits
            // already occur in the pool would lose duplicate deletion to
            // the pool occurrence (same fitness, earlier position), so
            // they skip evaluation outright; the rest compete for the N
            // slots with bound-based pruning against the pool's distinct
            // exact fitnesses. Selection is provably identical to
            // evaluating every child in full.
            let pool_digits: std::collections::HashSet<String> =
                union.iter().map(|ind| ind.genome.to_digits()).collect();
            let mut incumbent_seen = std::collections::HashSet::new();
            let incumbents: Vec<f64> = union
                .iter()
                .filter(|ind| incumbent_seen.insert(ind.genome.to_digits()))
                .map(|ind| ind.report.fitness)
                .collect();
            let total_entries = union.len() + children.len();
            let fresh: Vec<Genome> = children
                .into_iter()
                .filter(|c| !pool_digits.contains(&c.to_digits()))
                .collect();
            let verdicts = self.evaluator.evaluate_selection(&fresh, n, &incumbents);
            for (genome, verdict) in fresh.into_iter().zip(verdicts) {
                if let GenomeEval::Exact(report) = verdict {
                    union.push(Individual { genome, report });
                }
            }

            // `before − after` of the exhaustive path, computed without
            // materialising the pruned entries: every deleted duplicate
            // is an entry whose digits already occurred.
            let mut all_digits = pool_digits;
            all_digits.extend(child_digits.iter().cloned());
            let duplicates_removed = total_entries - all_digits.len();

            // Sort by fitness, delete duplicates, truncate to N.
            union.sort_by(|a, b| {
                a.report
                    .fitness
                    .partial_cmp(&b.report.fitness)
                    .expect("fitness is never NaN")
            });
            let mut seen = std::collections::HashSet::new();
            union.retain(|ind| seen.insert(ind.genome.to_digits()));
            union.truncate(n);

            // Diversity exchange: the first b individuals of the second
            // half swap with the last b of the first half (7,8,9 ↔
            // 10,11,12 for N = 20, b = 3).
            let b = self.config.exchange_b;
            if b > 0 && union.len() == n {
                let half = n / 2;
                for j in 0..b {
                    union.swap(half - b + j, half + j);
                }
            }

            pool = union;
            let offspring_accepted = pool
                .iter()
                .filter(|i| child_digits.contains(&i.genome.to_digits()))
                .count();
            let stats = Self::stats(generation, &pool, duplicates_removed, offspring_accepted);
            Self::observe(&stats, timer.map(|t| t.elapsed()));
            history.push(stats);
            let state = RunState {
                rng_state: rng.state(),
                pool: pool.clone(),
                history: history.clone(),
                next_generation: generation + 1,
            };
            stopped = on_boundary(&stats, &state) == RunControl::Stop;
        }

        // Report the pool best-first regardless of the final exchange.
        pool.sort_by(|a, b| {
            a.report
                .fitness
                .partial_cmp(&b.report.fitness)
                .expect("fitness is never NaN")
        });
        ResumableRun { outcome: EvolutionOutcome { pool, history }, completed: !stopped }
    }

    fn rank(&self, genomes: Vec<Genome>) -> Vec<Individual> {
        let reports = self.evaluator.evaluate_all(&genomes);
        genomes
            .into_iter()
            .zip(reports)
            .map(|(genome, report)| Individual { genome, report })
            .collect()
    }

    fn stats(
        generation: usize,
        pool: &[Individual],
        duplicates_removed: usize,
        offspring_accepted: usize,
    ) -> GenerationStats {
        let best = pool
            .iter()
            .min_by(|a, b| {
                a.report
                    .fitness
                    .partial_cmp(&b.report.fitness)
                    .expect("fitness is never NaN")
            })
            .expect("pool is never empty");
        let mut fitnesses: Vec<f64> = pool.iter().map(|i| i.report.fitness).collect();
        fitnesses.sort_by(|a, b| a.partial_cmp(b).expect("fitness is never NaN"));
        let genomes: Vec<&Genome> = pool.iter().map(|i| &i.genome).collect();
        GenerationStats {
            generation,
            best_fitness: best.report.fitness,
            median_fitness: fitnesses[fitnesses.len() / 2],
            mean_fitness: fitnesses.iter().sum::<f64>() / fitnesses.len() as f64,
            best_successes: best.report.successes,
            best_complete: best.report.is_completely_successful(),
            pool_diversity: a2a_fsm::pool_diversity(&genomes),
            duplicates_removed,
            offspring_accepted,
        }
    }

    /// Publishes one generation to the observability layer: an
    /// `ga.generation` event at `Info`, plus the per-generation
    /// wall-clock histogram while metrics are on.
    fn observe(stats: &GenerationStats, elapsed: Option<std::time::Duration>) {
        if let Some(d) = elapsed {
            a2a_obs::global().histogram("ga.generation.us").record_duration_us(d);
        }
        a2a_obs::event!(a2a_obs::Level::Info, "ga.generation",
            "generation" => stats.generation,
            "best" => stats.best_fitness,
            "median" => stats.median_fitness,
            "mean" => stats.mean_fitness,
            "best_successes" => stats.best_successes,
            "diversity" => stats.pool_diversity,
            "duplicates_removed" => stats.duplicates_removed,
            "offspring_accepted" => stats.offspring_accepted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_grid::GridKind;
    use a2a_sim::{paper_config_set, WorldConfig};

    fn tiny_evolution(kind: GridKind, generations: usize, seed: u64) -> EvolutionOutcome {
        let cfg = WorldConfig::paper(kind, 8);
        let configs = paper_config_set(cfg.lattice, kind, 4, 12, 5).unwrap();
        let evaluator = Evaluator::new(cfg, configs).with_threads(2);
        let ga = Evolution::new(FsmSpec::paper(kind), evaluator, GaConfig::paper(generations, seed));
        ga.run(|_| ())
    }

    #[test]
    fn fitness_never_worsens_across_generations() {
        let out = tiny_evolution(GridKind::Square, 15, 3);
        let bests: Vec<f64> = out.history.iter().map(|s| s.best_fitness).collect();
        for w in bests.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "elitist pool: best fitness is monotone {bests:?}");
        }
        assert_eq!(out.history.len(), 16);
    }

    #[test]
    fn evolution_improves_over_random_pool() {
        let out = tiny_evolution(GridKind::Triangulate, 25, 11);
        let first = out.history.first().unwrap().best_fitness;
        let last = out.history.last().unwrap().best_fitness;
        assert!(last < first, "no progress: {first} -> {last}");
    }

    #[test]
    fn runs_are_seed_reproducible() {
        let a = tiny_evolution(GridKind::Square, 8, 42);
        let b = tiny_evolution(GridKind::Square, 8, 42);
        assert_eq!(a.best().genome, b.best().genome);
        let hist_a: Vec<f64> = a.history.iter().map(|s| s.best_fitness).collect();
        let hist_b: Vec<f64> = b.history.iter().map(|s| s.best_fitness).collect();
        assert_eq!(hist_a, hist_b);
    }

    #[test]
    fn pool_has_no_duplicates_and_is_sorted() {
        let out = tiny_evolution(GridKind::Square, 10, 7);
        let digits: Vec<String> = out.pool.iter().map(|i| i.genome.to_digits()).collect();
        let mut dedup = digits.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), digits.len(), "duplicates must be deleted");
        for w in out.pool.windows(2) {
            assert!(w[0].report.fitness <= w[1].report.fitness);
        }
    }

    #[test]
    fn stats_carry_median_and_acceptance() {
        let out = tiny_evolution(GridKind::Square, 10, 21);
        for s in &out.history {
            assert!(s.best_fitness <= s.median_fitness, "gen {}", s.generation);
            assert!(s.median_fitness.is_finite());
        }
        let first = &out.history[0];
        assert_eq!((first.duplicates_removed, first.offspring_accepted), (0, 0));
        assert!(
            out.history.iter().skip(1).any(|s| s.offspring_accepted > 0),
            "some offspring must be accepted across 10 generations"
        );
        for s in out.history.iter().skip(1) {
            assert!(s.offspring_accepted <= 10, "at most N/2 children per generation");
        }
    }

    fn tiny_ga(kind: GridKind, generations: usize, seed: u64) -> Evolution {
        let cfg = WorldConfig::paper(kind, 8);
        let configs = paper_config_set(cfg.lattice, kind, 4, 12, 5).unwrap();
        let evaluator = Evaluator::new(cfg, configs).with_threads(2);
        Evolution::new(FsmSpec::paper(kind), evaluator, GaConfig::paper(generations, seed))
    }

    #[test]
    fn interrupted_then_resumed_matches_uninterrupted() {
        let ga = tiny_ga(GridKind::Square, 12, 31);
        let full = ga.run(|_| ());

        // Stop at the generation-5 boundary, carrying the state out.
        let mut captured = None;
        let partial = ga.run_resumable(None, Vec::new(), |stats, state| {
            if stats.generation == 5 {
                captured = Some(state.clone());
                RunControl::Stop
            } else {
                RunControl::Continue
            }
        });
        assert!(!partial.completed);
        assert_eq!(partial.outcome.history.len(), 6, "generations 0..=5 ran");

        // Resume: the continuation must be bit-identical to the
        // uninterrupted run — history, pool, best genome.
        let resumed = ga.run_resumable(captured, Vec::new(), |_, _| RunControl::Continue);
        assert!(resumed.completed);
        assert_eq!(resumed.outcome.history, full.history);
        assert_eq!(resumed.outcome.pool, full.pool);
        assert_eq!(resumed.outcome.best().genome, full.best().genome);
    }

    #[test]
    fn generation_stats_json_round_trips_exactly() {
        let out = tiny_evolution(GridKind::Square, 6, 13);
        for stats in &out.history {
            let back = GenerationStats::from_json(&stats.to_json()).unwrap();
            assert_eq!(&back, stats, "floats must round-trip bit-exactly");
        }
        assert!(GenerationStats::from_json(&a2a_obs::json::Json::object()).is_err());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_population_rejected() {
        let cfg = WorldConfig::paper(GridKind::Square, 8);
        let configs = paper_config_set(cfg.lattice, GridKind::Square, 2, 2, 0).unwrap();
        let _ = Evolution::new(
            FsmSpec::paper(GridKind::Square),
            Evaluator::new(cfg, configs),
            GaConfig { population: 1, ..GaConfig::paper(1, 0) },
        );
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::crossover::ReproductionStrategy;
    use a2a_grid::GridKind;
    use a2a_sim::{paper_config_set, WorldConfig};

    fn run_with(strategy: ReproductionStrategy, seed: u64) -> EvolutionOutcome {
        let kind = GridKind::Square;
        let cfg = WorldConfig::paper(kind, 8);
        let configs = paper_config_set(cfg.lattice, kind, 4, 10, 3).unwrap();
        let ga = Evolution::new(
            FsmSpec::paper(kind),
            Evaluator::new(cfg, configs).with_threads(2),
            GaConfig::with_strategy(12, seed, strategy),
        );
        ga.run(|_| ())
    }

    #[test]
    fn all_strategies_make_progress_and_stay_valid() {
        for strategy in [
            ReproductionStrategy::MutationOnly,
            ReproductionStrategy::OnePointCrossover,
            ReproductionStrategy::UniformCrossover,
        ] {
            let out = run_with(strategy, 77);
            assert!(
                out.history.last().unwrap().best_fitness
                    <= out.history.first().unwrap().best_fitness,
                "{strategy:?}"
            );
            for ind in &out.pool {
                let spec = ind.genome.spec();
                for e in ind.genome.entries() {
                    assert!(e.next_state < spec.n_states, "{strategy:?}");
                }
            }
        }
    }

    #[test]
    fn strategies_explore_differently() {
        let mutation = run_with(ReproductionStrategy::MutationOnly, 5);
        let crossover = run_with(ReproductionStrategy::UniformCrossover, 5);
        assert_ne!(
            mutation.best().genome, crossover.best().genome,
            "same seed, different search trajectories"
        );
    }
}

#[cfg(test)]
mod diversity_tests {
    use super::*;
    use a2a_grid::GridKind;
    use a2a_sim::{paper_config_set, WorldConfig};

    #[test]
    fn diversity_is_tracked_and_decreases_from_random_start() {
        let kind = GridKind::Square;
        let cfg = WorldConfig::paper(kind, 8);
        let configs = paper_config_set(cfg.lattice, kind, 3, 6, 1).unwrap();
        let ga = Evolution::new(
            FsmSpec::paper(kind),
            Evaluator::new(cfg, configs).with_threads(2),
            GaConfig::paper(20, 9),
        );
        let out = ga.run(|_| ());
        let first = out.history.first().unwrap().pool_diversity;
        let last = out.history.last().unwrap().pool_diversity;
        assert!(first > 50.0, "random pools are diverse: {first}");
        assert!(last < first, "selection concentrates the pool: {first} -> {last}");
        assert!(last > 0.0, "the exchange keeps some diversity");
    }
}

//! Crossover operators.
//!
//! The paper: "We experimented with the classical crossover/mutation
//! method. Then we found that mutation only gave us similar good results.
//! So we used here only mutation. It is subject to further research which
//! heuristic is best to evolve state machines." This module supplies the
//! classical operators so that comparison is reproducible
//! (`ga_convergence` binary, E20).

use a2a_fsm::Genome;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// How offspring are produced each generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReproductionStrategy {
    /// Mutation only — the paper's final choice.
    #[default]
    MutationOnly,
    /// One-point crossover of two parents (cut at a random genome entry),
    /// followed by mutation.
    OnePointCrossover,
    /// Uniform crossover (each entry from either parent with probability
    /// ½), followed by mutation.
    UniformCrossover,
}

/// One-point crossover: entries `0..cut` from `a`, the rest from `b`.
///
/// # Panics
///
/// Panics if the parents have different specs.
#[must_use]
pub fn one_point<R: Rng + ?Sized>(a: &Genome, b: &Genome, rng: &mut R) -> Genome {
    assert_eq!(a.spec(), b.spec(), "crossover parents must share a spec");
    let n = a.spec().entry_count();
    let cut = rng.random_range(0..=n);
    let entries = (0..n)
        .map(|i| if i < cut { a.entry(i) } else { b.entry(i) })
        .collect();
    Genome::from_entries(a.spec(), entries)
}

/// Uniform crossover: every entry independently from either parent.
///
/// # Panics
///
/// Panics if the parents have different specs.
#[must_use]
pub fn uniform<R: Rng + ?Sized>(a: &Genome, b: &Genome, rng: &mut R) -> Genome {
    assert_eq!(a.spec(), b.spec(), "crossover parents must share a spec");
    let n = a.spec().entry_count();
    let entries = (0..n)
        .map(|i| if rng.random_bool(0.5) { a.entry(i) } else { b.entry(i) })
        .collect();
    Genome::from_entries(a.spec(), entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::FsmSpec;
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn parents() -> (Genome, Genome) {
        let spec = FsmSpec::paper(GridKind::Triangulate);
        let mut rng = SmallRng::seed_from_u64(1);
        (Genome::random(spec, &mut rng), Genome::random(spec, &mut rng))
    }

    #[test]
    fn one_point_child_is_a_prefix_suffix_mix() {
        let (a, b) = parents();
        let mut rng = SmallRng::seed_from_u64(2);
        let child = one_point(&a, &b, &mut rng);
        // Every entry comes from one of the parents at the same index,
        // and parent origin switches at most once.
        let mut switched = false;
        let mut from_a = true;
        for i in 0..32 {
            let e = child.entry(i);
            if from_a && e != a.entry(i) {
                assert!(!switched, "more than one switch point");
                switched = true;
                from_a = false;
            }
            if !from_a {
                assert_eq!(e, b.entry(i), "suffix must come from b");
            }
        }
    }

    #[test]
    fn uniform_child_entries_come_from_parents() {
        let (a, b) = parents();
        let mut rng = SmallRng::seed_from_u64(3);
        let child = uniform(&a, &b, &mut rng);
        let mut from_a = 0;
        for i in 0..32 {
            let e = child.entry(i);
            assert!(e == a.entry(i) || e == b.entry(i), "entry {i} from neither parent");
            if e == a.entry(i) {
                from_a += 1;
            }
        }
        assert!((4..=28).contains(&from_a), "roughly balanced mix, got {from_a} from a");
    }

    #[test]
    fn crossover_of_identical_parents_is_identity() {
        let (a, _) = parents();
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(one_point(&a, &a, &mut rng), a);
        assert_eq!(uniform(&a, &a, &mut rng), a);
    }

    #[test]
    fn crossover_is_seed_deterministic() {
        let (a, b) = parents();
        let c1 = uniform(&a, &b, &mut SmallRng::seed_from_u64(9));
        let c2 = uniform(&a, &b, &mut SmallRng::seed_from_u64(9));
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "share a spec")]
    fn mismatched_parents_rejected() {
        let a = a2a_fsm::best_t_agent();
        let b = a2a_fsm::best_s_agent();
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = one_point(&a, &b, &mut rng);
    }
}

//! The paper's fitness function (Sect. 4): the dominance combination
//! `F = Σᵢ (W·(N_agents − aᵢ) + t_comm,ᵢ) / N_fields` with `W = 10⁴`,
//! evaluated by simulating the agent system over a set of initial
//! configurations.
//!
//! The [`Evaluator`] is an *adaptive* pipeline (see DESIGN.md §8): a
//! persistent [`WorkerPool`] replaces per-call scoped threads, a
//! [`FitnessCache`] memoizes exact reports by canonical genome digits,
//! and [`Evaluator::evaluate_selection`] prunes hopeless genomes early
//! using provable fitness bounds — all without changing a single
//! reported number relative to the exhaustive path.

use crate::cache::FitnessCache;
use crate::parallel::default_threads_for;
use crate::pool::WorkerPool;
use a2a_fsm::{FsmSpec, Genome};
use a2a_obs::json::Json;
use a2a_sim::{BatchRunner, Behaviour, InitialConfig, RunOutcome, WorldConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The paper's dominance weight `W = 10⁴`.
pub const PAPER_WEIGHT: f64 = 1e4;

/// The paper's simulation horizon during evolution (`t_max = 200`).
pub const PAPER_T_MAX: u32 = 200;

/// Aggregated fitness of one behaviour over a configuration set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessReport {
    /// Mean fitness `F` (lower is better).
    pub fitness: f64,
    /// Number of configurations solved within the horizon.
    pub successes: usize,
    /// Total configurations evaluated.
    pub total: usize,
    /// Mean communication time over the *successful* configurations
    /// (`None` when none succeeded — serialised as JSON `null`).
    pub mean_t_comm: Option<f64>,
}

impl FitnessReport {
    /// "Completely successful": solved every configuration in the set.
    #[must_use]
    pub fn is_completely_successful(&self) -> bool {
        self.successes == self.total && self.total > 0
    }

    fn from_outcomes(outcomes: &[RunOutcome], weight: f64) -> Self {
        let total = outcomes.len();
        let successes = outcomes.iter().filter(|o| o.is_successful()).count();
        let fitness =
            outcomes.iter().map(|o| o.fitness(weight)).sum::<f64>() / total.max(1) as f64;
        let t_sum: u64 = outcomes
            .iter()
            .filter_map(|o| o.t_comm.map(u64::from))
            .sum();
        Self {
            fitness,
            successes,
            total,
            mean_t_comm: (successes > 0).then(|| t_sum as f64 / successes as f64),
        }
    }

    /// Serialises the report as a JSON object (`mean_t_comm` becomes
    /// `null` when no configuration succeeded, keeping the document
    /// valid JSON — `NaN` is not).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("fitness", self.fitness)
            .with("successes", self.successes)
            .with("total", self.total)
            .with(
                "mean_t_comm",
                self.mean_t_comm.map_or(Json::Null, Json::Num),
            )
    }

    /// Parses a report serialised by [`FitnessReport::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming the first missing or mistyped member.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("fitness report missing numeric `{key}`"))
        };
        let mean_t_comm = match doc.get("mean_t_comm") {
            None => return Err("fitness report missing `mean_t_comm`".to_string()),
            Some(Json::Null) => None,
            Some(v) => {
                Some(v.as_f64().ok_or("`mean_t_comm` must be a number or null")?)
            }
        };
        Ok(Self {
            fitness: num("fitness")?,
            successes: num("successes")? as usize,
            total: num("total")? as usize,
            mean_t_comm,
        })
    }
}

/// Records one finished per-genome evaluation into the `ga.eval.us`
/// histogram (microseconds per genome over the full configuration set)
/// and the `ga.evals` counter. Pass the `Instant` captured while
/// metrics were on; the disabled path costs one relaxed atomic load.
fn record_genome_eval(started: Option<std::time::Instant>) {
    if let Some(t0) = started {
        let reg = a2a_obs::global();
        reg.histogram("ga.eval.us").record_duration_us(t0.elapsed());
        reg.counter("ga.evals").incr();
    }
}

/// Exact-or-pruned verdict for one genome, returned by
/// [`Evaluator::evaluate_selection`].
#[derive(Debug, Clone, PartialEq)]
pub enum GenomeEval {
    /// Full-set exact report, bit-identical to [`Evaluator::evaluate`].
    Exact(FitnessReport),
    /// Provably outside the kept set; carries the bounds at pruning
    /// time. Never cached, never reported as a fitness.
    Pruned(PruneBound),
}

impl GenomeEval {
    /// The exact report, if the genome was fully evaluated.
    #[must_use]
    pub fn report(&self) -> Option<&FitnessReport> {
        match self {
            Self::Exact(r) => Some(r),
            Self::Pruned(_) => None,
        }
    }

    /// Whether the genome was pruned.
    #[must_use]
    pub fn is_pruned(&self) -> bool {
        matches!(self, Self::Pruned(_))
    }
}

/// The fitness interval proven for a pruned genome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneBound {
    /// Proven lower bound on the genome's exact mean fitness.
    pub lower: f64,
    /// Proven upper bound on the genome's exact mean fitness.
    pub upper: f64,
    /// Configurations actually simulated before pruning.
    pub configs_run: usize,
}

/// Per-group evaluation state inside `evaluate_selection`.
struct ActiveGroup {
    /// Index into the representative list.
    gid: usize,
    /// Compiled runner, built lazily on the first block.
    runner: Option<BatchRunner>,
    /// Outcomes so far, in configuration order.
    outcomes: Vec<RunOutcome>,
    /// Left-fold partial fitness sum over `outcomes`, in the exact
    /// floating-point order `from_outcomes` uses.
    partial: f64,
}

/// One block-evaluation task shipped to the worker pool.
struct SelTask {
    genome: Genome,
    runner: Option<BatchRunner>,
    from: usize,
    to: usize,
}

/// A reusable fitness evaluator: an environment, a configuration set and
/// the horizon/weight parameters, backed by a persistent worker pool
/// and a genome-fitness cache (both shared by [`Clone`]).
#[derive(Debug, Clone)]
pub struct Evaluator {
    config: WorldConfig,
    configs: Arc<Vec<InitialConfig>>,
    t_max: u32,
    weight: f64,
    threads: usize,
    /// Lazily spawned shared pool; cloning the evaluator (e.g. per
    /// island) shares the same workers.
    pool: Arc<OnceLock<Arc<WorkerPool>>>,
    /// Exact-report memoization, keyed by `(spec, digits)`. Valid only
    /// for this evaluator's `(config, configs, t_max, weight)`, which
    /// is why `with_t_max` swaps in a fresh cache.
    cache: Arc<FitnessCache>,
}

impl Evaluator {
    /// Creates an evaluator with the paper's horizon and weight.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    #[must_use]
    pub fn new(config: WorldConfig, configs: Vec<InitialConfig>) -> Self {
        assert!(!configs.is_empty(), "fitness needs at least one configuration");
        Self {
            config,
            threads: default_threads_for(configs.len()),
            configs: Arc::new(configs),
            t_max: PAPER_T_MAX,
            weight: PAPER_WEIGHT,
            pool: Arc::new(OnceLock::new()),
            cache: Arc::new(FitnessCache::default()),
        }
    }

    /// Overrides the simulation horizon (paper: 200 during evolution).
    /// Cached reports depend on the horizon, so this installs a fresh
    /// cache.
    #[must_use]
    pub fn with_t_max(mut self, t_max: u32) -> Self {
        self.t_max = t_max;
        self.cache = Arc::new(FitnessCache::default());
        self
    }

    /// Overrides the worker-thread count (1 = run inline). Detaches
    /// from any previously shared pool; the cache is kept (results do
    /// not depend on the thread count).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.pool = Arc::new(OnceLock::new());
        self
    }

    /// Shares an existing worker pool (e.g. across the independent runs
    /// of an experiment binary); the thread count follows the pool's.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.threads = pool.threads();
        let slot = OnceLock::new();
        let _ = slot.set(pool);
        self.pool = Arc::new(slot);
        self
    }

    /// Replaces the memoization cache with a fresh one attributed to
    /// `ga.cache.<context>` global metrics (see
    /// [`FitnessCache::with_context`]) — builder-stage only, so no
    /// memoized reports are discarded in flight.
    #[must_use]
    pub fn with_cache_context(mut self, context: &str) -> Self {
        self.cache = Arc::new(FitnessCache::default().with_context(context));
        self
    }

    /// The evaluation environment.
    #[must_use]
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The configuration set.
    #[must_use]
    pub fn configs(&self) -> &[InitialConfig] {
        &self.configs
    }

    /// Simulation horizon.
    #[must_use]
    pub fn t_max(&self) -> u32 {
        self.t_max
    }

    /// The genome-fitness cache backing this evaluator (shared across
    /// clones; exposed for statistics and tests).
    #[must_use]
    pub fn cache(&self) -> &FitnessCache {
        &self.cache
    }

    /// The shared worker pool, spawning it on first use.
    fn pool(&self) -> &Arc<WorkerPool> {
        self.pool.get_or_init(|| Arc::new(WorkerPool::new(self.threads)))
    }

    /// Runs `genome` on every configuration (in parallel) and aggregates
    /// the paper's fitness; memoized on the genome's canonical digits.
    ///
    /// # Panics
    ///
    /// Panics if the genome is incompatible with the environment (wrong
    /// grid kind) — a programming error in GA callers, which construct
    /// genomes from the evaluator's own spec.
    #[must_use]
    pub fn evaluate(&self, genome: &Genome) -> FitnessReport {
        if let Some(report) = self.cache.lookup(genome) {
            return report;
        }
        let report = self.evaluate_behaviour(&Behaviour::Single(genome.clone()));
        self.cache.insert(genome, report);
        report
    }

    /// Runs a full [`Behaviour`] (e.g. a time-shuffled FSM pair) over the
    /// configuration set — the extension of the authors' earlier work.
    /// Uncached (the cache is keyed on single genomes).
    ///
    /// # Panics
    ///
    /// Panics if the behaviour is incompatible with the environment.
    #[must_use]
    pub fn evaluate_behaviour(&self, behaviour: &Behaviour) -> FitnessReport {
        let started = a2a_obs::metrics_enabled().then(std::time::Instant::now);
        // Compile the behaviour once and ride the in-kernel parallel
        // dispatcher: `run_all` itself shards chunk-blocks across the
        // shared worker pool (through the sim-visible `Dispatch` seam)
        // and commits block results in submission order, so the
        // outcome vector — and the fitness — is bit-identical to a
        // serial `run_all`, whatever the thread count.
        let runner = BatchRunner::new(&self.config, behaviour, self.t_max)
            .expect("behaviour and configuration set must match the environment")
            .with_dispatch(Arc::clone(self.pool()) as Arc<dyn a2a_sim::Dispatch>);
        let outcomes = runner
            .run_all(&self.configs)
            .expect("behaviour and configuration set must match the environment");
        record_genome_eval(started);
        FitnessReport::from_outcomes(&outcomes, self.weight)
    }

    /// Evaluates many genomes, parallelising over genomes (better cache
    /// behaviour for whole-population evaluation than per-config
    /// parallelism). Cached genomes — survivors, GA duplicates — skip
    /// simulation entirely; results are identical either way.
    #[must_use]
    pub fn evaluate_all(&self, genomes: &[Genome]) -> Vec<FitnessReport> {
        let mut reports: Vec<Option<FitnessReport>> =
            genomes.iter().map(|g| self.cache.lookup(g)).collect();
        let missing: Vec<(usize, Genome)> = reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| (i, genomes[i].clone()))
            .collect();
        if !missing.is_empty() {
            let config = self.config.clone();
            let configs = Arc::clone(&self.configs);
            let t_max = self.t_max;
            let weight = self.weight;
            let cache = Arc::clone(&self.cache);
            let computed = self.pool().map(&Arc::new(missing), move |_, (slot, g)| {
                let started = a2a_obs::metrics_enabled().then(std::time::Instant::now);
                let runner = BatchRunner::from_genome(&config, g.clone(), t_max)
                    .expect("genome and configuration set must match the environment");
                let outcomes: Vec<RunOutcome> = runner
                    .run_all(&configs)
                    .expect("genome and configuration set must match the environment");
                let report = FitnessReport::from_outcomes(&outcomes, weight);
                record_genome_eval(started);
                cache.insert(g, report);
                (*slot, report)
            });
            for (slot, report) in computed {
                reports[slot] = Some(report);
            }
        }
        reports
            .into_iter()
            .map(|r| r.expect("every genome was resolved from cache or simulation"))
            .collect()
    }

    /// Evaluates `genomes` as candidates competing for the `keep`
    /// lowest-fitness slots of a pool whose current members have the
    /// exact fitnesses `incumbents`, pruning candidates that provably
    /// cannot make the cut.
    ///
    /// Configurations are run in growing blocks. After each block a
    /// candidate's exact mean fitness `F` is bracketed by
    /// `[fl(partial / N), fl(fold(partial, worstⱼ…) / N)]`, where
    /// `partial` is the left-fold of the per-configuration fitnesses in
    /// set order (the exact float order `FitnessReport` uses, so the
    /// bound brackets the *computed* value, not just the real-valued
    /// sum) and `worstⱼ = W·kⱼ + t_max` bounds configuration `j` from
    /// above. A candidate is pruned once at least `keep` digit-distinct
    /// competitors (incumbents, finished candidates, or other active
    /// candidates via their upper bounds) are *strictly* below its
    /// lower bound — then even under worst-case tie-breaking it cannot
    /// be among the `keep` best, so dropping it cannot change selection
    /// (see DESIGN.md §8 for the argument). Surviving candidates finish
    /// the full set and return reports bit-identical to
    /// [`Evaluator::evaluate`].
    ///
    /// Preconditions (asserted nowhere, relied on by the proof): the
    /// `incumbents` values belong to genomes digit-distinct from each
    /// other and from every genome in `genomes`. Duplicate digits
    /// *within* `genomes` are fine — they share one verdict.
    ///
    /// # Panics
    ///
    /// Panics if a genome is incompatible with the environment.
    #[must_use]
    pub fn evaluate_selection(
        &self,
        genomes: &[Genome],
        keep: usize,
        incumbents: &[f64],
    ) -> Vec<GenomeEval> {
        if genomes.is_empty() {
            return Vec::new();
        }
        let n_cfg = self.configs.len();
        // Group by canonical digits: duplicates share one evaluation
        // and one verdict.
        let mut group_of: Vec<usize> = Vec::with_capacity(genomes.len());
        let mut reps: Vec<usize> = Vec::new();
        let mut by_key: HashMap<(FsmSpec, String), usize> = HashMap::new();
        for (i, g) in genomes.iter().enumerate() {
            let gid = *by_key.entry((g.spec(), g.to_digits())).or_insert_with(|| {
                reps.push(i);
                reps.len() - 1
            });
            group_of.push(gid);
        }

        let mut verdicts: Vec<Option<GenomeEval>> = vec![None; reps.len()];
        let mut active: Vec<ActiveGroup> = Vec::new();
        for (gid, &rep) in reps.iter().enumerate() {
            if let Some(report) = self.cache.lookup(&genomes[rep]) {
                verdicts[gid] = Some(GenomeEval::Exact(report));
            } else {
                active.push(ActiveGroup {
                    gid,
                    runner: None,
                    outcomes: Vec::with_capacity(n_cfg),
                    partial: 0.0,
                });
            }
        }

        // Per-configuration worst-case fitness: no agent informed, full
        // horizon charged.
        let worst: Vec<f64> = self
            .configs
            .iter()
            .map(|c| self.weight * c.agent_count() as f64 + f64::from(self.t_max))
            .collect();
        let total = n_cfg as f64;
        let metrics = a2a_obs::metrics_enabled();

        let mut done = 0usize;
        while !active.is_empty() && done < n_cfg {
            // Geometric schedule: a small probing block, then doubling —
            // hopeless genomes die cheaply, survivors pay ~2x block
            // overhead at most.
            let block = if done == 0 {
                let probe = (n_cfg / 16).max(4);
                if probe > n_cfg { n_cfg } else { probe }
            } else {
                done.min(n_cfg - done)
            };
            let to = done + block;

            let tasks: Arc<Vec<SelTask>> = Arc::new(
                active
                    .iter()
                    .map(|a| SelTask {
                        genome: genomes[reps[a.gid]].clone(),
                        runner: a.runner.clone(),
                        from: done,
                        to,
                    })
                    .collect(),
            );
            let config = self.config.clone();
            let configs = Arc::clone(&self.configs);
            let t_max = self.t_max;
            let results: Vec<(BatchRunner, Vec<RunOutcome>)> =
                self.pool().map(&tasks, move |_, task| {
                    let runner = task.runner.clone().unwrap_or_else(|| {
                        BatchRunner::from_genome(&config, task.genome.clone(), t_max)
                            .expect("genome and configuration set must match the environment")
                    });
                    // One lockstep batch per block: bit-identical to
                    // per-config runs, so the bounds (and therefore
                    // selection) are unchanged.
                    let outcomes: Vec<RunOutcome> = runner
                        .run_all(&configs[task.from..task.to])
                        .expect("genome and configuration set must match the environment");
                    (runner, outcomes)
                });
            for (a, (runner, outcomes)) in active.iter_mut().zip(results) {
                a.runner = Some(runner);
                for o in &outcomes {
                    // Continue the exact left-fold order of
                    // `from_outcomes`: 0.0 + f₀ + f₁ + …
                    a.partial += o.fitness(self.weight);
                }
                a.outcomes.extend(outcomes);
            }
            done = to;
            if done >= n_cfg {
                break;
            }

            // Bounds per active group (see the doc comment): the upper
            // bound folds each remaining worst-case term sequentially,
            // so round-to-nearest monotonicity applies per addition.
            let bounds: Vec<(f64, f64)> = active
                .iter()
                .map(|a| {
                    let lower = a.partial / total;
                    let mut acc = a.partial;
                    for w in &worst[done..] {
                        acc += *w;
                    }
                    (lower, acc / total)
                })
                .collect();
            let mut finished_uppers: Vec<f64> = incumbents.to_vec();
            for v in verdicts.iter().flatten() {
                if let GenomeEval::Exact(r) = v {
                    finished_uppers.push(r.fitness);
                }
            }
            let mut kept = Vec::with_capacity(active.len());
            for (idx, a) in active.into_iter().enumerate() {
                let (lower, upper) = bounds[idx];
                let strictly_better = finished_uppers.iter().filter(|&&u| u < lower).count()
                    + bounds
                        .iter()
                        .enumerate()
                        .filter(|&(j, &(_, u))| j != idx && u < lower)
                        .count();
                if strictly_better >= keep {
                    if metrics {
                        let reg = a2a_obs::global();
                        reg.counter("ga.pruned.genomes").incr();
                        reg.counter("ga.pruned.configs").add((n_cfg - done) as u64);
                    }
                    verdicts[a.gid] =
                        Some(GenomeEval::Pruned(PruneBound { lower, upper, configs_run: done }));
                } else {
                    kept.push(a);
                }
            }
            active = kept;
        }

        // Survivors ran the full set: rebuild the exact report from the
        // in-order outcomes (bit-identical to `evaluate`) and cache it.
        for a in active {
            let report = FitnessReport::from_outcomes(&a.outcomes, self.weight);
            self.cache.insert(&genomes[reps[a.gid]], report);
            verdicts[a.gid] = Some(GenomeEval::Exact(report));
        }
        group_of
            .into_iter()
            .map(|gid| {
                verdicts[gid].clone().expect("every digit group resolved to a verdict")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::{best_s_agent, best_t_agent, FsmSpec};
    use a2a_grid::GridKind;
    use a2a_sim::paper_config_set;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn evaluator(kind: GridKind, k: usize, n: usize) -> Evaluator {
        let cfg = WorldConfig::paper(kind, 16);
        let configs = paper_config_set(cfg.lattice, kind, k, n, 7).unwrap();
        Evaluator::new(cfg, configs)
    }

    #[test]
    fn best_agents_are_completely_successful_on_small_sets() {
        for (kind, genome) in [
            (GridKind::Square, best_s_agent()),
            (GridKind::Triangulate, best_t_agent()),
        ] {
            let eval = evaluator(kind, 8, 30);
            let report = eval.evaluate(&genome);
            assert!(report.is_completely_successful(), "{kind}: {report:?}");
            // Completely successful ⇒ fitness equals mean t_comm.
            let mean = report.mean_t_comm.unwrap();
            assert!((report.fitness - mean).abs() < 1e-9);
            assert!(mean < 150.0);
        }
    }

    #[test]
    fn random_genomes_rank_below_best() {
        let eval = evaluator(GridKind::Triangulate, 8, 20);
        let mut rng = SmallRng::seed_from_u64(0);
        let random = Genome::random(FsmSpec::paper(GridKind::Triangulate), &mut rng);
        let best = eval.evaluate(&best_t_agent());
        let rnd = eval.evaluate(&random);
        assert!(best.fitness < rnd.fitness, "best {best:?} vs random {rnd:?}");
    }

    #[test]
    fn evaluate_all_matches_evaluate() {
        let eval = evaluator(GridKind::Square, 4, 10).with_threads(2);
        let mut rng = SmallRng::seed_from_u64(1);
        let genomes: Vec<Genome> = (0..4)
            .map(|_| Genome::random(FsmSpec::paper(GridKind::Square), &mut rng))
            .collect();
        let batch = eval.evaluate_all(&genomes);
        for (g, r) in genomes.iter().zip(&batch) {
            assert_eq!(&eval.evaluate(g), r);
        }
    }

    #[test]
    fn failed_configs_dominate_fitness() {
        // With horizon 0 nothing can be solved unless already adjacent.
        let eval = evaluator(GridKind::Square, 8, 10).with_t_max(0);
        let report = eval.evaluate(&best_s_agent());
        assert!(!report.is_completely_successful());
        assert!(report.fitness >= PAPER_WEIGHT, "dominance term kicks in");
        assert_eq!(report.mean_t_comm, None, "no success, no mean");
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_config_set_rejected() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let _ = Evaluator::new(cfg, Vec::new());
    }

    #[test]
    fn report_json_round_trips() {
        let solved = FitnessReport {
            fitness: 42.5,
            successes: 30,
            total: 30,
            mean_t_comm: Some(42.5),
        };
        let back = FitnessReport::from_json(&solved.to_json()).unwrap();
        assert_eq!(back, solved);

        // The zero-success report used to serialise `NaN`, which is not
        // valid JSON; it must round-trip through `null` instead.
        let failed = FitnessReport {
            fitness: PAPER_WEIGHT * 8.0,
            successes: 0,
            total: 30,
            mean_t_comm: None,
        };
        let text = failed.to_json().to_string();
        assert!(text.contains("\"mean_t_comm\":null"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
        let parsed = a2a_obs::json::parse(&text).unwrap();
        assert_eq!(FitnessReport::from_json(&parsed).unwrap(), failed);
    }

    #[test]
    fn evaluate_is_memoized() {
        let eval = evaluator(GridKind::Square, 4, 10);
        let genome = best_s_agent();
        let first = eval.evaluate(&genome);
        let hits_before = eval.cache().hits();
        let second = eval.evaluate(&genome);
        assert_eq!(first, second);
        assert_eq!(eval.cache().hits(), hits_before + 1, "second call hits the cache");
    }

    #[test]
    fn selection_matches_exhaustive_ranking() {
        // Small smoke check; the heavy differential test lives in
        // tests/equivalence.rs.
        let eval = evaluator(GridKind::Triangulate, 4, 12).with_threads(2);
        let spec = FsmSpec::paper(GridKind::Triangulate);
        let mut rng = SmallRng::seed_from_u64(9);
        let genomes: Vec<Genome> = (0..6).map(|_| Genome::random(spec, &mut rng)).collect();
        let exhaustive = evaluator(GridKind::Triangulate, 4, 12).evaluate_all(&genomes);
        let verdicts = eval.evaluate_selection(&genomes, 2, &[]);
        let mut order: Vec<usize> = (0..genomes.len()).collect();
        order.sort_by(|&a, &b| exhaustive[a].fitness.total_cmp(&exhaustive[b].fitness));
        for &i in &order[..2] {
            match &verdicts[i] {
                GenomeEval::Exact(r) => assert_eq!(r, &exhaustive[i]),
                GenomeEval::Pruned(b) => panic!("top genome pruned: {b:?}"),
            }
        }
        for (i, v) in verdicts.iter().enumerate() {
            if let GenomeEval::Exact(r) = v {
                assert_eq!(r, &exhaustive[i], "exact verdicts are bit-identical");
            }
        }
    }

    #[test]
    fn duplicate_genomes_share_one_verdict() {
        let eval = evaluator(GridKind::Square, 4, 10);
        let g = best_s_agent();
        let verdicts = eval.evaluate_selection(&[g.clone(), g.clone()], 1, &[]);
        assert_eq!(verdicts[0], verdicts[1]);
        assert!(!verdicts[0].is_pruned());
    }
}

//! The paper's fitness function (Sect. 4): the dominance combination
//! `F = Σᵢ (W·(N_agents − aᵢ) + t_comm,ᵢ) / N_fields` with `W = 10⁴`,
//! evaluated by simulating the agent system over a set of initial
//! configurations.

use crate::parallel::{default_threads_for, parallel_map};
use a2a_fsm::Genome;
use a2a_sim::{BatchRunner, Behaviour, InitialConfig, RunOutcome, WorldConfig};
use serde::{Deserialize, Serialize};

/// The paper's dominance weight `W = 10⁴`.
pub const PAPER_WEIGHT: f64 = 1e4;

/// The paper's simulation horizon during evolution (`t_max = 200`).
pub const PAPER_T_MAX: u32 = 200;

/// Aggregated fitness of one behaviour over a configuration set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessReport {
    /// Mean fitness `F` (lower is better).
    pub fitness: f64,
    /// Number of configurations solved within the horizon.
    pub successes: usize,
    /// Total configurations evaluated.
    pub total: usize,
    /// Mean communication time over the *successful* configurations
    /// (`NaN` when none succeeded).
    pub mean_t_comm: f64,
}

impl FitnessReport {
    /// "Completely successful": solved every configuration in the set.
    #[must_use]
    pub fn is_completely_successful(&self) -> bool {
        self.successes == self.total && self.total > 0
    }

    fn from_outcomes(outcomes: &[RunOutcome], weight: f64) -> Self {
        let total = outcomes.len();
        let successes = outcomes.iter().filter(|o| o.is_successful()).count();
        let fitness =
            outcomes.iter().map(|o| o.fitness(weight)).sum::<f64>() / total.max(1) as f64;
        let t_sum: u64 = outcomes
            .iter()
            .filter_map(|o| o.t_comm.map(u64::from))
            .sum();
        Self {
            fitness,
            successes,
            total,
            mean_t_comm: t_sum as f64 / successes as f64,
        }
    }
}

/// Times one evaluation batch into the `ga.eval.us` histogram and the
/// `ga.evals` counter — armed only while metrics are on, so the
/// disabled path costs a single relaxed atomic load.
#[derive(Debug)]
struct EvalTimer(Option<std::time::Instant>);

impl EvalTimer {
    fn start() -> Self {
        Self(a2a_obs::metrics_enabled().then(std::time::Instant::now))
    }

    /// Records the batch: per-genome wall-clock (total / `evals`) into
    /// the histogram, `evals` onto the counter.
    fn finish(self, evals: u64) {
        if let Some(started) = self.0 {
            let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            if let Some(per_eval) = us.checked_div(evals) {
                let reg = a2a_obs::global();
                reg.histogram("ga.eval.us").record(per_eval);
                reg.counter("ga.evals").add(evals);
            }
        }
    }
}

/// A reusable fitness evaluator: an environment, a configuration set and
/// the horizon/weight parameters.
#[derive(Debug, Clone)]
pub struct Evaluator {
    config: WorldConfig,
    configs: Vec<InitialConfig>,
    t_max: u32,
    weight: f64,
    threads: usize,
}

impl Evaluator {
    /// Creates an evaluator with the paper's horizon and weight.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    #[must_use]
    pub fn new(config: WorldConfig, configs: Vec<InitialConfig>) -> Self {
        assert!(!configs.is_empty(), "fitness needs at least one configuration");
        Self {
            config,
            threads: default_threads_for(configs.len()),
            configs,
            t_max: PAPER_T_MAX,
            weight: PAPER_WEIGHT,
        }
    }

    /// Overrides the simulation horizon (paper: 200 during evolution).
    #[must_use]
    pub fn with_t_max(mut self, t_max: u32) -> Self {
        self.t_max = t_max;
        self
    }

    /// Overrides the worker-thread count (1 = run inline).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The evaluation environment.
    #[must_use]
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The configuration set.
    #[must_use]
    pub fn configs(&self) -> &[InitialConfig] {
        &self.configs
    }

    /// Simulation horizon.
    #[must_use]
    pub fn t_max(&self) -> u32 {
        self.t_max
    }

    /// Runs `genome` on every configuration (in parallel) and aggregates
    /// the paper's fitness.
    ///
    /// # Panics
    ///
    /// Panics if the genome is incompatible with the environment (wrong
    /// grid kind) — a programming error in GA callers, which construct
    /// genomes from the evaluator's own spec.
    #[must_use]
    pub fn evaluate(&self, genome: &Genome) -> FitnessReport {
        self.evaluate_behaviour(&Behaviour::Single(genome.clone()))
    }

    /// Runs a full [`Behaviour`] (e.g. a time-shuffled FSM pair) over the
    /// configuration set — the extension of the authors' earlier work.
    ///
    /// # Panics
    ///
    /// Panics if the behaviour is incompatible with the environment.
    #[must_use]
    pub fn evaluate_behaviour(&self, behaviour: &Behaviour) -> FitnessReport {
        let timer = EvalTimer::start();
        // Compile the behaviour once; the runner is Sync, so the
        // per-configuration runs fan out over the worker threads.
        let runner = BatchRunner::new(&self.config, behaviour, self.t_max)
            .expect("behaviour and configuration set must match the environment");
        let outcomes = parallel_map(&self.configs, self.threads, |init| {
            runner
                .outcome_for(init)
                .expect("behaviour and configuration set must match the environment")
        });
        timer.finish(1);
        FitnessReport::from_outcomes(&outcomes, self.weight)
    }

    /// Evaluates many genomes, parallelising over genomes (better cache
    /// behaviour for whole-population evaluation than per-config
    /// parallelism).
    #[must_use]
    pub fn evaluate_all(&self, genomes: &[Genome]) -> Vec<FitnessReport> {
        let timer = EvalTimer::start();
        let reports = parallel_map(genomes, self.threads, |g| {
            let runner = BatchRunner::from_genome(&self.config, g.clone(), self.t_max)
                .expect("genome and configuration set must match the environment");
            let outcomes: Vec<RunOutcome> = runner
                .run_all(&self.configs)
                .expect("genome and configuration set must match the environment");
            FitnessReport::from_outcomes(&outcomes, self.weight)
        });
        timer.finish(genomes.len() as u64);
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::{best_s_agent, best_t_agent, FsmSpec};
    use a2a_grid::GridKind;
    use a2a_sim::paper_config_set;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn evaluator(kind: GridKind, k: usize, n: usize) -> Evaluator {
        let cfg = WorldConfig::paper(kind, 16);
        let configs = paper_config_set(cfg.lattice, kind, k, n, 7).unwrap();
        Evaluator::new(cfg, configs)
    }

    #[test]
    fn best_agents_are_completely_successful_on_small_sets() {
        for (kind, genome) in [
            (GridKind::Square, best_s_agent()),
            (GridKind::Triangulate, best_t_agent()),
        ] {
            let eval = evaluator(kind, 8, 30);
            let report = eval.evaluate(&genome);
            assert!(report.is_completely_successful(), "{kind}: {report:?}");
            // Completely successful ⇒ fitness equals mean t_comm.
            assert!((report.fitness - report.mean_t_comm).abs() < 1e-9);
            assert!(report.mean_t_comm < 150.0);
        }
    }

    #[test]
    fn random_genomes_rank_below_best() {
        let eval = evaluator(GridKind::Triangulate, 8, 20);
        let mut rng = SmallRng::seed_from_u64(0);
        let random = Genome::random(FsmSpec::paper(GridKind::Triangulate), &mut rng);
        let best = eval.evaluate(&best_t_agent());
        let rnd = eval.evaluate(&random);
        assert!(best.fitness < rnd.fitness, "best {best:?} vs random {rnd:?}");
    }

    #[test]
    fn evaluate_all_matches_evaluate() {
        let eval = evaluator(GridKind::Square, 4, 10).with_threads(2);
        let mut rng = SmallRng::seed_from_u64(1);
        let genomes: Vec<Genome> = (0..4)
            .map(|_| Genome::random(FsmSpec::paper(GridKind::Square), &mut rng))
            .collect();
        let batch = eval.evaluate_all(&genomes);
        for (g, r) in genomes.iter().zip(&batch) {
            assert_eq!(&eval.evaluate(g), r);
        }
    }

    #[test]
    fn failed_configs_dominate_fitness() {
        // With horizon 0 nothing can be solved unless already adjacent.
        let eval = evaluator(GridKind::Square, 8, 10).with_t_max(0);
        let report = eval.evaluate(&best_s_agent());
        assert!(!report.is_completely_successful());
        assert!(report.fitness >= PAPER_WEIGHT, "dominance term kicks in");
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_config_set_rejected() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let _ = Evaluator::new(cfg, Vec::new());
    }
}

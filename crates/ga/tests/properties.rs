//! Property-based tests of the genetic procedure's invariants.

use a2a_fsm::{FsmSpec, Genome};
use a2a_ga::{
    one_point, uniform, Evaluator, Evolution, GaConfig, ReproductionStrategy,
};
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, WorldConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn tiny_evaluator(kind: GridKind, seed: u64) -> Evaluator {
    let cfg = WorldConfig::paper(kind, 8);
    let configs = paper_config_set(cfg.lattice, kind, 3, 4, seed).unwrap();
    Evaluator::new(cfg, configs).with_threads(1).with_t_max(60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pool is always sorted, duplicate-free and within the size
    /// limit after any number of generations, for any strategy and seed.
    #[test]
    fn pool_invariants_hold(
        seed in any::<u64>(),
        generations in 1usize..6,
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            ReproductionStrategy::MutationOnly,
            ReproductionStrategy::OnePointCrossover,
            ReproductionStrategy::UniformCrossover,
        ][strategy_idx];
        let kind = GridKind::Square;
        let ga = Evolution::new(
            FsmSpec::paper(kind),
            tiny_evaluator(kind, seed),
            GaConfig { population: 8, exchange_b: 2, ..GaConfig::with_strategy(generations, seed, strategy) },
        );
        let out = ga.run(|_| ());
        prop_assert!(out.pool.len() <= 8);
        let mut digits: Vec<String> = out.pool.iter().map(|i| i.genome.to_digits()).collect();
        let before = digits.len();
        digits.sort();
        digits.dedup();
        prop_assert_eq!(digits.len(), before, "no duplicates");
        for w in out.pool.windows(2) {
            prop_assert!(w[0].report.fitness <= w[1].report.fitness);
        }
        // Elitism: the best fitness is non-increasing over history.
        for w in out.history.windows(2) {
            prop_assert!(w[1].best_fitness <= w[0].best_fitness + 1e-9);
        }
    }

    /// Crossover children always draw each entry from one of the parents.
    #[test]
    fn crossover_children_are_mixtures(seed in any::<u64>()) {
        let spec = FsmSpec::paper(GridKind::Triangulate);
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = Genome::random(spec, &mut rng);
        let b = Genome::random(spec, &mut rng);
        for child in [one_point(&a, &b, &mut rng), uniform(&a, &b, &mut rng)] {
            for i in 0..spec.entry_count() {
                let e = child.entry(i);
                prop_assert!(e == a.entry(i) || e == b.entry(i));
            }
        }
    }

    /// Fitness evaluation is thread-count invariant: 1 worker and 3
    /// workers produce identical reports.
    #[test]
    fn evaluation_is_thread_invariant(seed in any::<u64>()) {
        let kind = GridKind::Triangulate;
        let cfg = WorldConfig::paper(kind, 8);
        let configs = paper_config_set(cfg.lattice, kind, 3, 6, seed).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let genome = Genome::random(FsmSpec::paper(kind), &mut rng);
        let seq = Evaluator::new(cfg.clone(), configs.clone())
            .with_threads(1)
            .with_t_max(80)
            .evaluate(&genome);
        let par = Evaluator::new(cfg, configs)
            .with_threads(3)
            .with_t_max(80)
            .evaluate(&genome);
        prop_assert_eq!(seq.fitness, par.fitness);
        prop_assert_eq!(seq.successes, par.successes);
        prop_assert_eq!(seq.total, par.total);
        // mean_t_comm is None when nothing succeeded, so plain equality
        // covers the all-failed case too.
        prop_assert_eq!(seq.mean_t_comm, par.mean_t_comm);
    }

    /// Seeded evolutions are bit-for-bit reproducible.
    #[test]
    fn evolution_is_reproducible(seed in any::<u64>()) {
        let kind = GridKind::Square;
        let run = || {
            Evolution::new(
                FsmSpec::paper(kind),
                tiny_evaluator(kind, seed),
                GaConfig { population: 6, exchange_b: 1, ..GaConfig::paper(3, seed) },
            )
            .run(|_| ())
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(
            a.pool.iter().map(|i| i.genome.to_digits()).collect::<Vec<_>>(),
            b.pool.iter().map(|i| i.genome.to_digits()).collect::<Vec<_>>()
        );
    }
}

//! Differential test of the causal trace profiler: the parent/child
//! span tree captured while `parallel_map` and `WorkerPool::map` run
//! must match the *logical* task graph those schedulers execute — one
//! map span fanning out into per-worker child spans — including the
//! panic/quarantine path, where a worker's drain job unwinds mid-item
//! and its span must still close under the right parent.
//!
//! Capture is process-global, so the tests serialise through one mutex.

use a2a_ga::{parallel_map, WorkerPool, MAX_STRIKES};
use a2a_obs::trace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

static CAPTURE_GUARD: Mutex<()> = Mutex::new(());

/// Ids of all spans named `name`, in capture order.
fn ids_of(t: &trace::Trace, name: &str) -> Vec<u64> {
    t.spans.iter().filter(|s| s.name == name).map(|s| s.id).collect()
}

fn span(t: &trace::Trace, id: u64) -> &trace::SpanRecord {
    t.spans.iter().find(|s| s.id == id).expect("span is captured")
}

#[test]
fn parallel_map_trace_matches_the_fork_join_graph() {
    let _guard = CAPTURE_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let threads = 4;
    let items: Vec<u64> = (0..64).collect();

    trace::start_capture();
    let doubled = parallel_map(&items, threads, |&x| x * 2);
    let t = trace::take_capture();

    assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    let maps = ids_of(&t, "parallel.map");
    assert_eq!(maps.len(), 1, "one map call, one map span");
    let workers = ids_of(&t, "parallel.worker");
    assert_eq!(workers.len(), threads, "one worker span per scoped thread");
    for w in &workers {
        assert_eq!(span(&t, *w).parent, maps[0], "every worker is a child of the map");
    }
    // The reconstructed tree is exactly {map → workers}: the map is a
    // root and its child set is the worker set.
    let children = t.children();
    assert!(t.roots().contains(&maps[0]));
    let mut got = children.get(&maps[0]).cloned().unwrap_or_default();
    let mut want = workers.clone();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);
    // Worker spans carry the worker tag the scheduler assigned.
    let mut tags: Vec<usize> =
        workers.iter().filter_map(|w| span(&t, *w).worker).collect();
    tags.sort_unstable();
    assert_eq!(tags, (0..threads).collect::<Vec<_>>());
}

#[test]
fn pool_trace_matches_the_task_graph_through_panics_and_quarantine() {
    let _guard = CAPTURE_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // A 2-thread pool spawns two workers but submits only one drain job
    // per map (`threads - 1`); a panicking round therefore adds exactly
    // one strike to *some* worker, and after `2 × MAX_STRIKES` such
    // rounds both workers have necessarily quarantined (a worker stops
    // taking jobs at its third strike).
    let pool = WorkerPool::new(2);
    let strike_rounds = 2 * MAX_STRIKES;
    let items: Arc<Vec<u64>> = Arc::new((0..32).collect());
    let caller = std::thread::current().id();
    let panics = Arc::new(AtomicUsize::new(0));

    let expected: Vec<u64> = items.iter().map(|&x| x + 1).collect();
    trace::start_capture();
    for round in 0..strike_rounds {
        // The helper's first claimed item of each round blows up (never
        // the caller's); caller-side items spin until the helper has
        // struck, so the strike per round is deterministic, not a race
        // over who drains the queue first.
        let acted = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (panics, acted) = (Arc::clone(&panics), Arc::clone(&acted));
        let got = pool.map(&items, move |_, &x| {
            if std::thread::current().id() != caller {
                panics.fetch_add(1, Ordering::SeqCst);
                acted.store(true, Ordering::SeqCst);
                panic!("chaos: drain job dies mid-item");
            }
            let t0 = std::time::Instant::now();
            while !acted.load(Ordering::SeqCst)
                && t0.elapsed() < std::time::Duration::from_secs(10)
            {
                std::thread::yield_now();
            }
            x + 1
        });
        assert_eq!(got, expected, "round {round}: results survive worker panics");
    }
    // Post-quarantine round: no live helper, the map degrades inline.
    let got = pool.map(&items, |_, &x| x + 1);
    assert_eq!(got, expected);
    let t = trace::take_capture();

    assert_eq!(panics.load(Ordering::SeqCst), strike_rounds, "every strike was spent");
    assert_eq!(pool.live_workers(), 0, "both workers quarantined themselves");

    // Logical graph: `strike_rounds + 1` map calls. Every round before
    // full quarantine submits one drain job (which unwinds); the
    // post-quarantine round has no live worker, so no drain child.
    let maps = ids_of(&t, "ga.pool.map");
    assert_eq!(maps.len(), strike_rounds + 1, "one map span per call");
    let drains = ids_of(&t, "ga.pool.drain");
    assert_eq!(
        drains.len(),
        strike_rounds,
        "one drain span per pre-quarantine round, closed even though it unwound"
    );
    let children = t.children();
    for (round, &m) in maps.iter().enumerate() {
        let kids = children.get(&m).cloned().unwrap_or_default();
        let drain_kids: Vec<u64> =
            kids.iter().copied().filter(|k| span(&t, *k).name == "ga.pool.drain").collect();
        if round < strike_rounds {
            assert_eq!(drain_kids.len(), 1, "round {round}: the drain job is a child");
        } else {
            assert!(drain_kids.is_empty(), "quarantined pool degrades to an inline map");
        }
    }
    // Every drain belongs to some map — no orphaned cross-thread spans.
    for d in &drains {
        assert!(maps.contains(&span(&t, *d).parent), "drain {d} adopted its map");
    }
}

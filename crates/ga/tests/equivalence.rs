//! Differential test for the adaptive fitness pipeline: the pruned,
//! cached, pooled selection path must pick exactly the same survivors
//! with exactly the same (bit-identical) reports as exhaustively
//! evaluating every candidate.
//!
//! Mirrors the union/sort/dedup/truncate sequence of `Evolution`'s
//! generation step on ≥ 50 seeded random populations per run, across
//! both grid kinds, with duplicate children, pool-duplicate children
//! and both garbage and elite incumbents mixed in.

use a2a_fsm::{best_agent, offspring, FsmSpec, Genome, MutationRates};
use a2a_ga::{Evaluator, Evolution, FitnessReport, GaConfig, GenomeEval};
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Applies the GA's selection ordering: stable sort by fitness, delete
/// later duplicates, truncate to `keep`.
fn select(mut union: Vec<(Genome, FitnessReport)>, keep: usize) -> Vec<(String, FitnessReport)> {
    union.sort_by(|a, b| a.1.fitness.partial_cmp(&b.1.fitness).expect("fitness is never NaN"));
    let mut seen = HashSet::new();
    union.retain(|(g, _)| seen.insert(g.to_digits()));
    union.truncate(keep);
    union.into_iter().map(|(g, r)| (g.to_digits(), r)).collect()
}

/// Runs one population through both paths and returns how many
/// candidates the adaptive path pruned.
fn check_population(kind: GridKind, seed: u64) -> usize {
    let cfg = WorldConfig::paper(kind, 8);
    let n_cfg = 8 + (seed as usize % 5);
    let configs = paper_config_set(cfg.lattice, kind, 4, n_cfg, seed ^ 0xBEEF).unwrap();
    let spec = FsmSpec::paper(kind);
    let adaptive = Evaluator::new(cfg.clone(), configs.clone()).with_t_max(80).with_threads(2);
    let exhaustive = Evaluator::new(cfg, configs).with_t_max(80).with_threads(1);

    let mut rng = SmallRng::seed_from_u64(seed);
    let pool_n = 4 + (seed as usize % 4);
    let children_n = 6 + (seed as usize % 5);
    let keep = pool_n;
    // Alternate between garbage pools and elite pools (published genome
    // plus light mutants): elite incumbents are what actually makes
    // bound-based pruning fire against garbage children.
    let pool: Vec<Genome> = if seed.is_multiple_of(2) {
        (0..pool_n).map(|_| Genome::random(spec, &mut rng)).collect()
    } else {
        let elite = best_agent(kind);
        let mut p = vec![elite.clone()];
        while p.len() < pool_n {
            p.push(offspring(&elite, MutationRates::uniform(0.05), &mut rng));
        }
        p
    };
    let mut children: Vec<Genome> =
        (0..children_n).map(|_| Genome::random(spec, &mut rng)).collect();
    // Stress duplicate handling: a repeated child and a pool clone.
    children.push(children[0].clone());
    children.push(pool[0].clone());

    // Exhaustive path: rank everything with an independent evaluator.
    let pool_reports = exhaustive.evaluate_all(&pool);
    let child_reports = exhaustive.evaluate_all(&children);
    let expected = select(
        pool.iter()
            .cloned()
            .zip(pool_reports.iter().copied())
            .chain(children.iter().cloned().zip(child_reports.iter().copied()))
            .collect(),
        keep,
    );

    // Adaptive path, mirroring `Evolution::run_seeded`.
    let inc_reports = adaptive.evaluate_all(&pool);
    assert_eq!(inc_reports, pool_reports, "{kind} seed {seed}: exact reports must agree");
    let pool_digits: HashSet<String> = pool.iter().map(Genome::to_digits).collect();
    let mut inc_seen = HashSet::new();
    let incumbents: Vec<f64> = pool
        .iter()
        .zip(&inc_reports)
        .filter(|(g, _)| inc_seen.insert(g.to_digits()))
        .map(|(_, r)| r.fitness)
        .collect();
    let fresh: Vec<Genome> =
        children.iter().filter(|c| !pool_digits.contains(&c.to_digits())).cloned().collect();
    let verdicts = adaptive.evaluate_selection(&fresh, keep, &incumbents);

    let mut union: Vec<(Genome, FitnessReport)> =
        pool.into_iter().zip(inc_reports).collect();
    let mut pruned_digits = Vec::new();
    for (g, v) in fresh.iter().zip(&verdicts) {
        match v {
            GenomeEval::Exact(r) => union.push((g.clone(), *r)),
            GenomeEval::Pruned(bound) => {
                assert!(
                    bound.lower <= bound.upper,
                    "{kind} seed {seed}: bound inverted {bound:?}"
                );
                pruned_digits.push(g.to_digits());
            }
        }
    }
    let actual = select(union, keep);

    assert_eq!(actual, expected, "{kind} seed {seed}: selection must be identical");
    let survivors: HashSet<&String> = expected.iter().map(|(d, _)| d).collect();
    for d in &pruned_digits {
        assert!(
            !survivors.contains(d),
            "{kind} seed {seed}: pruned genome survived exhaustive selection"
        );
    }
    pruned_digits.len()
}

#[test]
fn pruned_selection_is_identical_to_exhaustive_selection() {
    let mut pruned_total = 0;
    for kind in [GridKind::Square, GridKind::Triangulate] {
        for seed in 0..30 {
            pruned_total += check_population(kind, seed);
        }
    }
    // The equality assertions above are vacuous for the pruning logic
    // unless the pruned arm actually fires somewhere in the sweep.
    assert!(pruned_total > 0, "no population exercised the pruning path");
}

#[test]
fn evolved_pool_reports_match_a_fresh_evaluator() {
    // End-to-end spot check: after a full evolution run through the
    // adaptive pipeline, every surviving individual's stored report is
    // reproduced exactly by an untouched evaluator.
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let cfg = WorldConfig::paper(kind, 8);
        let configs = paper_config_set(cfg.lattice, kind, 4, 8, 17).unwrap();
        let evaluator =
            Evaluator::new(cfg.clone(), configs.clone()).with_t_max(80).with_threads(2);
        let outcome = Evolution::new(
            FsmSpec::paper(kind),
            evaluator,
            GaConfig { population: 6, exchange_b: 1, ..GaConfig::paper(6, 23) },
        )
        .run(|_| ());
        let fresh = Evaluator::new(cfg, configs).with_t_max(80).with_threads(1);
        for ind in &outcome.pool {
            assert_eq!(
                fresh.evaluate(&ind.genome),
                ind.report,
                "{kind}: pool report drifted from a fresh evaluation"
            );
        }
    }
}

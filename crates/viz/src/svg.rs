//! A minimal, dependency-free SVG document builder — just enough for
//! field snapshots, trajectory plots and line charts.

use std::fmt::Write;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
    open_groups: usize,
}

impl SvgDoc {
    /// Creates a document with the given pixel extent.
    ///
    /// # Panics
    ///
    /// Panics if the extent is not positive and finite.
    #[must_use]
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "SVG extent must be positive and finite"
        );
        Self { width, height, body: String::new(), open_groups: 0 }
    }

    /// Document width in pixels.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height in pixels.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Adds an axis-aligned rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, opacity: f64) {
        writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}" fill-opacity="{opacity:.3}"/>"#,
        )
        .expect("writing to String cannot fail");
    }

    /// Adds a circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#,
        )
        .expect("writing to String cannot fail");
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#,
        )
        .expect("writing to String cannot fail");
    }

    /// Adds a polyline through the given points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        assert!(points.len() >= 2, "a polyline needs at least two points");
        let pts: Vec<String> = points.iter().map(|(x, y)| format!("{x:.2},{y:.2}")).collect();
        writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width:.2}"/>"#,
            pts.join(" "),
        )
        .expect("writing to String cannot fail");
    }

    /// Adds a filled triangle (used for agent direction markers).
    pub fn triangle(&mut self, points: [(f64, f64); 3], fill: &str) {
        writeln!(
            self.body,
            r#"<polygon points="{:.2},{:.2} {:.2},{:.2} {:.2},{:.2}" fill="{fill}"/>"#,
            points[0].0, points[0].1, points[1].0, points[1].1, points[2].0, points[2].1,
        )
        .expect("writing to String cannot fail");
    }

    /// Adds left-anchored text.
    pub fn text(&mut self, x: f64, y: f64, size: f64, fill: &str, content: &str) {
        writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="monospace" fill="{fill}">{}</text>"#,
            escape(content),
        )
        .expect("writing to String cannot fail");
    }

    /// Opens a `<g>` group with a transform (must be matched by
    /// [`SvgDoc::end_group`] before finishing).
    pub fn group(&mut self, transform: &str) {
        writeln!(self.body, r#"<g transform="{transform}">"#)
            .expect("writing to String cannot fail");
        self.open_groups += 1;
    }

    /// Closes the innermost group.
    ///
    /// # Panics
    ///
    /// Panics if no group is open.
    pub fn end_group(&mut self) {
        assert!(self.open_groups > 0, "no open group to close");
        self.body.push_str("</g>\n");
        self.open_groups -= 1;
    }

    /// Finishes the document.
    ///
    /// # Panics
    ///
    /// Panics if a group is still open.
    #[must_use]
    pub fn finish(self) -> String {
        assert_eq!(self.open_groups, 0, "unclosed <g> group");
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body,
        )
    }
}

/// Escapes the XML special characters of text content.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure_is_wellformed() {
        let mut doc = SvgDoc::new(100.0, 50.0);
        doc.rect(0.0, 0.0, 10.0, 10.0, "#ff0000", 1.0);
        doc.circle(5.0, 5.0, 2.0, "blue");
        doc.line(0.0, 0.0, 9.0, 9.0, "black", 1.0);
        doc.text(1.0, 1.0, 8.0, "black", "a < b & c");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("&lt;") && svg.contains("&amp;"), "{svg}");
        assert_eq!(svg.matches("<rect").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn groups_balance() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.group("translate(1 2)");
        doc.circle(0.0, 0.0, 1.0, "red");
        doc.end_group();
        let svg = doc.finish();
        assert_eq!(svg.matches("<g ").count(), svg.matches("</g>").count());
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_group_panics() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.group("scale(2)");
        let _ = doc.finish();
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn degenerate_polyline_panics() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.polyline(&[(0.0, 0.0)], "red", 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn invalid_extent_panics() {
        let _ = SvgDoc::new(0.0, 10.0);
    }
}

//! Colour themes for the SVG renderers.

/// Colours used by the field and trajectory renderers (any CSS colour
/// syntax).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Theme {
    /// Document background.
    pub background: String,
    /// Empty cell fill.
    pub cell: String,
    /// Grid lines.
    pub grid_line: String,
    /// Obstacle cells.
    pub obstacle: String,
    /// Visited-cell heat overlay.
    pub heat: String,
    /// Colour-flag dot (the paper's "pheromone").
    pub color_flag: String,
    /// Agent marker.
    pub agent: String,
    /// Informed-agent marker.
    pub agent_informed: String,
    /// Caption/ID text.
    pub label: String,
    /// Per-agent trajectory palette (cycled).
    pub trajectory_palette: Vec<String>,
}

impl Default for Theme {
    fn default() -> Self {
        Self {
            background: "#ffffff".into(),
            cell: "#f7f7f2".into(),
            grid_line: "#dcdcd2".into(),
            obstacle: "#3b3b3b".into(),
            heat: "#e8a33d".into(),
            color_flag: "#2a6f97".into(),
            agent: "#c1121f".into(),
            agent_informed: "#2d6a4f".into(),
            label: "#333333".into(),
            trajectory_palette: vec![
                "#c1121f".into(),
                "#2a6f97".into(),
                "#2d6a4f".into(),
                "#7b2d8b".into(),
                "#b5651d".into(),
                "#00799c".into(),
            ],
        }
    }
}

impl Theme {
    /// The trajectory colour of agent `id` (palette cycled).
    ///
    /// # Panics
    ///
    /// Panics if the palette is empty.
    #[must_use]
    pub fn trajectory_color(&self, id: usize) -> &str {
        assert!(!self.trajectory_palette.is_empty(), "palette must not be empty");
        &self.trajectory_palette[id % self.trajectory_palette.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_cycles() {
        let t = Theme::default();
        let n = t.trajectory_palette.len();
        assert_eq!(t.trajectory_color(0), t.trajectory_color(n));
        assert_ne!(t.trajectory_color(0), t.trajectory_color(1));
    }
}

//! Dependency-free SVG visualisation for the PaCT 2013 reproduction:
//! field snapshots (the graphical Fig. 6/7), trajectory plots, and line
//! charts (the graphical Fig. 5).
//!
//! Everything renders to plain `String`s of SVG markup — no drawing
//! libraries required — so the experiment binaries can simply write the
//! result to a `.svg` file.
//!
//! # Examples
//!
//! ```
//! use a2a_sim::{InitialConfig, World, WorldConfig};
//! use a2a_fsm::best_t_agent;
//! use a2a_grid::{Dir, GridKind, Pos};
//! use a2a_viz::{render_field, Theme};
//!
//! # fn main() -> Result<(), a2a_sim::SimError> {
//! let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
//! let init = InitialConfig::new(vec![
//!     (Pos::new(2, 2), Dir::new(0)),
//!     (Pos::new(9, 12), Dir::new(3)),
//! ]);
//! let mut world = World::new(&cfg, best_t_agent(), &init)?;
//! for _ in 0..20 {
//!     world.step();
//! }
//! let svg = render_field(&world, &Theme::default());
//! assert!(svg.starts_with("<svg"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod chart;
mod field;
mod svg;
mod theme;
mod trajectory;

pub use chart::{render_chart, sparkline, ChartScale, ChartSeries};
pub use field::render_field;
pub use svg::SvgDoc;
pub use theme::Theme;
pub use trajectory::render_trajectory;

//! SVG plots of recorded agent trajectories: one wrap-aware polyline per
//! agent over the field, showing the "streets" (S) and "honeycombs" (T)
//! of Fig. 6/7 as actual paths rather than visit counts.

use crate::svg::SvgDoc;
use crate::theme::Theme;
use a2a_grid::{Lattice, Pos};
use a2a_sim::Trajectory;

const CELL: f64 = 18.0;
const MARGIN: f64 = 14.0;

/// Renders the paths of every agent in `trajectory` over a `lattice`.
///
/// Torus wrap-arounds are detected (a hop longer than one cell in raw
/// coordinates) and split into separate polyline segments so paths do not
/// streak across the whole image.
///
/// # Panics
///
/// Panics if the trajectory is empty of agents.
#[must_use]
pub fn render_trajectory(lattice: Lattice, trajectory: &Trajectory, theme: &Theme) -> String {
    let (w, h) = (f64::from(lattice.width()), f64::from(lattice.height()));
    let mut doc = SvgDoc::new(w * CELL + 2.0 * MARGIN, h * CELL + 2.0 * MARGIN + 16.0);
    doc.rect(0.0, 0.0, doc.width(), doc.height(), &theme.background, 1.0);
    doc.group(&format!("translate({MARGIN} {MARGIN})"));

    // Field background and grid.
    doc.rect(0.0, 0.0, w * CELL, h * CELL, &theme.cell, 1.0);
    for x in 0..=lattice.width() {
        doc.line(f64::from(x) * CELL, 0.0, f64::from(x) * CELL, h * CELL, &theme.grid_line, 0.5);
    }
    for y in 0..=lattice.height() {
        doc.line(0.0, f64::from(y) * CELL, w * CELL, f64::from(y) * CELL, &theme.grid_line, 0.5);
    }

    let k = trajectory.frames()[0].agents.len();
    assert!(k > 0, "trajectory must contain agents");
    let center = |p: Pos| -> (f64, f64) {
        (
            f64::from(p.x) * CELL + CELL / 2.0,
            f64::from(p.y) * CELL + CELL / 2.0,
        )
    };
    for id in 0..k {
        let path = trajectory.path_of(id);
        let color = theme.trajectory_color(id);
        // Split at wrap-arounds: consecutive cells further than 1 apart
        // in raw (unwrapped) coordinates.
        let mut segment: Vec<(f64, f64)> = Vec::new();
        for w2 in path.windows(2) {
            let (a, b) = (w2[0], w2[1]);
            if segment.is_empty() {
                segment.push(center(a));
            }
            let wraps = a.x.abs_diff(b.x) > 1 || a.y.abs_diff(b.y) > 1;
            if wraps {
                if segment.len() >= 2 {
                    doc.polyline(&segment, color, 1.6);
                }
                segment = vec![center(b)];
            } else {
                segment.push(center(b));
            }
        }
        if segment.len() >= 2 {
            doc.polyline(&segment, color, 1.6);
        }
        // Start and end markers.
        if let (Some(&first), Some(&last)) = (path.first(), path.last()) {
            let (sx, sy) = center(first);
            doc.circle(sx, sy, CELL * 0.18, color);
            let (ex, ey) = center(last);
            doc.rect(ex - CELL * 0.16, ey - CELL * 0.16, CELL * 0.32, CELL * 0.32, color, 1.0);
        }
    }
    doc.end_group();
    doc.text(
        MARGIN,
        h * CELL + 2.0 * MARGIN + 10.0,
        11.0,
        &theme.label,
        &format!("{k} agents, {} steps (dot = start, square = end)", trajectory.len() - 1),
    );
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::best_agent;
    use a2a_grid::{Dir, GridKind};
    use a2a_sim::{record_trajectory, InitialConfig, World, WorldConfig};

    fn trajectory(kind: GridKind) -> (Lattice, Trajectory) {
        let cfg = WorldConfig::paper(kind, 8);
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(4, 4), Dir::new(1)),
        ]);
        let mut world = World::new(&cfg, best_agent(kind), &init).unwrap();
        let (_, traj) = record_trajectory(&mut world, 300);
        (cfg.lattice, traj)
    }

    #[test]
    fn paths_render_with_markers() {
        let (lattice, traj) = trajectory(GridKind::Triangulate);
        let svg = render_trajectory(lattice, &traj, &Theme::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<polyline"), "paths drawn");
        assert_eq!(svg.matches("<circle").count(), 2, "one start dot per agent");
        assert!(svg.contains("2 agents"));
    }

    #[test]
    fn wrapping_paths_split_into_segments() {
        // Two parallel straight-line walkers crossing the seam: each
        // path must split into (at least) two polyline segments instead
        // of streaking across the image. (Two agents on distinct rows
        // never meet, so the run uses the full horizon.)
        use a2a_fsm::ballistic;
        let cfg = WorldConfig::paper(GridKind::Square, 8);
        let init = InitialConfig::new(vec![
            (Pos::new(6, 1), Dir::new(0)),
            (Pos::new(6, 5), Dir::new(0)),
        ]);
        let mut world = World::new(&cfg, ballistic(GridKind::Square), &init).unwrap();
        let (outcome, rec) = record_trajectory(&mut world, 5);
        assert!(!outcome.is_successful(), "parallel walkers never meet");
        assert!(rec.path_of(0).contains(&Pos::new(0, 1)), "walker wrapped");
        let svg = render_trajectory(cfg.lattice, &rec, &Theme::default());
        assert!(
            svg.matches("<polyline").count() >= 4,
            "each wrapped path splits: {}",
            svg.matches("<polyline").count()
        );
    }
}

//! SVG snapshots of a simulation field: colour plane, visited heatmap,
//! obstacles and direction-marked agents — the graphical version of the
//! paper's Fig. 6/7 ASCII layers.

use crate::svg::SvgDoc;
use crate::theme::Theme;
use a2a_grid::Pos;
use a2a_sim::World;

/// Pixel size of one cell.
const CELL: f64 = 18.0;
/// Margin around the field.
const MARGIN: f64 = 14.0;

/// Renders the world as an SVG snapshot: cell colours as fills, visit
/// counts as a heat overlay, obstacles hatched dark, and each agent as a
/// triangle pointing along its moving direction (labelled by ID).
///
/// ```
/// use a2a_sim::{InitialConfig, World, WorldConfig};
/// use a2a_fsm::best_t_agent;
/// use a2a_grid::{Dir, GridKind, Pos};
///
/// # fn main() -> Result<(), a2a_sim::SimError> {
/// let cfg = WorldConfig::paper(GridKind::Triangulate, 8);
/// let init = InitialConfig::new(vec![(Pos::new(2, 2), Dir::new(0))]);
/// let world = World::new(&cfg, best_t_agent(), &init)?;
/// let svg = a2a_viz::render_field(&world, &a2a_viz::Theme::default());
/// assert!(svg.starts_with("<svg"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn render_field(world: &World, theme: &Theme) -> String {
    let lattice = world.lattice();
    let (w, h) = (f64::from(lattice.width()), f64::from(lattice.height()));
    let mut doc = SvgDoc::new(w * CELL + 2.0 * MARGIN, h * CELL + 2.0 * MARGIN + 16.0);

    doc.rect(0.0, 0.0, doc.width(), doc.height(), &theme.background, 1.0);
    doc.group(&format!("translate({MARGIN} {MARGIN})"));

    let max_visits = world.visited().iter().copied().max().unwrap_or(0).max(1);
    for y in 0..lattice.height() {
        for x in 0..lattice.width() {
            let pos = Pos::new(x, y);
            let (px, py) = (f64::from(x) * CELL, f64::from(y) * CELL);
            // Base cell with grid line.
            doc.rect(px, py, CELL, CELL, &theme.cell, 1.0);
            doc.rect(px, py, CELL, 0.5, &theme.grid_line, 1.0);
            doc.rect(px, py, 0.5, CELL, &theme.grid_line, 1.0);
            if world.is_obstacle(pos) {
                doc.rect(px, py, CELL, CELL, &theme.obstacle, 1.0);
                continue;
            }
            // Visited heat (under the colour dot).
            let visits = world.visited()[lattice.index_of(pos)];
            if visits > 0 {
                let intensity = f64::from(visits) / f64::from(max_visits);
                doc.rect(px, py, CELL, CELL, &theme.heat, 0.15 + 0.45 * intensity);
            }
            // Colour flag as a centred dot.
            if world.color_at(pos) > 0 {
                doc.circle(px + CELL / 2.0, py + CELL / 2.0, CELL * 0.16, &theme.color_flag);
            }
        }
    }

    // Agents as direction triangles.
    for agent in world.agents() {
        let (cx, cy) = (
            f64::from(agent.pos().x) * CELL + CELL / 2.0,
            f64::from(agent.pos().y) * CELL + CELL / 2.0,
        );
        let offset = world.kind().offset(agent.dir());
        let (dx, dy) = (f64::from(offset.dx), f64::from(offset.dy));
        let norm = (dx * dx + dy * dy).sqrt().max(1.0);
        let (ux, uy) = (dx / norm, dy / norm);
        let tip = (cx + ux * CELL * 0.38, cy + uy * CELL * 0.38);
        let left = (cx - ux * CELL * 0.25 - uy * CELL * 0.22, cy - uy * CELL * 0.25 + ux * CELL * 0.22);
        let right = (cx - ux * CELL * 0.25 + uy * CELL * 0.22, cy - uy * CELL * 0.25 - ux * CELL * 0.22);
        let fill = if agent.is_informed() { &theme.agent_informed } else { &theme.agent };
        doc.triangle([tip, left, right], fill);
        doc.text(cx + CELL * 0.22, cy - CELL * 0.22, CELL * 0.38, &theme.label, &agent.id().to_string());
    }
    doc.end_group();

    doc.text(
        MARGIN,
        h * CELL + 2.0 * MARGIN + 10.0,
        11.0,
        &theme.label,
        &format!(
            "{}-grid t={} informed {}/{}",
            world.kind().label(),
            world.time(),
            world.informed_count(),
            world.agents().len(),
        ),
    );
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::best_agent;
    use a2a_grid::GridKind;
    use a2a_grid::Dir;
    use a2a_sim::{InitialConfig, WorldConfig};

    fn world(kind: GridKind) -> World {
        let cfg = WorldConfig::paper(kind, 8);
        let init = InitialConfig::new(vec![
            (Pos::new(1, 1), Dir::new(0)),
            (Pos::new(5, 6), Dir::new(2)),
        ]);
        World::new(&cfg, best_agent(kind), &init).unwrap()
    }

    #[test]
    fn snapshot_contains_agents_and_caption() {
        let svg = render_field(&world(GridKind::Triangulate), &Theme::default());
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polygon").count(), 2, "one triangle per agent");
        assert!(svg.contains("T-grid t=0 informed"));
        // 64 cells rendered.
        assert!(svg.matches("<rect").count() > 64);
    }

    #[test]
    fn colours_appear_after_stepping() {
        let mut w = world(GridKind::Square);
        for _ in 0..10 {
            w.step();
        }
        let svg = render_field(&w, &Theme::default());
        assert!(svg.contains("<circle"), "colour dots drawn once flags are set");
    }

    #[test]
    fn obstacles_render_distinctly() {
        let mut cfg = WorldConfig::paper(GridKind::Square, 8);
        cfg.obstacles = vec![Pos::new(4, 4)];
        let init = InitialConfig::new(vec![(Pos::new(0, 0), Dir::new(0))]);
        let w = World::new(&cfg, best_agent(GridKind::Square), &init).unwrap();
        let theme = Theme::default();
        let svg = render_field(&w, &theme);
        assert!(svg.contains(&theme.obstacle));
    }
}

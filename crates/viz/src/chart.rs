//! SVG line charts (the graphical Fig. 5): multiple series over a
//! linear- or log₂-scaled x-axis, with axes, ticks and a legend.

use crate::svg::SvgDoc;

/// X-axis scaling of an SVG chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartScale {
    /// Linear x positions.
    Linear,
    /// log₂ x positions (natural for the paper's agent counts).
    Log2,
}

/// One chart series.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartSeries {
    /// Legend label.
    pub label: String,
    /// CSS stroke colour.
    pub color: String,
    /// `(x, y)` points in ascending `x`.
    pub points: Vec<(f64, f64)>,
}

const W: f64 = 560.0;
const H: f64 = 360.0;
const PAD_L: f64 = 56.0;
const PAD_R: f64 = 18.0;
const PAD_T: f64 = 20.0;
const PAD_B: f64 = 46.0;

/// Renders a multi-series line chart.
///
/// # Panics
///
/// Panics if no series contains a point, or a log-scaled x value is not
/// positive.
#[must_use]
pub fn render_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    scale: ChartScale,
    series: &[ChartSeries],
) -> String {
    let xform = |x: f64| -> f64 {
        match scale {
            ChartScale::Linear => x,
            ChartScale::Log2 => {
                assert!(x > 0.0, "log scale needs positive x values");
                x.log2()
            }
        }
    };
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, y)| (xform(x), y)))
        .collect();
    assert!(!pts.is_empty(), "chart needs at least one point");
    let (x_min, x_max) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(x, _)| (lo.min(x), hi.max(x)));
    let (y_min, y_max) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| (lo.min(y), hi.max(y)));
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);
    let plot_w = W - PAD_L - PAD_R;
    let plot_h = H - PAD_T - PAD_B;
    let px = |x: f64| PAD_L + (xform(x) - x_min) / x_span * plot_w;
    let py = |y: f64| PAD_T + (1.0 - (y - y_min) / y_span) * plot_h;

    let mut doc = SvgDoc::new(W, H);
    doc.rect(0.0, 0.0, W, H, "#ffffff", 1.0);
    // Axes.
    doc.line(PAD_L, PAD_T, PAD_L, H - PAD_B, "#444444", 1.0);
    doc.line(PAD_L, H - PAD_B, W - PAD_R, H - PAD_B, "#444444", 1.0);
    doc.text(PAD_L, 13.0, 12.0, "#222222", title);
    doc.text(W / 2.0 - 30.0, H - 10.0, 11.0, "#444444", x_label);
    doc.text(4.0, PAD_T + 10.0, 11.0, "#444444", y_label);
    // Y ticks (5 divisions).
    for i in 0..=4 {
        let y = y_min + y_span * f64::from(i) / 4.0;
        doc.line(PAD_L - 4.0, py(y), PAD_L, py(y), "#444444", 1.0);
        doc.line(PAD_L, py(y), W - PAD_R, py(y), "#eeeeee", 0.7);
        doc.text(6.0, py(y) + 4.0, 10.0, "#444444", &format!("{y:.1}"));
    }
    // X ticks at every distinct data x.
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are not NaN"));
    xs.dedup();
    for &x in &xs {
        doc.line(px(x), H - PAD_B, px(x), H - PAD_B + 4.0, "#444444", 1.0);
        doc.text(px(x) - 8.0, H - PAD_B + 16.0, 10.0, "#444444", &format!("{x:.0}"));
    }
    // Series.
    for (i, s) in series.iter().enumerate() {
        if s.points.len() >= 2 {
            let line: Vec<(f64, f64)> =
                s.points.iter().map(|&(x, y)| (px(x), py(y))).collect();
            doc.polyline(&line, &s.color, 2.0);
        }
        for &(x, y) in &s.points {
            doc.circle(px(x), py(y), 3.0, &s.color);
        }
        let ly = PAD_T + 16.0 * i as f64 + 8.0;
        doc.line(W - PAD_R - 110.0, ly, W - PAD_R - 90.0, ly, &s.color, 2.0);
        doc.text(W - PAD_R - 84.0, ly + 4.0, 11.0, "#222222", &s.label);
    }
    doc.finish()
}

/// Renders a compact inline sparkline — the per-metric trend cell of
/// the perf observatory's markdown report. A single polyline over the
/// value series, the last point marked with a dot; an empty or
/// single-point series still renders (dot only), and a flat series is
/// centred vertically.
#[must_use]
pub fn sparkline(values: &[f64], width: f64, height: f64) -> String {
    const PAD: f64 = 2.0;
    let mut doc = SvgDoc::new(width, height);
    doc.rect(0.0, 0.0, width, height, "#ffffff", 1.0);
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return doc.finish();
    }
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let n = finite.len();
    let px = |i: usize| {
        if n == 1 {
            width / 2.0
        } else {
            PAD + i as f64 / (n - 1) as f64 * (width - 2.0 * PAD)
        }
    };
    let py = |v: f64| {
        if hi == lo {
            height / 2.0
        } else {
            PAD + (1.0 - (v - lo) / span) * (height - 2.0 * PAD)
        }
    };
    let pts: Vec<(f64, f64)> = finite.iter().enumerate().map(|(i, &v)| (px(i), py(v))).collect();
    if pts.len() >= 2 {
        doc.polyline(&pts, "#2a6f97", 1.2);
    }
    let &(x, y) = pts.last().expect("non-empty");
    doc.circle(x, y, 2.0, "#c1121f");
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_series() -> Vec<ChartSeries> {
        vec![
            ChartSeries {
                label: "T-grid".into(),
                color: "#c1121f".into(),
                points: vec![(2.0, 58.4), (4.0, 78.3), (8.0, 58.7), (256.0, 9.0)],
            },
            ChartSeries {
                label: "S-grid".into(),
                color: "#2a6f97".into(),
                points: vec![(2.0, 82.8), (4.0, 116.1), (8.0, 90.9), (256.0, 15.0)],
            },
        ]
    }

    #[test]
    fn chart_has_axes_legend_and_series() {
        let svg = render_chart(
            "Fig. 5",
            "N_agents",
            "t_comm",
            ChartScale::Log2,
            &fig5_series(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("Fig. 5"));
        assert!(svg.contains("T-grid") && svg.contains("S-grid"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 8, "one dot per point");
    }

    #[test]
    fn linear_scale_also_renders() {
        let svg = render_chart(
            "profile",
            "t",
            "informed",
            ChartScale::Linear,
            &[ChartSeries {
                label: "T".into(),
                color: "#000".into(),
                points: vec![(0.0, 0.2), (10.0, 0.8), (20.0, 1.0)],
            }],
        );
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn log_scale_rejects_zero() {
        let _ = render_chart(
            "x",
            "x",
            "y",
            ChartScale::Log2,
            &[ChartSeries { label: "s".into(), color: "#000".into(), points: vec![(0.0, 1.0)] }],
        );
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_chart_rejected() {
        let _ = render_chart("x", "x", "y", ChartScale::Linear, &[]);
    }

    #[test]
    fn sparkline_renders_line_and_marker() {
        let svg = sparkline(&[1.0, 1.5, 1.2, 1.8], 120.0, 24.0);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 1, "last point marked");
    }

    #[test]
    fn sparkline_handles_degenerate_series() {
        // Empty: background only. Single point / flat series: no panic,
        // marker present.
        assert!(!sparkline(&[], 60.0, 16.0).contains("<circle"));
        assert!(sparkline(&[2.0], 60.0, 16.0).contains("<circle"));
        let flat = sparkline(&[3.0, 3.0, 3.0], 60.0, 16.0);
        assert!(flat.contains("<polyline"));
        // NaN values are dropped, not propagated into coordinates.
        assert!(!sparkline(&[1.0, f64::NAN, 2.0], 60.0, 16.0).contains("NaN"));
    }
}

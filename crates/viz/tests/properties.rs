//! Property-based tests: the SVG renderers accept any reachable world
//! state and always produce well-formed documents.

use a2a_fsm::{FsmSpec, Genome};
use a2a_grid::GridKind;
use a2a_sim::{record_trajectory, InitialConfig, World, WorldConfig};
use a2a_viz::{render_chart, render_field, render_trajectory, ChartScale, ChartSeries, Theme};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_world_and_steps() -> impl Strategy<Value = (World, u32)> {
    (
        prop_oneof![Just(GridKind::Square), Just(GridKind::Triangulate)],
        4u16..=10,
        1usize..=6,
        any::<u64>(),
        0u32..40,
    )
        .prop_map(|(kind, m, k, seed, steps)| {
            let cfg = WorldConfig::paper(kind, m);
            let mut rng = SmallRng::seed_from_u64(seed);
            let genome = Genome::random(FsmSpec::paper(kind), &mut rng);
            let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)
                .expect("k fits the field");
            (World::new(&cfg, genome, &init).expect("valid world"), steps)
        })
}

/// Rough XML well-formedness: every opened tag kind is balanced or
/// self-closed, and the document has exactly one root.
fn check_wellformed(svg: &str) {
    assert!(svg.starts_with("<svg"), "root element");
    assert!(svg.trim_end().ends_with("</svg>"));
    for tag in ["g", "svg", "text"] {
        let opens = svg.matches(&format!("<{tag}")).count();
        let closes = svg.matches(&format!("</{tag}>")).count();
        assert_eq!(opens, closes, "balanced <{tag}>");
    }
    // All drawing primitives are self-closing.
    for tag in ["rect", "circle", "line", "polyline", "polygon"] {
        for occurrence in svg.split(&format!("<{tag}")).skip(1) {
            let end = occurrence.find('>').expect("closed tag");
            assert!(occurrence[..=end].ends_with("/>"), "<{tag}> self-closes");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Field snapshots of arbitrary evolved states are well-formed and
    /// draw one direction marker per agent.
    #[test]
    fn field_rendering_is_total((mut world, steps) in arb_world_and_steps()) {
        for _ in 0..steps {
            world.step();
        }
        let svg = render_field(&world, &Theme::default());
        check_wellformed(&svg);
        prop_assert_eq!(svg.matches("<polygon").count(), world.agents().len());
    }

    /// Trajectory plots of arbitrary runs are well-formed and mark every
    /// agent's start.
    #[test]
    fn trajectory_rendering_is_total((mut world, steps) in arb_world_and_steps()) {
        let lattice = world.lattice();
        let k = world.agents().len();
        let (_, traj) = record_trajectory(&mut world, steps);
        let svg = render_trajectory(lattice, &traj, &Theme::default());
        check_wellformed(&svg);
        prop_assert_eq!(svg.matches("<circle").count(), k, "one start marker per agent");
    }

    /// Charts accept arbitrary positive series.
    #[test]
    fn chart_rendering_is_total(
        points in prop::collection::vec((1f64..500.0, 0f64..200.0), 1..20),
    ) {
        let svg = render_chart(
            "series",
            "x",
            "y",
            ChartScale::Log2,
            &[ChartSeries { label: "p".into(), color: "#123456".into(), points }],
        );
        check_wellformed(&svg);
    }
}

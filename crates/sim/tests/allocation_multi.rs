//! Steady-state allocation accounting for the fused multi-run kernel.
//!
//! `MultiWorld::allocation_count()` is a process-global counter of
//! buffer-allocating constructions and grows, so this file holds exactly
//! one test (same discipline as `allocation.rs` for the single-run
//! counter): a sibling test constructing multi-worlds concurrently would
//! move the counter and turn the assertion into noise.

use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::{BatchRunner, InitialConfig, MultiWorld, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn steady_state_run_all_performs_no_multi_world_allocation() {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let cfg = WorldConfig::paper(kind, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(2013);
        let configs: Vec<InitialConfig> = (0..40)
            .map(|_| InitialConfig::random(cfg.lattice, kind, 16, &[], &mut rng).unwrap())
            .collect();

        // Warm-up: the first batch builds the pooled arena and grows its
        // buffers to the workload shape.
        let warm = runner.run_all(&configs).unwrap();
        let before = MultiWorld::allocation_count();
        for _ in 0..5 {
            assert_eq!(runner.run_all(&configs).unwrap(), warm, "{kind}: outcomes drifted");
        }
        assert_eq!(
            MultiWorld::allocation_count(),
            before,
            "{kind}: steady-state run_all must not grow any multi-world buffer"
        );
    }
}

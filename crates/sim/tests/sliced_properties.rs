//! Property-based differential tests of the bit-sliced [`SlicedWorld`]
//! engine: random FSMs × grids × seeds, checked step-for-step against
//! per-run [`FastWorld`] kernels and for exact `t_comm` agreement
//! through the batch API.
//!
//! The vendored proptest subset has no shrinking, so the harness ships
//! its own minimal-counterexample reporter: a failing batch is first
//! pinned to the earliest diverging (run, step, cell), then re-tested
//! as a single-run batch — if the divergence survives alone, the
//! report names that one-run scenario (the minimal counterexample);
//! otherwise it flags the divergence as a cross-run interference bug,
//! which is the sliced engine's own failure class (runs sharing lane
//! words must not see each other).

use a2a_fsm::{FsmSpec, Genome};
use a2a_grid::GridKind;
use a2a_sim::{BatchRunner, FastWorld, InitialConfig, SlicedWorld, WorldConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// The earliest observed disagreement between the sliced engine and a
/// per-run reference kernel.
struct Divergence {
    run: usize,
    step: u32,
    /// Lattice cell index of the disagreement, when the field has one
    /// (an agent's cell, or the first differing colour cell).
    cell: Option<usize>,
    field: &'static str,
    detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run {} step {} ", self.run, self.step)?;
        match self.cell {
            Some(c) => write!(f, "cell {c} ")?,
            None => write!(f, "(no single cell) ")?,
        }
        write!(f, "{}: {}", self.field, self.detail)
    }
}

/// One random uniform-k batch scenario, with everything derived from a
/// single reproducible seed.
#[derive(Clone)]
struct Scenario {
    cfg: WorldConfig,
    genome: Genome,
    inits: Vec<InitialConfig>,
    seed: u64,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Scenario {{ kind: {}, cells: {}, k: {}, runs: {}, seed: {} }}",
            self.cfg.kind,
            self.cfg.lattice.len(),
            self.inits.first().map_or(0, InitialConfig::agent_count),
            self.inits.len(),
            self.seed
        )
    }
}

fn arb_kind() -> impl Strategy<Value = GridKind> {
    prop_oneof![Just(GridKind::Square), Just(GridKind::Triangulate)]
}

/// Random FSM × grid × seed × batch shape. Run counts up to 80 cross
/// the 64-bit lane boundary, so partial last lanes are routine.
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (arb_kind(), 4u16..=8, 1usize..=8, 1usize..=80, any::<u64>()).prop_map(
        |(kind, m, k, runs, seed)| {
            let cfg = WorldConfig::paper(kind, m);
            let mut rng = SmallRng::seed_from_u64(seed);
            let genome = Genome::random(FsmSpec::paper(kind), &mut rng);
            let k = k.min(cfg.lattice.len());
            let inits = (0..runs)
                .map(|_| {
                    InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)
                        .expect("k clamped to the cell count")
                })
                .collect();
            Scenario { cfg, genome, inits, seed }
        },
    )
}

/// Drives the sliced batch and per-run reference kernels in lockstep
/// for `steps` counted steps, returning the earliest divergence.
fn first_divergence(s: &Scenario, steps: u32) -> Option<Divergence> {
    let mut fasts: Vec<FastWorld> = s
        .inits
        .iter()
        .map(|init| FastWorld::new(&s.cfg, s.genome.clone(), init).expect("valid placement"))
        .collect();
    let mut sliced = SlicedWorld::new(&s.cfg, s.genome.clone()).expect("valid environment");
    sliced.load(&s.inits).expect("valid placements");
    for step in 0..=steps {
        for (r, fast) in fasts.iter().enumerate() {
            if let Some(d) = compare_run(&sliced, fast, r, step, &s.cfg) {
                return Some(d);
            }
        }
        if step < steps {
            sliced.step();
            for fast in &mut fasts {
                fast.step();
            }
        }
    }
    None
}

/// Field-by-field comparison of one run against its reference kernel.
fn compare_run(
    sliced: &SlicedWorld,
    fast: &FastWorld,
    r: usize,
    step: u32,
    cfg: &WorldConfig,
) -> Option<Divergence> {
    let at = |cell, field, detail| Some(Divergence { run: r, step, cell, field, detail });
    let positions = fast.positions();
    let s_positions = sliced.positions(r);
    for (i, (&want, &got)) in positions.iter().zip(&s_positions).enumerate() {
        if want != got {
            let cell = cfg.lattice.index_of(want);
            return at(Some(cell), "position", format!("agent {i}: {got:?} != {want:?}"));
        }
    }
    for (i, (want, got)) in fast.dirs().iter().zip(sliced.dirs(r)).enumerate() {
        if *want != got {
            let cell = cfg.lattice.index_of(positions[i]);
            return at(Some(cell), "direction", format!("agent {i}: {got:?} != {want:?}"));
        }
    }
    for (i, (want, got)) in fast.states().iter().zip(sliced.states(r)).enumerate() {
        if *want != got {
            let cell = cfg.lattice.index_of(positions[i]);
            return at(Some(cell), "state", format!("agent {i}: {got} != {want}"));
        }
    }
    for (c, (want, got)) in fast.colors().iter().zip(sliced.colors(r)).enumerate() {
        if *want != got {
            return at(Some(c), "colour", format!("{got} != {want}"));
        }
    }
    for (i, pos) in positions.iter().enumerate().take(fast.agent_count()) {
        let want = fast.agent_info(i);
        let got = sliced.agent_info(r, i);
        if want != got {
            let cell = cfg.lattice.index_of(*pos);
            return at(Some(cell), "infoset", format!("agent {i}: {got:?} != {want:?}"));
        }
    }
    if fast.informed_count() != sliced.informed_count(r) {
        return at(
            None,
            "informed count",
            format!("{} != {}", sliced.informed_count(r), fast.informed_count()),
        );
    }
    if fast.conflict_losses() != sliced.conflict_losses(r) {
        return at(
            None,
            "conflict losses",
            format!("{} != {}", sliced.conflict_losses(r), fast.conflict_losses()),
        );
    }
    None
}

/// The minimal-counterexample report: pins the divergence, then
/// re-tests the diverging run as a single-run batch to tell a
/// per-run kernel bug from cross-run lane interference.
fn minimal_report(s: &Scenario, steps: u32, d: &Divergence) -> String {
    let solo = Scenario {
        cfg: s.cfg.clone(),
        genome: s.genome.clone(),
        inits: vec![s.inits[d.run].clone()],
        seed: s.seed,
    };
    match first_divergence(&solo, steps) {
        Some(solo_d) => format!(
            "sliced engine diverged at {d} in {s:?}; minimal counterexample: the run \
             alone still diverges at {solo_d} ({solo:?} reduced to run {})",
            d.run
        ),
        None => format!(
            "sliced engine diverged at {d} in {s:?}; the run passes in isolation, so \
             this is cross-run lane interference (runs sharing a word must not \
             affect each other)"
        ),
    }
}

proptest! {
    /// Per-step state equality: every run of a sliced batch evolves
    /// bit-identically to its own single-run kernel — positions,
    /// directions, states, colour field, infosets, informed count and
    /// conflict tally, after every step including the uncounted t = 0
    /// exchange.
    #[test]
    fn batches_match_per_run_kernels_stepwise(s in arb_scenario(), steps in 1u32..40) {
        if let Some(d) = first_divergence(&s, steps) {
            let report = minimal_report(&s, steps, &d);
            prop_assert!(false, "{}", report);
        }
    }

    /// Exact `t_comm` agreement through the public batch API: the
    /// forced sliced path reports the same outcome vector as running
    /// each configuration on the single-run kernel.
    #[test]
    fn t_comm_agrees_exactly(s in arb_scenario(), t_max in 0u32..150) {
        let runner = BatchRunner::from_genome(&s.cfg, s.genome.clone(), t_max).unwrap();
        let singles: Vec<_> =
            s.inits.iter().map(|i| runner.outcome_for(i).unwrap()).collect();
        let batched = runner.run_all_sliced(&s.inits).unwrap();
        for (r, (got, want)) in batched.iter().zip(&singles).enumerate() {
            prop_assert_eq!(
                got, want,
                "run {} of {:?}: sliced outcome {:?} != single-run outcome {:?}",
                r, &s, got, want
            );
        }
    }
}

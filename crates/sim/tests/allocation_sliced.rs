//! Steady-state allocation accounting for the bit-sliced kernel.
//!
//! `SlicedWorld::allocation_count()` is a process-global counter of
//! buffer-allocating constructions and grows, so this file holds exactly
//! one test (same discipline as `allocation.rs` and
//! `allocation_multi.rs`): a sibling test constructing sliced worlds
//! concurrently would move the counter and turn the assertion into
//! noise.

use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::{BatchRunner, InitialConfig, SlicedWorld, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn steady_state_sliced_batches_perform_no_world_allocation() {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let cfg = WorldConfig::paper(kind, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(2013);
        // 70 uniform configurations: over the routing threshold, with a
        // partial last lane so the lane masks are exercised too.
        let configs: Vec<InitialConfig> = (0..70)
            .map(|_| InitialConfig::random(cfg.lattice, kind, 16, &[], &mut rng).unwrap())
            .collect();
        assert!(runner.sliced_eligible(&configs), "{kind}: batch must fit the sliced engine");

        // Warm-up: the first batch builds the pooled arena and grows its
        // buffers to the workload shape.
        let warm = runner.run_all_sliced(&configs).unwrap();
        let before = SlicedWorld::allocation_count();
        for _ in 0..5 {
            assert_eq!(runner.run_all_sliced(&configs).unwrap(), warm, "{kind}: outcomes drifted");
        }
        assert_eq!(
            SlicedWorld::allocation_count(),
            before,
            "{kind}: steady-state batches must not grow any sliced-world buffer"
        );
    }
}

//! Property-based tests of the CA simulator's invariants.

use a2a_fsm::{FsmSpec, Genome};
use a2a_grid::{GridKind, Lattice};
use a2a_sim::{InitialConfig, RunOutcome, World, WorldConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_kind() -> impl Strategy<Value = GridKind> {
    prop_oneof![Just(GridKind::Square), Just(GridKind::Triangulate)]
}

/// A random world: arbitrary genome, arbitrary placement, on a small torus.
fn arb_world() -> impl Strategy<Value = World> {
    (arb_kind(), 4u16..=10, 1usize..=12, any::<u64>()).prop_map(|(kind, m, k, seed)| {
        let cfg = WorldConfig::paper(kind, m);
        let mut rng = SmallRng::seed_from_u64(seed);
        let genome = Genome::random(FsmSpec::paper(kind), &mut rng);
        let k = k.min(cfg.lattice.len());
        let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)
            .expect("k clamped to the cell count");
        World::new(&cfg, genome, &init).expect("valid construction")
    })
}

proptest! {
    /// Core CA invariants survive arbitrary behaviours: one agent per
    /// cell, occupancy index consistent, states in range, own bit kept.
    #[test]
    fn invariants_hold_for_arbitrary_genomes(mut world in arb_world()) {
        prop_assert!(world.check_invariants());
        for _ in 0..60 {
            world.step();
            prop_assert!(world.check_invariants());
        }
    }

    /// Information is monotone: bits are never lost, so the informed count
    /// and every agent's gathered count never decrease.
    #[test]
    fn information_is_monotone(mut world in arb_world()) {
        let mut counts: Vec<usize> = world.agents().iter().map(|a| a.info().count()).collect();
        let mut informed = world.informed_count();
        for _ in 0..60 {
            world.step();
            for (i, a) in world.agents().iter().enumerate() {
                let c = a.info().count();
                prop_assert!(c >= counts[i]);
                counts[i] = c;
            }
            prop_assert!(world.informed_count() >= informed);
            informed = world.informed_count();
        }
    }

    /// Exchange is mutual within a step: after any step, if agent j's bit
    /// reached agent i at placement-adjacency, i's bit reached j too.
    /// (Checked globally: the "knows" relation gained from one exchange
    /// between stationary neighbours is symmetric.)
    #[test]
    fn placement_exchange_is_symmetric(world in arb_world()) {
        let agents = world.agents();
        for a in agents {
            for b in agents {
                if a.id() != b.id() {
                    prop_assert_eq!(
                        a.info().contains(usize::from(b.id())),
                        b.info().contains(usize::from(a.id())),
                        "t = 0 exchange must be mutual"
                    );
                }
            }
        }
    }

    /// Time advances by exactly one per step, and the step count of a run
    /// outcome never exceeds the horizon.
    #[test]
    fn time_accounting(mut world in arb_world(), t_max in 0u32..50) {
        prop_assert_eq!(world.time(), 0);
        let out: RunOutcome = a2a_sim::run_to_completion(&mut world, t_max);
        prop_assert!(out.steps <= t_max);
        prop_assert_eq!(out.steps, world.time());
        if let Some(t) = out.t_comm {
            prop_assert!(t <= t_max);
            prop_assert_eq!(out.informed, out.agents);
        }
    }

    /// Agents never move more than one cell per step (in graph distance),
    /// and colour values stay within the FSM's colour range.
    #[test]
    fn single_hop_moves_and_valid_colors(mut world in arb_world()) {
        let lattice: Lattice = world.lattice();
        let kind = world.kind();
        for _ in 0..40 {
            let before: Vec<_> = world.agents().iter().map(|a| a.pos()).collect();
            world.step();
            for (agent, prev) in world.agents().iter().zip(&before) {
                let d = a2a_grid::torus_distance(lattice, kind, *prev, agent.pos());
                prop_assert!(d <= 1, "agent hopped {} cells", d);
            }
            for &c in world.colors() {
                prop_assert!(c < world.genome().spec().n_colors);
            }
        }
    }

    /// The world is deterministic: two copies evolve identically.
    #[test]
    fn stepping_is_deterministic(world in arb_world()) {
        let mut a = world.clone();
        let mut b = world;
        for _ in 0..30 {
            a.step();
            b.step();
            prop_assert_eq!(a.agents(), b.agents());
            prop_assert_eq!(a.colors(), b.colors());
        }
    }

    /// A single agent is always informed immediately, whatever it does.
    #[test]
    fn singleton_task_is_trivial(
        kind in arb_kind(),
        m in 3u16..=8,
        seed in any::<u64>(),
    ) {
        let cfg = WorldConfig::paper(kind, m);
        let mut rng = SmallRng::seed_from_u64(seed);
        let genome = Genome::random(FsmSpec::paper(kind), &mut rng);
        let init = InitialConfig::random(cfg.lattice, kind, 1, &[], &mut rng).unwrap();
        let world = World::new(&cfg, genome, &init).unwrap();
        prop_assert!(world.all_informed());
    }
}

//! Steady-state allocation accounting for the batch layer.
//!
//! `FastWorld::allocation_count()` is a process-global counter of
//! buffer-allocating world constructions, so this file holds exactly one
//! test: any sibling test constructing worlds concurrently would move
//! the counter and turn the assertion into noise. A dedicated
//! integration binary gives the test its own process.

use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::{BatchRunner, FastWorld, InitialConfig, WorldConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn steady_state_batch_runs_perform_no_world_allocation() {
    for kind in [GridKind::Square, GridKind::Triangulate] {
        let cfg = WorldConfig::paper(kind, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(2013);
        let configs: Vec<InitialConfig> = (0..40)
            .map(|_| InitialConfig::random(cfg.lattice, kind, 16, &[], &mut rng).unwrap())
            .collect();

        // Warm-up: the first pooled run builds the arena (one count).
        let _ = runner.outcome_for(&configs[0]).unwrap();
        let before = FastWorld::allocation_count();
        for init in &configs {
            let _ = runner.outcome_for(init).unwrap();
        }
        assert_eq!(
            FastWorld::allocation_count(),
            before,
            "{kind}: steady-state outcome_for must not allocate a world"
        );

        // The baseline path allocates every run, by contrast.
        let _ = runner.fresh_outcome_for(&configs[0]).unwrap();
        assert_eq!(FastWorld::allocation_count(), before + 1);
    }
}

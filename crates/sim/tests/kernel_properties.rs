//! Property-based tests of the bit-packed [`FastWorld`] kernel: agreement
//! with the reference engine and the information-flow invariants the
//! word-wise merge must preserve.

use a2a_fsm::{FsmSpec, Genome};
use a2a_grid::GridKind;
use a2a_sim::{simulate, BatchRunner, FastWorld, InitialConfig, WorldConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_kind() -> impl Strategy<Value = GridKind> {
    prop_oneof![Just(GridKind::Square), Just(GridKind::Triangulate)]
}

/// A random scenario: arbitrary genome and placement on a small torus.
fn arb_scenario() -> impl Strategy<Value = (WorldConfig, Genome, InitialConfig)> {
    (arb_kind(), 4u16..=10, 1usize..=12, any::<u64>()).prop_map(|(kind, m, k, seed)| {
        let cfg = WorldConfig::paper(kind, m);
        let mut rng = SmallRng::seed_from_u64(seed);
        let genome = Genome::random(FsmSpec::paper(kind), &mut rng);
        let k = k.min(cfg.lattice.len());
        let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)
            .expect("k clamped to the cell count");
        (cfg, genome, init)
    })
}

proptest! {
    /// The kernel's whole outcome — `t_comm`, steps, informed count —
    /// equals the reference engine's for arbitrary genomes.
    #[test]
    fn outcome_matches_reference((cfg, genome, init) in arb_scenario(), t_max in 0u32..120) {
        let mut fast = FastWorld::new(&cfg, genome.clone(), &init).unwrap();
        let reference = simulate(&cfg, genome, &init, t_max).unwrap();
        prop_assert_eq!(fast.run(t_max), reference);
    }

    /// The incremental informed counter never decreases, never exceeds the
    /// agent count, and every agent's gathered-bit count is monotone: the
    /// word-wise OR merge can only add information.
    #[test]
    fn informed_count_is_monotone((cfg, genome, init) in arb_scenario()) {
        let mut fast = FastWorld::new(&cfg, genome, &init).unwrap();
        let mut counts: Vec<usize> =
            (0..fast.agent_count()).map(|i| fast.agent_info(i).count()).collect();
        let mut informed = fast.informed_count();
        for _ in 0..60 {
            fast.step();
            for (i, prev) in counts.iter_mut().enumerate() {
                let c = fast.agent_info(i).count();
                prop_assert!(c >= *prev, "agent {} lost bits ({} -> {})", i, *prev, c);
                *prev = c;
            }
            prop_assert!(fast.informed_count() >= informed);
            prop_assert!(fast.informed_count() <= fast.agent_count());
            informed = fast.informed_count();
        }
    }

    /// Completion means completion: when the kernel reports all informed,
    /// every agent's reconstructed infoset contains every agent's bit
    /// (the tail mask hides no missing high bits).
    #[test]
    fn completion_implies_every_bit((cfg, genome, init) in arb_scenario()) {
        let mut fast = FastWorld::new(&cfg, genome, &init).unwrap();
        let out = fast.run(150);
        if out.t_comm.is_some() {
            prop_assert!(fast.all_informed());
            prop_assert_eq!(fast.informed_count(), fast.agent_count());
            for i in 0..fast.agent_count() {
                let info = fast.agent_info(i);
                prop_assert!(info.is_complete(), "agent {} incomplete: {:?}", i, info);
                for j in 0..fast.agent_count() {
                    prop_assert!(info.contains(j), "agent {} misses bit {}", i, j);
                }
            }
        } else {
            prop_assert!(!fast.all_informed());
        }
    }

    /// Stepping is deterministic, and a shared [`BatchRunner`] environment
    /// produces the same evolution as a freshly compiled kernel.
    #[test]
    fn shared_environment_is_equivalent((cfg, genome, init) in arb_scenario()) {
        let runner = BatchRunner::from_genome(&cfg, genome.clone(), 100).unwrap();
        let mut fresh = FastWorld::new(&cfg, genome, &init).unwrap();
        prop_assert_eq!(runner.outcome_for(&init).unwrap(), fresh.run(100));
    }
}

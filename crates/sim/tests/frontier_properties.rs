//! Property tests of the activity-frontier bookkeeping in the batch
//! kernels: at every step, each engine's frontier must contain *exactly*
//! the agents whose infoset is not yet saturated — no stale entries, no
//! premature retirements — and the frontier sweep must reproduce the
//! dense full-`k` scan bit for bit, including across mid-run mode
//! toggles. These are the invariants that make `frontier_speedup` a
//! pure-performance ratio (see DESIGN.md §13).

use a2a_fsm::{FsmSpec, Genome};
use a2a_grid::GridKind;
use a2a_sim::{FastWorld, InitialConfig, MultiWorld, WorldConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_kind() -> impl Strategy<Value = GridKind> {
    prop_oneof![Just(GridKind::Square), Just(GridKind::Triangulate)]
}

/// A random single-run scenario on a small torus.
fn arb_scenario() -> impl Strategy<Value = (WorldConfig, Genome, InitialConfig)> {
    (arb_kind(), 4u16..=10, 1usize..=12, any::<u64>()).prop_map(|(kind, m, k, seed)| {
        let cfg = WorldConfig::paper(kind, m);
        let mut rng = SmallRng::seed_from_u64(seed);
        let genome = Genome::random(FsmSpec::paper(kind), &mut rng);
        let k = k.min(cfg.lattice.len());
        let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)
            .expect("k clamped to the cell count");
        (cfg, genome, init)
    })
}

/// A random batch: several runs of varying agent count in one
/// environment, so run-level retirement staggers.
fn arb_batch() -> impl Strategy<Value = (WorldConfig, Genome, Vec<InitialConfig>)> {
    (arb_kind(), 4u16..=8, 2usize..=5, any::<u64>()).prop_map(|(kind, m, runs, seed)| {
        let cfg = WorldConfig::paper(kind, m);
        let mut rng = SmallRng::seed_from_u64(seed);
        let genome = Genome::random(FsmSpec::paper(kind), &mut rng);
        let inits = (0..runs)
            .map(|i| {
                let k = (1 + (seed as usize).wrapping_add(i * 7) % 10).min(cfg.lattice.len());
                InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)
                    .expect("k clamped to the cell count")
            })
            .collect();
        (cfg, genome, inits)
    })
}

/// The ground truth: agent IDs of run `r` whose infoset is incomplete.
fn unsaturated(world: &MultiWorld, r: usize) -> Vec<u32> {
    (0..world.agent_count(r))
        .filter(|&i| !world.agent_info(r, i).is_complete())
        .map(|i| i as u32)
        .collect()
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

proptest! {
    /// `FastWorld`: after every step the exchange frontier is exactly
    /// the unsaturated set, and its size mirrors the informed counter.
    #[test]
    fn fast_frontier_is_exactly_the_unsaturated_set(
        (cfg, genome, init) in arb_scenario(),
    ) {
        let mut fast = FastWorld::new(&cfg, genome, &init).unwrap();
        for step in 0..60 {
            fast.step();
            let truth: Vec<u32> = (0..fast.agent_count())
                .filter(|&i| !fast.agent_info(i).is_complete())
                .map(|i| i as u32)
                .collect();
            let frontier = sorted(fast.active_agents().to_vec());
            prop_assert_eq!(&frontier, &truth, "step {}", step);
            prop_assert_eq!(
                frontier.len(),
                fast.agent_count() - fast.informed_count(),
                "step {}: frontier size vs informed counter", step
            );
            // Empty frontier ⟺ the run is solved (the retirement test).
            prop_assert_eq!(frontier.is_empty(), fast.all_informed(), "step {}", step);
        }
    }

    /// `MultiWorld`: the per-run frontier permutation prefix is exactly
    /// the unsaturated set of every loaded run at every step.
    #[test]
    fn multi_frontier_is_exactly_the_unsaturated_set(
        (cfg, genome, inits) in arb_batch(),
    ) {
        let mut multi = MultiWorld::new(&cfg, genome).unwrap();
        multi.load(&inits).unwrap();
        for step in 0..40 {
            multi.step();
            for r in 0..multi.run_count() {
                let frontier = sorted(multi.active_agents(r));
                prop_assert_eq!(
                    &frontier, &unsaturated(&multi, r),
                    "step {}, run {}", step, r
                );
                prop_assert_eq!(
                    frontier.len(),
                    multi.agent_count(r) - multi.informed_count(r),
                    "step {}, run {}: frontier size vs informed counter", step, r
                );
            }
        }
    }

    /// The dense scan and the frontier sweep are bit-identical at every
    /// step, and the dense engine's computed active set matches the
    /// frontier engine's maintained one.
    #[test]
    fn dense_and_frontier_sweeps_are_bit_identical(
        (cfg, genome, inits) in arb_batch(),
    ) {
        let mut frontier = MultiWorld::new(&cfg, genome.clone()).unwrap();
        frontier.load(&inits).unwrap();
        let mut dense = MultiWorld::new(&cfg, genome).unwrap();
        dense.set_dense(true);
        dense.load(&inits).unwrap();
        prop_assert!(dense.is_dense() && !frontier.is_dense());
        for step in 0..40 {
            frontier.step();
            dense.step();
            for r in 0..frontier.run_count() {
                prop_assert_eq!(frontier.positions(r), dense.positions(r), "step {}", step);
                prop_assert_eq!(frontier.dirs(r), dense.dirs(r), "step {}", step);
                prop_assert_eq!(frontier.states(r), dense.states(r), "step {}", step);
                prop_assert_eq!(frontier.colors(r), dense.colors(r), "step {}", step);
                for i in 0..frontier.agent_count(r) {
                    prop_assert_eq!(
                        frontier.agent_info(r, i), dense.agent_info(r, i),
                        "step {}, run {}, agent {}", step, r, i
                    );
                }
                prop_assert_eq!(
                    sorted(frontier.active_agents(r)),
                    sorted(dense.active_agents(r)),
                    "step {}, run {}: active sets diverged", step, r
                );
            }
        }
    }

    /// Toggling dense mode mid-run rebuilds the frontier permutation
    /// correctly: a world that switches dense→frontier→dense tracks a
    /// never-toggled world bit for bit, and the rebuilt frontier still
    /// satisfies the exactness invariant.
    #[test]
    fn mode_toggle_rebuilds_the_frontier(
        (cfg, genome, inits) in arb_batch(),
        flip_at in 1usize..20,
    ) {
        let mut straight = MultiWorld::new(&cfg, genome.clone()).unwrap();
        straight.load(&inits).unwrap();
        let mut toggled = MultiWorld::new(&cfg, genome).unwrap();
        toggled.load(&inits).unwrap();
        for step in 0..30 {
            if step == flip_at {
                toggled.set_dense(true);
            }
            if step == flip_at + 5 {
                toggled.set_dense(false);
            }
            straight.step();
            toggled.step();
        }
        toggled.set_dense(false); // rebuild even when the flip window never closed
        for r in 0..straight.run_count() {
            prop_assert_eq!(straight.positions(r), toggled.positions(r), "run {}", r);
            prop_assert_eq!(straight.states(r), toggled.states(r), "run {}", r);
            for i in 0..straight.agent_count(r) {
                prop_assert_eq!(
                    straight.agent_info(r, i), toggled.agent_info(r, i),
                    "run {}, agent {}", r, i
                );
            }
            prop_assert_eq!(
                sorted(toggled.active_agents(r)), unsaturated(&toggled, r), "run {}", r
            );
        }
    }
}

/// The multi-word (`stride > 1`) frontier path: more than 64 agents per
/// run, where completion is detected across words and the frontier
/// swap-remove runs inside the strided sweep.
#[test]
fn wide_runs_keep_the_frontier_exact_and_match_dense() {
    let cfg = WorldConfig::paper(GridKind::Triangulate, 12);
    let mut rng = SmallRng::seed_from_u64(0x57AB_517E);
    let genome = Genome::random(FsmSpec::paper(cfg.kind), &mut rng);
    let inits: Vec<InitialConfig> = (0..2)
        .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 100, &[], &mut rng).unwrap())
        .collect();
    let mut frontier = MultiWorld::new(&cfg, genome.clone()).unwrap();
    frontier.load(&inits).unwrap();
    let mut dense = MultiWorld::new(&cfg, genome).unwrap();
    dense.set_dense(true);
    dense.load(&inits).unwrap();
    for step in 0..60 {
        frontier.step();
        dense.step();
        for r in 0..frontier.run_count() {
            assert_eq!(
                sorted(frontier.active_agents(r)),
                unsaturated(&frontier, r),
                "step {step}, run {r}: wide frontier drifted from the unsaturated set"
            );
            for i in 0..frontier.agent_count(r) {
                assert_eq!(
                    frontier.agent_info(r, i),
                    dense.agent_info(r, i),
                    "step {step}, run {r}, agent {i}: wide sweeps diverged"
                );
            }
        }
    }
}

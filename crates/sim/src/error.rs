//! Error type of the simulator.

use a2a_grid::Pos;
use std::error::Error;
use std::fmt;

/// Errors raised when assembling a simulation world.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// No agents were supplied; the task needs at least one.
    NoAgents,
    /// More agents than cells, or more than the information-vector limit.
    TooManyAgents {
        /// Requested number of agents.
        requested: usize,
        /// Maximum supported for this world.
        limit: usize,
    },
    /// Two agents were placed on the same cell.
    DuplicatePosition(Pos),
    /// An agent or obstacle was placed outside the field.
    OutsideField(Pos),
    /// An agent was placed on an obstacle cell.
    OnObstacle(Pos),
    /// An agent's direction index is invalid for the grid kind.
    InvalidDirection {
        /// The offending direction index.
        index: u8,
        /// Directions available in this grid.
        available: u8,
    },
    /// The FSM genome was built for the other grid kind or an incompatible
    /// colour count.
    SpecMismatch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoAgents => write!(f, "at least one agent is required"),
            SimError::TooManyAgents { requested, limit } => {
                write!(f, "{requested} agents exceed the limit of {limit}")
            }
            SimError::DuplicatePosition(p) => write!(f, "two agents share cell {p}"),
            SimError::OutsideField(p) => write!(f, "position {p} lies outside the field"),
            SimError::OnObstacle(p) => write!(f, "cell {p} is an obstacle"),
            SimError::InvalidDirection { index, available } => {
                write!(f, "direction index {index} invalid ({available} directions available)")
            }
            SimError::SpecMismatch(msg) => write!(f, "incompatible FSM spec: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            SimError::NoAgents.to_string(),
            SimError::TooManyAgents { requested: 9, limit: 4 }.to_string(),
            SimError::DuplicatePosition(Pos::new(1, 2)).to_string(),
            SimError::OutsideField(Pos::new(99, 0)).to_string(),
            SimError::OnObstacle(Pos::new(0, 0)).to_string(),
            SimError::InvalidDirection { index: 5, available: 4 }.to_string(),
            SimError::SpecMismatch("kind".into()).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with(char::is_numeric));
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}

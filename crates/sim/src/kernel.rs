//! A bit-packed batch kernel for the CA system: the same step semantics as
//! [`World`](crate::World), specialised for throughput.
//!
//! [`FastWorld`] keeps agent state as structure-of-arrays, occupancy and
//! obstacles as one `u64` bitset (`solid`), cell colours as bit-planes,
//! neighbour cells in a flat per-lattice offset table, the FSM rows as a
//! pre-resolved per-phase table (turn codes already mapped to direction
//! deltas), and the communication vectors as flat `u64` words merged
//! word-wise with an incremental informed counter for early exit.
//!
//! The engine is differentially tested against `World` (the oracle) in
//! `tests/differential.rs`: both are driven in lockstep and must agree on
//! every agent position, direction, state, colour plane, infoset and on
//! `t_comm` at every step.

use crate::behaviour::Behaviour;
use crate::config::{ColorInit, ConflictPolicy, InitStatePolicy, WorldConfig};
use crate::error::SimError;
use crate::infoset::InfoSet;
use crate::init::InitialConfig;
use crate::run::RunOutcome;
use a2a_fsm::Genome;
use a2a_grid::{Dir, GridKind, Lattice, Pos};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "no cell" / "no agent" in the flat index tables.
pub(crate) const NONE: u32 = u32::MAX;

/// Process-wide count of buffer-allocating world constructions: one per
/// [`FastWorld::from_env`] plus one per [`FastWorld::reset_from`] that
/// had to grow a buffer. The batch layer's steady state (world reuse
/// with a stable agent count) must not move this counter — asserted by
/// the allocation tests in `batch.rs`.
static BUFFER_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// One FSM row with the turn code already resolved to a direction delta.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledEntry {
    pub(crate) next_state: u8,
    pub(crate) set_color: u8,
    /// Rotational steps, `turn_set.delta(turn)` precomputed.
    pub(crate) delta: u8,
    pub(crate) mv: bool,
}

/// Everything about a simulation that does not depend on the initial
/// configuration: lattice geometry, obstacles, initial colouring and the
/// compiled behaviour. Immutable and `Sync`, so one environment is shared
/// (via [`Arc`]) by every run of a batch.
#[derive(Debug)]
pub(crate) struct KernelEnv {
    pub(crate) kind: GridKind,
    pub(crate) lattice: Lattice,
    pub(crate) conflict: ConflictPolicy,
    pub(crate) init_states: InitStatePolicy,
    pub(crate) n_states: u8,
    pub(crate) n_colors: u8,
    pub(crate) n_dirs: usize,
    /// `u64` words per field-sized bitset.
    pub(crate) cell_words: usize,
    /// Bit-planes needed to store a colour in `0..n_colors`.
    pub(crate) n_color_planes: u32,
    /// Flat neighbour table: `fwd[cell * n_dirs + d]` is the cell one step
    /// along direction `d`, or [`NONE`] off a bordered field.
    pub(crate) fwd: Vec<u32>,
    /// Whether any `fwd` entry is [`NONE`] (bordered lattice). Toroidal
    /// fields are fully wrapped, so their exchange gathers skip the
    /// per-neighbour sentinel test entirely.
    pub(crate) has_border: bool,
    /// Obstacle cells as a bitset.
    pub(crate) obstacle_words: Vec<u64>,
    /// Validated initial colouring, packed as bit-planes (plane-major).
    pub(crate) color_planes_init: Vec<u64>,
    /// Compiled FSM rows, one table per behaviour phase.
    pub(crate) phases: Vec<Vec<CompiledEntry>>,
}

impl KernelEnv {
    /// Validates the environment exactly as [`crate::World::with_behaviour`]
    /// does and precomputes the flat tables.
    pub(crate) fn new(config: &WorldConfig, behaviour: &Behaviour) -> Result<Self, SimError> {
        if !behaviour.is_consistent() {
            return Err(SimError::SpecMismatch(
                "time-shuffled behaviours need at least one FSM and a common spec".into(),
            ));
        }
        let spec = behaviour.spec();
        if spec.kind() != config.kind {
            return Err(SimError::SpecMismatch(format!(
                "genome drives {} agents but the world is {}",
                spec.kind(),
                config.kind
            )));
        }
        let lattice = config.lattice;
        let n_cells = lattice.len();
        let cell_words = n_cells.div_ceil(64);

        let mut obstacle_words = vec![0u64; cell_words];
        for &p in &config.obstacles {
            if !lattice.contains(p) {
                return Err(SimError::OutsideField(p));
            }
            bit_set(&mut obstacle_words, lattice.index_of(p));
        }

        let colors = match &config.colors {
            ColorInit::AllZero => vec![0u8; n_cells],
            ColorInit::Pattern(pattern) => {
                if pattern.len() != n_cells {
                    return Err(SimError::SpecMismatch(format!(
                        "colour pattern has {} cells, field has {}",
                        pattern.len(),
                        n_cells
                    )));
                }
                pattern.clone()
            }
        };
        if let Some(&c) = colors.iter().find(|&&c| c >= spec.n_colors) {
            return Err(SimError::SpecMismatch(format!(
                "initial colour {c} exceeds the FSM's {} colours",
                spec.n_colors
            )));
        }
        let n_color_planes = planes_for(spec.n_colors);
        let mut color_planes_init = vec![0u64; cell_words * n_color_planes as usize];
        for (c, &color) in colors.iter().enumerate() {
            write_color(&mut color_planes_init, cell_words, n_color_planes, c, color);
        }

        let n_dirs = usize::from(config.kind.dir_count());
        let mut fwd = vec![NONE; n_cells * n_dirs];
        for c in 0..n_cells {
            let p = lattice.pos_at(c);
            for d in 0..n_dirs {
                if let Some(n) = lattice.neighbor(p, config.kind, Dir::new(d as u8)) {
                    fwd[c * n_dirs + d] = lattice.index_of(n) as u32;
                }
            }
        }

        let phases = (0..behaviour.phase_count())
            .map(|t| compile_genome(behaviour.genome_at(t as u32)))
            .collect();
        let has_border = fwd.contains(&NONE);

        Ok(Self {
            kind: config.kind,
            lattice,
            conflict: config.conflict,
            init_states: config.init_states,
            n_states: spec.n_states,
            n_colors: spec.n_colors,
            n_dirs,
            cell_words,
            n_color_planes,
            fwd,
            has_border,
            obstacle_words,
            color_planes_init,
            phases,
        })
    }
}

/// Resolves every genome row to a [`CompiledEntry`].
fn compile_genome(genome: &Genome) -> Vec<CompiledEntry> {
    let spec = genome.spec();
    (0..spec.entry_count())
        .map(|i| {
            let e = genome.entry(i);
            CompiledEntry {
                next_state: e.next_state,
                set_color: e.action.set_color,
                delta: spec.turn_set.delta(e.action.turn),
                mv: e.action.mv,
            }
        })
        .collect()
}

/// Bit-planes needed for colours in `0..n_colors` (0 when only colour 0
/// exists).
fn planes_for(n_colors: u8) -> u32 {
    32 - u32::from(n_colors - 1).leading_zeros()
}

pub(crate) fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1u64 << (i % 64)) != 0
}

pub(crate) fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

pub(crate) fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

pub(crate) fn read_color(planes: &[u64], cell_words: usize, n_planes: u32, c: usize) -> u8 {
    let mut color = 0u8;
    for p in 0..n_planes as usize {
        let bit = (planes[p * cell_words + c / 64] >> (c % 64)) & 1;
        color |= (bit as u8) << p;
    }
    color
}

pub(crate) fn write_color(planes: &mut [u64], cell_words: usize, n_planes: u32, c: usize, color: u8) {
    for p in 0..n_planes as usize {
        let w = &mut planes[p * cell_words + c / 64];
        let mask = 1u64 << (c % 64);
        if (color >> p) & 1 == 1 {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }
}

/// All `k`-bit vector words full, honouring the tail mask of the last word.
pub(crate) fn words_complete(words: &[u64], tail_mask: u64) -> bool {
    let n = words.len();
    words[..n - 1].iter().all(|&w| w == u64::MAX) && words[n - 1] == tail_mask
}

/// The bit-packed simulation engine: same dynamics as
/// [`World`](crate::World), structure-of-arrays layout.
///
/// # Examples
///
/// ```
/// use a2a_sim::{FastWorld, InitialConfig, WorldConfig};
/// use a2a_fsm::best_t_agent;
/// use a2a_grid::GridKind;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), a2a_sim::SimError> {
/// let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let init = InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng)?;
/// let mut fast = FastWorld::new(&cfg, best_t_agent(), &init)?;
/// let outcome = fast.run(200);
/// assert!(outcome.is_successful());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FastWorld {
    env: Arc<KernelEnv>,
    /// Cell index per agent.
    pos: Vec<u32>,
    /// Direction index per agent.
    dir: Vec<u8>,
    /// Control state per agent.
    state: Vec<u8>,
    /// Agent on each cell ([`NONE`] when empty).
    occupant: Vec<u32>,
    /// Occupancy ∪ obstacles as a bitset — one load answers "hard blocked".
    solid: Vec<u64>,
    /// Current cell colours, bit-plane packed.
    color_planes: Vec<u64>,
    /// Communication vectors, `stride` words per agent.
    info: Vec<u64>,
    info_next: Vec<u64>,
    /// Words per agent vector: `k.div_ceil(64)`.
    stride: usize,
    /// Mask of valid bits in each vector's last word.
    tail_mask: u64,
    /// Which agents are informed; drives the incremental counter.
    complete: Vec<bool>,
    /// The activity frontier: a permutation of `0..k` whose first
    /// [`FastWorld::frontier_len`] entries are exactly the agents with
    /// unsaturated infosets. The exchange sweep iterates this dense
    /// list instead of scanning (and branching on) all `k` agents, and
    /// an agent that completes is retired with one O(1) swap towards
    /// the tail — so the saturation tail costs the active remainder,
    /// not `k`.
    frontier: Vec<u32>,
    /// Live prefix length of [`FastWorld::frontier`].
    frontier_len: usize,
    informed: usize,
    time: u32,
    /// Movement conflicts lost so far (round-2 re-perceptions).
    conflicts: u64,
    // Scratch reused across steps.
    claims: Vec<u32>,
    requests: Vec<(u32, u32)>,
    /// Per agent: (flat compiled-row index, move target or [`NONE`]).
    decisions: Vec<(u32, u32)>,
    /// Agents that completed during the current exchange sweep; their
    /// stale buffer is back-filled to all-ones after the swap so both
    /// buffers stay frozen and later sweeps can skip them entirely.
    newly: Vec<u32>,
}

impl FastWorld {
    /// Assembles a fast world for a single-FSM behaviour.
    ///
    /// # Errors
    ///
    /// Exactly as [`crate::World::new`].
    pub fn new(
        config: &WorldConfig,
        genome: Genome,
        init: &InitialConfig,
    ) -> Result<Self, SimError> {
        Self::with_behaviour(config, Behaviour::Single(genome), init)
    }

    /// Like [`FastWorld::new`] with a full [`Behaviour`].
    ///
    /// # Errors
    ///
    /// Exactly as [`crate::World::with_behaviour`].
    pub fn with_behaviour(
        config: &WorldConfig,
        behaviour: Behaviour,
        init: &InitialConfig,
    ) -> Result<Self, SimError> {
        Self::from_env(Arc::new(KernelEnv::new(config, &behaviour)?), init)
    }

    /// Places one initial configuration into a shared environment and
    /// performs the uncounted `t = 0` exchange.
    pub(crate) fn from_env(env: Arc<KernelEnv>, init: &InitialConfig) -> Result<Self, SimError> {
        init.validate(env.lattice, env.kind)?;
        let k = init.agent_count();
        if k > usize::from(u16::MAX) {
            return Err(SimError::TooManyAgents { requested: k, limit: usize::from(u16::MAX) });
        }

        let n_cells = env.lattice.len();
        let mut occupant = vec![NONE; n_cells];
        let mut solid = env.obstacle_words.clone();
        let mut pos = Vec::with_capacity(k);
        let mut dir = Vec::with_capacity(k);
        let mut state = Vec::with_capacity(k);
        for (i, &(p, d)) in init.placements().iter().enumerate() {
            let idx = env.lattice.index_of(p);
            if bit_get(&env.obstacle_words, idx) {
                return Err(SimError::OnObstacle(p));
            }
            occupant[idx] = i as u32;
            bit_set(&mut solid, idx);
            pos.push(idx as u32);
            dir.push(d.index());
            state.push(env.init_states.state_for(i as u16, env.n_states));
        }

        let stride = k.div_ceil(64);
        let mut info = vec![0u64; k * stride];
        for i in 0..k {
            info[i * stride + i / 64] |= 1u64 << (i % 64);
        }
        let tail = k % 64;
        let tail_mask = if tail == 0 { u64::MAX } else { (1u64 << tail) - 1 };

        let mut world = Self {
            color_planes: env.color_planes_init.clone(),
            info_next: info.clone(),
            env,
            pos,
            dir,
            state,
            occupant,
            solid,
            info,
            stride,
            tail_mask,
            complete: vec![false; k],
            frontier: (0..k as u32).collect(),
            frontier_len: k,
            informed: 0,
            time: 0,
            conflicts: 0,
            claims: vec![NONE; n_cells],
            requests: Vec::with_capacity(k),
            decisions: Vec::with_capacity(k),
            newly: Vec::with_capacity(k),
        };
        // The uncounted exchange right after placement.
        world.exchange();
        BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
        Ok(world)
    }

    /// Rebuilds this world in place for a new initial configuration of
    /// the *same* environment, reusing every buffer: the steady state of
    /// a batch (constant agent count) performs zero heap allocation.
    /// Semantically identical to a fresh [`FastWorld::from_env`] on
    /// `self`'s environment — validation order, placement, identity
    /// info bits and the uncounted `t = 0` exchange all match.
    ///
    /// # Errors
    ///
    /// Exactly as [`FastWorld::from_env`]. On error the world may be
    /// partially rebuilt and must be discarded, except for validation
    /// errors (the first pass), which leave it untouched.
    pub fn reset_from(&mut self, init: &InitialConfig) -> Result<(), SimError> {
        let env = Arc::clone(&self.env);

        // Pass 1 — validate without allocating, replicating
        // `InitialConfig::validate` check for check (error order
        // matters to callers). `claims` doubles as the duplicate
        // scratch: it is all-NONE between steps by invariant.
        if init.placements().is_empty() {
            return Err(SimError::NoAgents);
        }
        let mut marked = 0usize;
        let mut invalid = None;
        for &(pos, dir) in init.placements() {
            if !env.lattice.contains(pos) {
                invalid = Some(SimError::OutsideField(pos));
                break;
            }
            if !dir.is_valid_for(env.kind) {
                invalid = Some(SimError::InvalidDirection {
                    index: dir.index(),
                    available: env.kind.dir_count(),
                });
                break;
            }
            let idx = env.lattice.index_of(pos);
            if self.claims[idx] != NONE {
                invalid = Some(SimError::DuplicatePosition(pos));
                break;
            }
            self.claims[idx] = 0;
            marked += 1;
        }
        for &(pos, _) in &init.placements()[..marked] {
            self.claims[env.lattice.index_of(pos)] = NONE;
        }
        if let Some(e) = invalid {
            return Err(e);
        }
        let k = init.agent_count();
        if k > usize::from(u16::MAX) {
            return Err(SimError::TooManyAgents { requested: k, limit: usize::from(u16::MAX) });
        }

        // Pass 2 — rebuild in place. Clear old occupancy through the old
        // positions (cheaper than wiping the whole field), restore the
        // environment's obstacle/colour baselines, then place.
        let stride = k.div_ceil(64);
        if k > self.pos.capacity()
            || k > self.dir.capacity()
            || k > self.state.capacity()
            || k > self.complete.capacity()
            || k > self.frontier.capacity()
            || k > self.newly.capacity()
            || k * stride > self.info.capacity()
            || k * stride > self.info_next.capacity()
        {
            BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        for &c in &self.pos {
            self.occupant[c as usize] = NONE;
        }
        self.solid.copy_from_slice(&env.obstacle_words);
        self.color_planes.copy_from_slice(&env.color_planes_init);
        self.pos.clear();
        self.dir.clear();
        self.state.clear();
        for (i, &(p, d)) in init.placements().iter().enumerate() {
            let idx = env.lattice.index_of(p);
            if bit_get(&env.obstacle_words, idx) {
                // Partially placed: the caller must discard this world.
                return Err(SimError::OnObstacle(p));
            }
            self.occupant[idx] = i as u32;
            bit_set(&mut self.solid, idx);
            self.pos.push(idx as u32);
            self.dir.push(d.index());
            self.state.push(env.init_states.state_for(i as u16, env.n_states));
        }

        self.stride = stride;
        let tail = k % 64;
        self.tail_mask = if tail == 0 { u64::MAX } else { (1u64 << tail) - 1 };
        self.info.clear();
        self.info.resize(k * stride, 0);
        for i in 0..k {
            self.info[i * stride + i / 64] |= 1u64 << (i % 64);
        }
        self.info_next.clear();
        self.info_next.extend_from_slice(&self.info);
        self.complete.clear();
        self.complete.resize(k, false);
        self.frontier.clear();
        self.frontier.extend(0..k as u32);
        self.frontier_len = k;
        self.informed = 0;
        self.time = 0;
        self.conflicts = 0;
        self.requests.clear();
        self.decisions.clear();
        self.newly.clear();
        // The uncounted exchange right after placement.
        self.exchange();
        Ok(())
    }

    /// Whether this world was compiled from exactly `env` (pointer
    /// identity) — the reuse precondition of [`FastWorld::reset_from`].
    pub(crate) fn shares_env(&self, env: &Arc<KernelEnv>) -> bool {
        Arc::ptr_eq(&self.env, env)
    }

    /// Process-wide count of buffer-allocating constructions
    /// ([`FastWorld::from_env`] calls plus [`FastWorld::reset_from`]
    /// calls that grew a buffer). A reuse-only steady state keeps this
    /// constant — the zero-allocation acceptance check of the batch
    /// layer.
    #[must_use]
    pub fn allocation_count() -> u64 {
        BUFFER_ALLOCS.load(Ordering::Relaxed)
    }

    /// Advances the system by one counted time step (act, then exchange).
    pub fn step(&mut self) {
        self.act();
        self.exchange();
        self.time += 1;
    }

    /// Runs until every agent is informed or `t_max` counted steps passed.
    ///
    /// When observability is on (see [`a2a_obs`]) the run feeds the
    /// global registry (`kernel.t_comm`, `kernel.run.conflicts`,
    /// `kernel.runs`/`kernel.steps`/`kernel.conflicts` counters) and, at
    /// `Debug`, emits a `kernel.run` summary event plus the
    /// informed-count curve (`kernel.informed`, one event per counted
    /// step on which the count grew). At `Trace` every step's act and
    /// exchange phases are timed into `kernel.act.ns` /
    /// `kernel.exchange.ns`. With observability off the only cost over
    /// the bare loop is two relaxed atomic loads per run.
    pub fn run(&mut self, t_max: u32) -> RunOutcome {
        let t_start = self.time;
        let conflicts_start = self.conflicts;
        let debug = a2a_obs::enabled(a2a_obs::Level::Debug);
        if a2a_obs::enabled(a2a_obs::Level::Trace) {
            self.run_traced(t_max);
        } else if debug {
            let mut last = self.informed;
            while !self.all_informed() && self.time < t_max {
                self.step();
                if self.informed != last {
                    last = self.informed;
                    a2a_obs::event!(a2a_obs::Level::Debug, "kernel.informed",
                        "t" => self.time, "informed" => self.informed, "k" => self.pos.len());
                }
            }
        } else {
            while !self.all_informed() && self.time < t_max {
                self.step();
            }
        }
        let outcome = RunOutcome {
            t_comm: self.all_informed().then_some(self.time),
            informed: self.informed,
            agents: self.pos.len(),
            steps: self.time,
        };
        if a2a_obs::metrics_enabled() {
            self.record_run_metrics(outcome, t_start, conflicts_start);
        }
        outcome
    }

    /// `Trace`-level run loop: per-step phase timing on top of the
    /// `Debug` informed-curve events. Arbitration (round 2 of the act
    /// phase) is timed into its own histogram so the causal profiler's
    /// phase table can attribute act time between scanning and
    /// conflict resolution.
    fn run_traced(&mut self, t_max: u32) {
        let reg = a2a_obs::global();
        let act_ns = reg.histogram("kernel.act.ns");
        let arbitrate_ns = reg.histogram("kernel.arbitrate.ns");
        let exchange_ns = reg.histogram("kernel.exchange.ns");
        let mut last = self.informed;
        while !self.all_informed() && self.time < t_max {
            let t0 = std::time::Instant::now();
            self.act_scan();
            let ta = std::time::Instant::now();
            self.act_arbitrate();
            arbitrate_ns.record(ta.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            self.act_apply();
            let t1 = std::time::Instant::now();
            self.exchange();
            exchange_ns.record(t1.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            act_ns.record(t1.duration_since(t0).as_nanos().min(u128::from(u64::MAX)) as u64);
            self.time += 1;
            if self.informed != last {
                last = self.informed;
                a2a_obs::event!(a2a_obs::Level::Debug, "kernel.informed",
                    "t" => self.time, "informed" => self.informed, "k" => self.pos.len());
            }
        }
    }

    /// Feeds one finished run's deltas into the global registry and, at
    /// `Debug`, emits the `kernel.run` summary (field-compatible with
    /// the reference engine's `world.run`, so differential runs line up
    /// in one event stream).
    fn record_run_metrics(&self, outcome: RunOutcome, t_start: u32, conflicts_start: u64) {
        let reg = a2a_obs::global();
        let steps = outcome.steps - t_start;
        let conflicts = self.conflicts - conflicts_start;
        reg.counter("kernel.runs").incr();
        reg.counter("kernel.steps").add(u64::from(steps));
        reg.counter("kernel.conflicts").add(conflicts);
        reg.histogram("kernel.run.conflicts").record(conflicts);
        match outcome.t_comm {
            Some(t) => reg.histogram("kernel.t_comm").record(u64::from(t)),
            None => reg.counter("kernel.unsuccessful").incr(),
        }
        a2a_obs::event!(a2a_obs::Level::Debug, "kernel.run",
            "engine" => "fast",
            "grid" => self.env.kind.to_string(),
            "k" => outcome.agents,
            "steps" => steps,
            "t_comm" => outcome.t_comm.map_or(-1i64, i64::from),
            "informed" => outcome.informed,
            "conflicts" => conflicts);
    }

    /// The act phase: table-driven perception, two-round arbitration,
    /// colour writes and moves — mirroring `World::act` decision for
    /// decision. Split into three inlined sub-phases so the traced run
    /// loop can attribute time to each without touching the hot path.
    fn act(&mut self) {
        self.act_scan();
        self.act_arbitrate();
        self.act_apply();
    }

    /// Round 1: perceive the pre-step configuration; collect and
    /// arbitrate move requests while scanning.
    #[inline]
    fn act_scan(&mut self) {
        let env = &*self.env;
        let phase = &env.phases[self.time as usize % env.phases.len()];
        let n_states = usize::from(env.n_states);
        let n_colors = usize::from(env.n_colors);
        self.decisions.clear();
        self.requests.clear();

        for i in 0..self.pos.len() {
            let here = self.pos[i] as usize;
            let front = env.fwd[here * env.n_dirs + usize::from(self.dir[i])];
            let hard_blocked = front == NONE || bit_get(&self.solid, front as usize);
            let color = read_color(&self.color_planes, env.cell_words, env.n_color_planes, here);
            let front_color = if front == NONE {
                0
            } else {
                read_color(&self.color_planes, env.cell_words, env.n_color_planes, front as usize)
            };
            let x = usize::from(hard_blocked)
                + 2 * (usize::from(color) + n_colors * usize::from(front_color));
            let e = x * n_states + usize::from(self.state[i]);
            let entry = phase[e];
            let mut target = NONE;
            if !hard_blocked && entry.mv {
                target = front;
                self.requests.push((i as u32, front));
                let cur = self.claims[front as usize];
                let winner = match (cur, env.conflict) {
                    (NONE, _) => i as u32,
                    (c, ConflictPolicy::LowestId) => c.min(i as u32),
                    (c, ConflictPolicy::HighestId) => c.max(i as u32),
                };
                self.claims[front as usize] = winner;
            }
            self.decisions.push((e as u32, target));
        }
    }

    /// Round 2: losers re-perceive with blocked = 1 and stay put.
    #[inline]
    fn act_arbitrate(&mut self) {
        let env = &*self.env;
        let n_states = usize::from(env.n_states);
        let n_colors = usize::from(env.n_colors);
        for r in 0..self.requests.len() {
            let (i, target) = self.requests[r];
            if self.claims[target as usize] != i {
                self.conflicts += 1;
                let here = self.pos[i as usize] as usize;
                let color =
                    read_color(&self.color_planes, env.cell_words, env.n_color_planes, here);
                let front_color = read_color(
                    &self.color_planes,
                    env.cell_words,
                    env.n_color_planes,
                    target as usize,
                );
                let x = 1 + 2 * (usize::from(color) + n_colors * usize::from(front_color));
                let e = x * n_states + usize::from(self.state[i as usize]);
                self.decisions[i as usize] = (e as u32, NONE);
            }
        }
        for &(_, target) in &self.requests {
            self.claims[target as usize] = NONE;
        }
    }

    /// Apply: colour writes, state/direction updates, moves. Targets
    /// were empty at step start and claimed by one winner each, so
    /// sequential application is safe (as in the oracle).
    #[inline]
    fn act_apply(&mut self) {
        let env = &*self.env;
        let phase = &env.phases[self.time as usize % env.phases.len()];
        for i in 0..self.pos.len() {
            let (e, target) = self.decisions[i];
            let entry = phase[e as usize];
            let here = self.pos[i] as usize;
            write_color(
                &mut self.color_planes,
                env.cell_words,
                env.n_color_planes,
                here,
                entry.set_color,
            );
            self.state[i] = entry.next_state;
            self.dir[i] = (self.dir[i] + entry.delta) % env.n_dirs as u8;
            if target != NONE {
                let t = target as usize;
                bit_clear(&mut self.solid, here);
                bit_set(&mut self.solid, t);
                self.occupant[here] = NONE;
                self.occupant[t] = i as u32;
                self.pos[i] = target;
            }
        }
    }

    /// The synchronous exchange: word-wise ORs of the pre-phase vectors.
    /// The sweep iterates the activity frontier — the dense list of
    /// agents whose infoset is still unsaturated — instead of scanning
    /// (and branching on) all `k` agents: once an agent completes,
    /// *both* buffers are frozen at all-ones (the stale buffer is
    /// back-filled after the swap below), so there is nothing left to
    /// maintain and it is swap-removed from the frontier in O(1).
    /// Peers still read the correct pre-phase words either way, because
    /// the back-fill value equals the value a copy would have produced.
    /// Frontier order is irrelevant: each agent's gather reads only the
    /// stale `info` buffer and writes its own `info_next` region.
    fn exchange(&mut self) {
        let env = &*self.env;
        let stride = self.stride;
        let mut len = self.frontier_len;
        let mut j = 0;
        while j < len {
            let i = self.frontier[j] as usize;
            let base = i * stride;
            self.info_next[base..base + stride]
                .copy_from_slice(&self.info[base..base + stride]);
            let here = self.pos[i] as usize;
            for d in 0..env.n_dirs {
                let nc = env.fwd[here * env.n_dirs + d];
                if nc == NONE {
                    continue;
                }
                let occ = self.occupant[nc as usize];
                if occ != NONE && occ as usize != i {
                    let ob = occ as usize * stride;
                    for w in 0..stride {
                        self.info_next[base + w] |= self.info[ob + w];
                    }
                }
            }
            if words_complete(&self.info_next[base..base + stride], self.tail_mask) {
                self.complete[i] = true;
                self.informed += 1;
                self.newly.push(i as u32);
                len -= 1;
                self.frontier[j] = self.frontier[len];
                self.frontier[len] = i as u32;
            } else {
                j += 1;
            }
        }
        self.frontier_len = len;
        std::mem::swap(&mut self.info, &mut self.info_next);
        // Freeze the stale buffer of agents that completed this sweep:
        // from the next step on, both buffers hold their all-ones vector
        // and the loop above can skip them without any copying.
        for &i in &self.newly {
            let base = i as usize * stride;
            for w in &mut self.info_next[base..base + stride - 1] {
                *w = u64::MAX;
            }
            self.info_next[base + stride - 1] = self.tail_mask;
        }
        self.newly.clear();
    }

    /// Steps executed so far.
    #[must_use]
    pub fn time(&self) -> u32 {
        self.time
    }

    /// Grid family.
    #[must_use]
    pub fn kind(&self) -> GridKind {
        self.env.kind
    }

    /// The cell field.
    #[must_use]
    pub fn lattice(&self) -> Lattice {
        self.env.lattice
    }

    /// Number of agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.pos.len()
    }

    /// Number of informed agents.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed
    }

    /// Movement conflicts lost so far: agents that requested a cell,
    /// lost the arbitration and re-perceived with `blocked = 1`.
    #[must_use]
    pub fn conflict_losses(&self) -> u64 {
        self.conflicts
    }

    /// Whether the all-to-all task is solved.
    #[must_use]
    pub fn all_informed(&self) -> bool {
        self.informed == self.pos.len()
    }

    /// Agent IDs still in the exchange frontier: exactly the agents whose
    /// infoset is not yet saturated. Order is unspecified (the frontier is a
    /// permutation prefix maintained by O(1) swap-remove).
    #[must_use]
    pub fn active_agents(&self) -> &[u32] {
        &self.frontier[..self.frontier_len]
    }

    /// Agent positions in ID order (differential-test snapshot).
    #[must_use]
    pub fn positions(&self) -> Vec<Pos> {
        self.pos.iter().map(|&c| self.env.lattice.pos_at(c as usize)).collect()
    }

    /// Agent directions in ID order.
    #[must_use]
    pub fn dirs(&self) -> Vec<Dir> {
        self.dir.iter().map(|&d| Dir::new(d)).collect()
    }

    /// Agent control states in ID order.
    #[must_use]
    pub fn states(&self) -> Vec<u8> {
        self.state.clone()
    }

    /// Row-major cell colours, unpacked from the bit-planes.
    #[must_use]
    pub fn colors(&self) -> Vec<u8> {
        let env = &*self.env;
        (0..env.lattice.len())
            .map(|c| read_color(&self.color_planes, env.cell_words, env.n_color_planes, c))
            .collect()
    }

    /// Agent `i`'s communication vector as an [`InfoSet`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.agent_count()`.
    #[must_use]
    pub fn agent_info(&self, i: usize) -> InfoSet {
        let k = self.pos.len();
        assert!(i < k, "agent {i} out of range for {k} agents");
        let mut set = InfoSet::empty(k);
        let base = i * self.stride;
        for b in 0..k {
            if self.info[base + b / 64] & (1u64 << (b % 64)) != 0 {
                set.insert(b);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use a2a_fsm::{best_s_agent, best_t_agent};

    fn cfg(kind: GridKind) -> WorldConfig {
        WorldConfig::paper(kind, 16)
    }

    fn assert_lockstep(cfg: &WorldConfig, genome: Genome, init: &InitialConfig, steps: u32) {
        let mut slow = World::new(cfg, genome.clone(), init).unwrap();
        let mut fast = FastWorld::new(cfg, genome, init).unwrap();
        for t in 0..=steps {
            assert_eq!(
                fast.positions(),
                slow.agents().iter().map(|a| a.pos()).collect::<Vec<_>>(),
                "positions diverge at t={t}"
            );
            assert_eq!(fast.colors(), slow.colors().to_vec(), "colours diverge at t={t}");
            assert_eq!(fast.informed_count(), slow.informed_count(), "informed at t={t}");
            slow.step();
            fast.step();
        }
    }

    #[test]
    fn matches_world_on_random_fields() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for (kind, genome) in [
            (GridKind::Square, best_s_agent()),
            (GridKind::Triangulate, best_t_agent()),
        ] {
            let config = cfg(kind);
            let mut rng = SmallRng::seed_from_u64(5);
            let init =
                InitialConfig::random(config.lattice, kind, 16, &[], &mut rng).unwrap();
            assert_lockstep(&config, genome, &init, 60);
        }
    }

    #[test]
    fn fully_packed_takes_diameter_steps() {
        for (kind, expected) in [(GridKind::Square, 15), (GridKind::Triangulate, 9)] {
            let lattice = Lattice::torus(16, 16);
            let placements: Vec<(Pos, Dir)> =
                lattice.positions().map(|p| (p, Dir::new(0))).collect();
            let mut fast = FastWorld::new(
                &cfg(kind),
                a2a_fsm::best_agent(kind),
                &InitialConfig::new(placements),
            )
            .unwrap();
            let outcome = fast.run(100);
            assert_eq!(outcome.t_comm, Some(expected), "{kind}");
        }
    }

    #[test]
    fn single_agent_is_informed_immediately() {
        let init = InitialConfig::new(vec![(Pos::new(4, 4), Dir::new(0))]);
        let mut w = FastWorld::new(&cfg(GridKind::Square), best_s_agent(), &init).unwrap();
        assert!(w.all_informed());
        assert_eq!(w.run(100).t_comm, Some(0));
    }

    #[test]
    fn rejects_kind_mismatch_and_bad_pattern() {
        let init = InitialConfig::new(vec![(Pos::new(0, 0), Dir::new(0))]);
        assert!(matches!(
            FastWorld::new(&cfg(GridKind::Square), best_t_agent(), &init),
            Err(SimError::SpecMismatch(_))
        ));
        let mut config = cfg(GridKind::Square);
        config.colors = ColorInit::Pattern(vec![7u8; 256]);
        assert!(matches!(
            FastWorld::new(&config, best_s_agent(), &init),
            Err(SimError::SpecMismatch(_))
        ));
    }

    #[test]
    fn obstacle_placement_rejected() {
        let mut config = cfg(GridKind::Square);
        config.obstacles = vec![Pos::new(3, 3)];
        let init = InitialConfig::new(vec![(Pos::new(3, 3), Dir::new(0))]);
        assert!(matches!(
            FastWorld::new(&config, best_s_agent(), &init),
            Err(SimError::OnObstacle(_))
        ));
    }

    #[test]
    fn agent_info_reconstructs_infosets() {
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(1, 0), Dir::new(0)),
            (Pos::new(8, 8), Dir::new(0)),
        ]);
        let w = FastWorld::new(&cfg(GridKind::Square), best_s_agent(), &init).unwrap();
        assert!(w.agent_info(0).contains(1), "adjacent pair exchanged at t=0");
        assert!(!w.agent_info(0).contains(2), "distant agent unknown");
        assert_eq!(w.agent_info(2).count(), 1);
    }

    #[test]
    fn conflict_losses_count_round_two_reperceptions() {
        use a2a_fsm::{FsmSpec, TableRow};
        // Two agents converging on (5,5): exactly one loser on step 1.
        let spec = FsmSpec::paper(GridKind::Square);
        let rows: Vec<TableRow> = (0..8)
            .map(|_| TableRow::from_digits("0000", "0000", "1111", "0000"))
            .collect();
        let straight = Genome::from_rows(spec, &rows);
        let init = InitialConfig::new(vec![
            (Pos::new(5, 4), Dir::new(1)),
            (Pos::new(5, 6), Dir::new(3)),
        ]);
        let mut w = FastWorld::new(&cfg(GridKind::Square), straight, &init).unwrap();
        assert_eq!(w.conflict_losses(), 0);
        w.step();
        assert_eq!(w.conflict_losses(), 1, "id 1 lost the arbitration for (5,5)");
        assert_eq!(w.positions()[0], Pos::new(5, 5));
    }

    #[test]
    fn reset_from_matches_fresh_construction() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for (kind, genome) in [
            (GridKind::Square, best_s_agent()),
            (GridKind::Triangulate, best_t_agent()),
        ] {
            let config = cfg(kind);
            let env = Arc::new(KernelEnv::new(&config, &Behaviour::Single(genome)).unwrap());
            let mut rng = SmallRng::seed_from_u64(41);
            let first = InitialConfig::random(config.lattice, kind, 8, &[], &mut rng).unwrap();
            let mut reused = FastWorld::from_env(Arc::clone(&env), &first).unwrap();
            let _ = reused.run(200);
            // Varying k across resets exercises the stride/tail rebuild.
            for k in [8usize, 12, 3, 12, 64] {
                let init = InitialConfig::random(config.lattice, kind, k, &[], &mut rng).unwrap();
                reused.reset_from(&init).unwrap();
                let mut fresh = FastWorld::from_env(Arc::clone(&env), &init).unwrap();
                assert_eq!(reused.positions(), fresh.positions(), "{kind} k={k}");
                assert_eq!(reused.states(), fresh.states(), "{kind} k={k}");
                assert_eq!(reused.colors(), fresh.colors(), "{kind} k={k}");
                assert_eq!(reused.informed_count(), fresh.informed_count(), "{kind} k={k}");
                assert_eq!(reused.run(200), fresh.run(200), "{kind} k={k}");
            }
        }
    }

    #[test]
    fn reset_from_replicates_validation_error_order() {
        let config = cfg(GridKind::Square);
        let env = Arc::new(
            KernelEnv::new(&config, &Behaviour::Single(best_s_agent())).unwrap(),
        );
        let ok = InitialConfig::new(vec![(Pos::new(1, 1), Dir::new(0))]);
        let mut world = FastWorld::from_env(Arc::clone(&env), &ok).unwrap();
        let dup = InitialConfig::new(vec![
            (Pos::new(2, 2), Dir::new(0)),
            (Pos::new(2, 2), Dir::new(1)),
        ]);
        assert!(matches!(world.reset_from(&dup), Err(SimError::DuplicatePosition(_))));
        assert!(matches!(
            world.reset_from(&InitialConfig::new(Vec::new())),
            Err(SimError::NoAgents)
        ));
        assert!(matches!(
            world.reset_from(&InitialConfig::new(vec![(Pos::new(99, 0), Dir::new(0))])),
            Err(SimError::OutsideField(_))
        ));
        assert!(matches!(
            world.reset_from(&InitialConfig::new(vec![(Pos::new(0, 0), Dir::new(7))])),
            Err(SimError::InvalidDirection { index: 7, available: 4 })
        ));
        // Validation failures leave the world reusable.
        world.reset_from(&ok).unwrap();
        assert_eq!(world.run(50).t_comm, Some(0));
    }

    #[test]
    fn color_planes_round_trip() {
        for n_colors in [1u8, 2, 3, 4, 5, 8] {
            let n_planes = planes_for(n_colors);
            let mut planes = vec![0u64; 3 * n_planes as usize];
            for c in 0..100 {
                let color = (c % usize::from(n_colors)) as u8;
                write_color(&mut planes, 3, n_planes, c, color);
            }
            for c in 0..100 {
                assert_eq!(
                    read_color(&planes, 3, n_planes, c),
                    (c % usize::from(n_colors)) as u8,
                    "n_colors={n_colors} cell={c}"
                );
            }
        }
    }
}

//! Agent behaviours: a single FSM (the paper's setting) or a
//! time-shuffled sequence of FSMs.
//!
//! Time-shuffling — alternating two FSMs over time — is reported by the
//! authors' earlier work (ref. \[8\] in the paper) to speed up the task; the
//! paper itself deliberately uses one FSM ("we used only one FSM with 4
//! states, instead of using two FSMs with 8 states each"). Supporting
//! both makes that prior-work comparison reproducible.

use a2a_fsm::{FsmSpec, Genome};
use serde::{Deserialize, Serialize};

/// What drives the agents: one FSM, or several alternating by time step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Behaviour {
    /// All steps use the same FSM (the paper's model).
    Single(Genome),
    /// Step `t` uses FSM `t mod n` — "time-shuffling" of `n` FSMs.
    TimeShuffled(Vec<Genome>),
}

impl Behaviour {
    /// Creates a time-shuffled behaviour of exactly two FSMs (the form
    /// used in the authors' earlier work).
    ///
    /// # Panics
    ///
    /// Panics if the genomes have different specs.
    #[must_use]
    pub fn shuffled_pair(a: Genome, b: Genome) -> Self {
        assert_eq!(a.spec(), b.spec(), "shuffled FSMs must share one spec");
        Behaviour::TimeShuffled(vec![a, b])
    }

    /// The common structural spec of all phases.
    ///
    /// # Panics
    ///
    /// Panics on an empty `TimeShuffled` list (rejected by
    /// [`Behaviour::is_consistent`], which [`crate::World`] enforces).
    #[must_use]
    pub fn spec(&self) -> FsmSpec {
        match self {
            Behaviour::Single(g) => g.spec(),
            Behaviour::TimeShuffled(gs) => gs.first().expect("non-empty shuffle").spec(),
        }
    }

    /// Whether the behaviour is well-formed: at least one FSM and all
    /// phases sharing one spec.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        match self {
            Behaviour::Single(_) => true,
            Behaviour::TimeShuffled(gs) => {
                !gs.is_empty() && gs.iter().all(|g| g.spec() == gs[0].spec())
            }
        }
    }

    /// The FSM driving the step taken at time `t` (the step that moves
    /// the world from `t` to `t + 1`).
    #[must_use]
    pub fn genome_at(&self, t: u32) -> &Genome {
        match self {
            Behaviour::Single(g) => g,
            Behaviour::TimeShuffled(gs) => &gs[t as usize % gs.len()],
        }
    }

    /// Number of phases (1 for `Single`).
    #[must_use]
    pub fn phase_count(&self) -> usize {
        match self {
            Behaviour::Single(_) => 1,
            Behaviour::TimeShuffled(gs) => gs.len(),
        }
    }
}

impl From<Genome> for Behaviour {
    fn from(genome: Genome) -> Self {
        Behaviour::Single(genome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::{best_t_agent, MutationRates};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn single_behaviour_is_time_invariant() {
        let b = Behaviour::from(best_t_agent());
        assert_eq!(b.genome_at(0), b.genome_at(17));
        assert_eq!(b.phase_count(), 1);
        assert!(b.is_consistent());
    }

    #[test]
    fn pair_alternates_by_parity() {
        let a = best_t_agent();
        let mut rng = SmallRng::seed_from_u64(1);
        let c = a2a_fsm::offspring(&a, MutationRates::uniform(0.3), &mut rng);
        let b = Behaviour::shuffled_pair(a.clone(), c.clone());
        assert_eq!(b.genome_at(0), &a);
        assert_eq!(b.genome_at(1), &c);
        assert_eq!(b.genome_at(2), &a);
        assert_eq!(b.phase_count(), 2);
    }

    #[test]
    #[should_panic(expected = "share one spec")]
    fn mismatched_pair_rejected() {
        let _ = Behaviour::shuffled_pair(a2a_fsm::best_t_agent(), a2a_fsm::best_s_agent());
    }

    #[test]
    fn consistency_checks() {
        assert!(!Behaviour::TimeShuffled(vec![]).is_consistent());
        let g = best_t_agent();
        assert!(Behaviour::TimeShuffled(vec![g.clone(), g]).is_consistent());
    }
}

#[cfg(test)]
mod world_integration_tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::init::InitialConfig;
    use crate::run::{simulate, simulate_behaviour};
    use a2a_fsm::{best_t_agent, MutationRates};
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shuffling_identical_genomes_equals_single() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let mut rng = SmallRng::seed_from_u64(8);
        let init = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
        let g = best_t_agent();
        let single = simulate(&cfg, g.clone(), &init, 1000).unwrap();
        let shuffled = simulate_behaviour(
            &cfg,
            Behaviour::shuffled_pair(g.clone(), g),
            &init,
            1000,
        )
        .unwrap();
        assert_eq!(single, shuffled, "A/A shuffle is the single-FSM system");
    }

    #[test]
    fn shuffled_pair_changes_the_trajectory() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let mut rng = SmallRng::seed_from_u64(9);
        let init = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
        let a = best_t_agent();
        let b = a2a_fsm::offspring(&a, MutationRates::uniform(0.4), &mut rng);
        let single = simulate(&cfg, a.clone(), &init, 1000).unwrap();
        let shuffled =
            simulate_behaviour(&cfg, Behaviour::shuffled_pair(a, b), &init, 1000).unwrap();
        // Different dynamics; the outcomes will almost surely differ in
        // some field (time or informed count).
        assert_ne!(single, shuffled);
    }

    #[test]
    fn empty_shuffle_is_rejected_by_the_world() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let init = InitialConfig::new(vec![(a2a_grid::Pos::new(0, 0), a2a_grid::Dir::new(0))]);
        let err = crate::world::World::with_behaviour(
            &cfg,
            Behaviour::TimeShuffled(vec![]),
            &init,
        )
        .unwrap_err();
        assert!(matches!(err, crate::error::SimError::SpecMismatch(_)));
    }
}

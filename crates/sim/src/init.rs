//! Initial configurations (Sect. 4): seeded random placements plus the
//! three manually designed hard cases ("agents queueing in a line, agents
//! on the diagonal").

use crate::error::SimError;
use a2a_grid::{Dir, GridKind, Lattice, Pos};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// An initial configuration: position and direction per agent, in ID
/// order. Control states are assigned separately by the world's
/// [`crate::InitStatePolicy`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitialConfig {
    placements: Vec<(Pos, Dir)>,
}

impl InitialConfig {
    /// Builds a configuration from explicit placements.
    #[must_use]
    pub fn new(placements: Vec<(Pos, Dir)>) -> Self {
        Self { placements }
    }

    /// Number of agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.placements.len()
    }

    /// The placements in agent-ID order.
    #[must_use]
    pub fn placements(&self) -> &[(Pos, Dir)] {
        &self.placements
    }

    /// Checks the configuration against a field and grid kind: all agents
    /// inside, on distinct cells, with valid directions.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, lattice: Lattice, kind: GridKind) -> Result<(), SimError> {
        if self.placements.is_empty() {
            return Err(SimError::NoAgents);
        }
        let mut seen = vec![false; lattice.len()];
        for &(pos, dir) in &self.placements {
            if !lattice.contains(pos) {
                return Err(SimError::OutsideField(pos));
            }
            if !dir.is_valid_for(kind) {
                return Err(SimError::InvalidDirection {
                    index: dir.index(),
                    available: kind.dir_count(),
                });
            }
            let idx = lattice.index_of(pos);
            if seen[idx] {
                return Err(SimError::DuplicatePosition(pos));
            }
            seen[idx] = true;
        }
        Ok(())
    }

    /// A uniformly random configuration: `k` distinct cells (avoiding
    /// `excluded` cells, e.g. obstacles) and uniform directions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyAgents`] if fewer than `k` free cells
    /// exist, or [`SimError::NoAgents`] if `k == 0`.
    pub fn random<R: Rng + ?Sized>(
        lattice: Lattice,
        kind: GridKind,
        k: usize,
        excluded: &[Pos],
        rng: &mut R,
    ) -> Result<Self, SimError> {
        if k == 0 {
            return Err(SimError::NoAgents);
        }
        let mut free: Vec<usize> = (0..lattice.len()).collect();
        for &p in excluded {
            if !lattice.contains(p) {
                return Err(SimError::OutsideField(p));
            }
        }
        if !excluded.is_empty() {
            let mut blocked = vec![false; lattice.len()];
            for &p in excluded {
                blocked[lattice.index_of(p)] = true;
            }
            free.retain(|&i| !blocked[i]);
        }
        if k > free.len() {
            return Err(SimError::TooManyAgents { requested: k, limit: free.len() });
        }
        // Partial Fisher–Yates: the first k entries become a uniform
        // sample without replacement.
        for i in 0..k {
            let j = rng.random_range(i..free.len());
            free.swap(i, j);
        }
        let placements = free[..k]
            .iter()
            .map(|&cell| {
                let dir = Dir::new(rng.random_range(0..kind.dir_count()));
                (lattice.pos_at(cell), dir)
            })
            .collect();
        Ok(Self { placements })
    }

    /// Manual configuration 1: a queue of `k` agents in the middle row,
    /// all heading east (`→`).
    ///
    /// Returns `None` if the row is too short for `k` agents.
    #[must_use]
    pub fn queue_east(lattice: Lattice, k: usize) -> Option<Self> {
        Self::queue(lattice, k, Dir::new(0))
    }

    /// Manual configuration 2: the same queue, all heading west (`←`).
    ///
    /// Returns `None` if the row is too short for `k` agents.
    #[must_use]
    pub fn queue_west(lattice: Lattice, kind: GridKind, k: usize) -> Option<Self> {
        Self::queue(lattice, k, west(kind))
    }

    fn queue(lattice: Lattice, k: usize, dir: Dir) -> Option<Self> {
        if k == 0 || k > usize::from(lattice.width()) {
            return None;
        }
        let y = lattice.height() / 2;
        let placements = (0..k as u16).map(|x| (Pos::new(x, y), dir)).collect();
        Some(Self { placements })
    }

    /// Manual configuration 3: agents on the main diagonal "with maximum
    /// space between them", all heading west (`←`).
    ///
    /// Returns `None` if the diagonal is too short for `k` agents.
    #[must_use]
    pub fn diagonal_spaced(lattice: Lattice, kind: GridKind, k: usize) -> Option<Self> {
        let diag = usize::from(lattice.width().min(lattice.height()));
        if k == 0 || k > diag {
            return None;
        }
        let dir = west(kind);
        let placements = (0..k)
            .map(|i| {
                let c = (i * diag / k) as u16;
                (Pos::new(c, c), dir)
            })
            .collect();
        Some(Self { placements })
    }
}

impl InitialConfig {
    /// A tight `⌈√k⌉ × ⌈√k⌉` cluster of agents in the field centre, all
    /// heading east — a stress case for the conflict arbitration (every
    /// interior agent starts blocked).
    ///
    /// Returns `None` if the cluster does not fit the field.
    #[must_use]
    pub fn cluster(lattice: Lattice, k: usize) -> Option<Self> {
        if k == 0 {
            return None;
        }
        let side = (k as f64).sqrt().ceil() as u16;
        if side > lattice.width() || side > lattice.height() {
            return None;
        }
        let (x0, y0) = (
            (lattice.width() - side) / 2,
            (lattice.height() - side) / 2,
        );
        let placements = (0..k)
            .map(|i| {
                let (dx, dy) = ((i as u16) % side, (i as u16) / side);
                (Pos::new(x0 + dx, y0 + dy), Dir::new(0))
            })
            .collect();
        Some(Self { placements })
    }

    /// Agents split between the four field corners (as evenly as
    /// possible), each heading towards the centre along its row — a
    /// maximum-initial-spread case.
    ///
    /// Returns `None` when `k` exceeds the cell count or corner runs
    /// would collide (`k > 2·min(w, h)`).
    #[must_use]
    pub fn corners(lattice: Lattice, kind: GridKind, k: usize) -> Option<Self> {
        if k == 0 || k > 2 * usize::from(lattice.width().min(lattice.height())) {
            return None;
        }
        let w = lattice.width();
        let h = lattice.height();
        let east = Dir::new(0);
        let west_dir = west(kind);
        let mut placements = Vec::with_capacity(k);
        for i in 0..k {
            let run = (i / 4) as u16;
            let (pos, dir) = match i % 4 {
                0 => (Pos::new(run, 0), east),
                1 => (Pos::new(w - 1 - run, 0), west_dir),
                2 => (Pos::new(run, h - 1), east),
                _ => (Pos::new(w - 1 - run, h - 1), west_dir),
            };
            placements.push((pos, dir));
        }
        Some(Self { placements })
    }
}

/// The westwards direction index of a grid kind (`←` in the paper's manual
/// configurations).
fn west(kind: GridKind) -> Dir {
    match kind {
        GridKind::Square => Dir::new(2),
        GridKind::Triangulate => Dir::new(3),
    }
}

/// The evaluation sets of the paper: for each agent count, 1000 seeded
/// random configurations plus the manually designed hard cases
/// (`1003` total when all three fit the field).
///
/// The random stream is fully determined by `seed`, `k` and the field, so
/// every experiment in EXPERIMENTS.md is reproducible.
///
/// # Errors
///
/// Propagates [`InitialConfig::random`] errors (e.g. `k` exceeding the
/// cell count).
pub fn paper_config_set(
    lattice: Lattice,
    kind: GridKind,
    k: usize,
    n_random: usize,
    seed: u64,
) -> Result<Vec<InitialConfig>, SimError> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut set = Vec::with_capacity(n_random + 3);
    for _ in 0..n_random {
        set.push(InitialConfig::random(lattice, kind, k, &[], &mut rng)?);
    }
    set.extend(InitialConfig::queue_east(lattice, k));
    set.extend(InitialConfig::queue_west(lattice, kind, k));
    set.extend(InitialConfig::diagonal_spaced(lattice, kind, k));
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const L: fn() -> Lattice = || Lattice::torus(16, 16);

    #[test]
    fn random_configs_are_valid_and_reproducible() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let mut r1 = SmallRng::seed_from_u64(11);
            let mut r2 = SmallRng::seed_from_u64(11);
            let a = InitialConfig::random(L(), kind, 16, &[], &mut r1).unwrap();
            let b = InitialConfig::random(L(), kind, 16, &[], &mut r2).unwrap();
            assert_eq!(a, b);
            a.validate(L(), kind).unwrap();
        }
    }

    #[test]
    fn random_full_pack_uses_every_cell() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = InitialConfig::random(L(), GridKind::Square, 256, &[], &mut rng).unwrap();
        cfg.validate(L(), GridKind::Square).unwrap();
        assert_eq!(cfg.agent_count(), 256);
    }

    #[test]
    fn random_respects_exclusions() {
        let mut rng = SmallRng::seed_from_u64(4);
        let wall: Vec<Pos> = (0..16).map(|x| Pos::new(x, 8)).collect();
        let cfg = InitialConfig::random(L(), GridKind::Square, 64, &wall, &mut rng).unwrap();
        for (p, _) in cfg.placements() {
            assert_ne!(p.y, 8);
        }
    }

    #[test]
    fn random_overfull_errors() {
        let mut rng = SmallRng::seed_from_u64(5);
        let err = InitialConfig::random(L(), GridKind::Square, 257, &[], &mut rng).unwrap_err();
        assert!(matches!(err, SimError::TooManyAgents { requested: 257, limit: 256 }));
    }

    #[test]
    fn queues_head_the_right_way() {
        let east = InitialConfig::queue_east(L(), 8).unwrap();
        assert!(east.placements().iter().all(|&(_, d)| d == Dir::new(0)));
        assert!(east.placements().iter().all(|&(p, _)| p.y == 8));

        let west_s = InitialConfig::queue_west(L(), GridKind::Square, 8).unwrap();
        assert!(west_s.placements().iter().all(|&(_, d)| d == Dir::new(2)));
        let west_t = InitialConfig::queue_west(L(), GridKind::Triangulate, 8).unwrap();
        assert!(west_t.placements().iter().all(|&(_, d)| d == Dir::new(3)));
    }

    #[test]
    fn diagonal_is_evenly_spaced() {
        let cfg = InitialConfig::diagonal_spaced(L(), GridKind::Square, 8).unwrap();
        let xs: Vec<u16> = cfg.placements().iter().map(|&(p, _)| p.x).collect();
        assert_eq!(xs, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        for &(p, _) in cfg.placements() {
            assert_eq!(p.x, p.y);
        }
        cfg.validate(L(), GridKind::Square).unwrap();
    }

    #[test]
    fn manual_configs_absent_when_too_large() {
        assert!(InitialConfig::queue_east(L(), 17).is_none());
        assert!(InitialConfig::diagonal_spaced(L(), GridKind::Square, 17).is_none());
        assert!(InitialConfig::queue_east(L(), 0).is_none());
    }

    #[test]
    fn paper_set_has_1003_configs_for_8_agents() {
        let set = paper_config_set(L(), GridKind::Triangulate, 8, 1000, 42).unwrap();
        assert_eq!(set.len(), 1003);
        for cfg in &set {
            cfg.validate(L(), GridKind::Triangulate).unwrap();
            assert_eq!(cfg.agent_count(), 8);
        }
    }

    #[test]
    fn paper_set_drops_unrepresentable_manual_configs() {
        // 32 agents exceed a 16-cell row and diagonal: only the random part.
        let set = paper_config_set(L(), GridKind::Square, 32, 100, 42).unwrap();
        assert_eq!(set.len(), 100);
        // 256 agents: same.
        let set = paper_config_set(L(), GridKind::Square, 256, 10, 42).unwrap();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn validate_rejects_duplicates_and_bad_dirs() {
        let dup = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(0, 0), Dir::new(1)),
        ]);
        assert!(matches!(
            dup.validate(L(), GridKind::Square),
            Err(SimError::DuplicatePosition(_))
        ));
        let bad_dir = InitialConfig::new(vec![(Pos::new(0, 0), Dir::new(4))]);
        assert!(matches!(
            bad_dir.validate(L(), GridKind::Square),
            Err(SimError::InvalidDirection { index: 4, available: 4 })
        ));
        assert!(bad_dir.validate(L(), GridKind::Triangulate).is_ok());
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;

    const L: fn() -> Lattice = || Lattice::torus(16, 16);

    #[test]
    fn cluster_is_contiguous_and_valid() {
        for k in [1usize, 4, 9, 16, 255] {
            let cfg = InitialConfig::cluster(L(), k).unwrap();
            cfg.validate(L(), GridKind::Square).unwrap();
            assert_eq!(cfg.agent_count(), k);
        }
        assert!(InitialConfig::cluster(L(), 0).is_none());
        assert!(InitialConfig::cluster(Lattice::torus(2, 2), 5).is_none());
    }

    #[test]
    fn cluster_interior_agents_start_blocked() {
        use crate::world::World;
        let cfg = WorldLessCheck::world(InitialConfig::cluster(L(), 9).unwrap());
        // In a 3x3 east-heading block the two western columns are blocked.
        let blocked = cfg
            .agents()
            .iter()
            .filter(|a| {
                let front = L().neighbor(a.pos(), GridKind::Square, a.dir()).unwrap();
                cfg.agent_at(front).is_some()
            })
            .count();
        assert_eq!(blocked, 6);
        struct WorldLessCheck;
        impl WorldLessCheck {
            fn world(init: InitialConfig) -> World {
                World::new(
                    &crate::config::WorldConfig::paper(GridKind::Square, 16),
                    a2a_fsm::best_s_agent(),
                    &init,
                )
                .unwrap()
            }
        }
    }

    #[test]
    fn corners_spread_and_validate() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let cfg = InitialConfig::corners(L(), kind, 8).unwrap();
            cfg.validate(L(), kind).unwrap();
            let positions: Vec<Pos> = cfg.placements().iter().map(|&(p, _)| p).collect();
            assert!(positions.contains(&Pos::new(0, 0)));
            assert!(positions.contains(&Pos::new(15, 15)));
        }
        assert!(InitialConfig::corners(L(), GridKind::Square, 33).is_none());
    }

    #[test]
    fn pattern_configs_are_solved_by_published_agents() {
        use crate::run::simulate;
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let env = crate::config::WorldConfig::paper(kind, 16);
            for cfg in [
                InitialConfig::cluster(L(), 9).unwrap(),
                InitialConfig::corners(L(), kind, 8).unwrap(),
            ] {
                let out = simulate(&env, a2a_fsm::best_agent(kind), &cfg, 5000).unwrap();
                assert!(out.is_successful(), "{kind}: {out:?}");
            }
        }
    }
}

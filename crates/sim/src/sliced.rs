//! The bit-sliced multi-run kernel: up to 64 runs per `u64` word.
//!
//! [`SlicedWorld`] transposes the batch axis of
//! [`MultiWorld`](crate::MultiWorld): instead of laying each run's field
//! out run-major, every *boolean* of the simulation lives in a bit
//! plane whose words hold the same bit across a **lane** of 64 runs —
//! bit `j` of a word belongs to run `lane * 64 + j`. Occupancy ∪
//! obstacles (`solid`), movement claims (`claimed`), cell colours
//! (`color_planes`) and per-agent completion (`complete`) are all
//! sliced this way, so a blocked test, a claim, a colour write or a
//! completion check is a single masked word op no matter how many runs
//! share the lane.
//!
//! The payoff is the exchange. Communication vectors are stored
//! *token-transposed*: `info[(lane * k + i) * k + o]` is the word whose
//! bit `j` says "agent `i` knows agent `o`'s token in run
//! `lane * 64 + j`". One adjacency sweep over the lane's live runs
//! builds per-pair run masks (`adj[i * k + o]`: the runs in which `o`
//! currently neighbours `i`), and then every infoset merge is
//! `info_next[i][o'] |= info[o][o'] & adj` — one OR serves all 64 runs
//! at once, streamed in tiles over the token axis so `k > 64` vectors
//! stay cache-resident. Because vectors only ever gain bits, completed
//! (run, agent) pairs need no freezing: their all-ones words absorb
//! further ORs unchanged.
//!
//! Retirement is **lane-masked**: a run that solves the task or
//! exhausts the horizon has its bit cleared from the lane's `active`
//! mask, and every sweep iterates set bits only — no swap-remove, no
//! state motion, and outcome slots never move. Batches must share one
//! agent count `k` (the token axis is common to the whole world).
//!
//! The word-parallel merges do not make this the fast path: divergent
//! runs leave most per-pair adjacency masks single-bit, so the lane
//! amortisation never materialises and paired benchmarks put this
//! engine behind the run-major `MultiWorld` on every measured workload
//! (DESIGN.md §11 has the matrix).
//! [`BatchRunner::run_all`](crate::BatchRunner::run_all) therefore
//! keeps every batch on `MultiWorld`; this engine stays an explicit
//! opt-in via
//! [`BatchRunner::run_all_sliced`](crate::BatchRunner::run_all_sliced).
//!
//! Outcomes are **bit-identical per configuration** to
//! [`FastWorld`](crate::FastWorld): the per-run act replicates the
//! single-run kernel decision for decision (first-claimant arbitration
//! in ID-priority order selects exactly the min/max-ID winner), and the
//! masked merges reproduce the synchronous OR. The differential suite
//! in `tests/differential.rs` drives all four engines in lockstep.

use crate::behaviour::Behaviour;
use crate::config::{ConflictPolicy, WorldConfig};
use crate::error::SimError;
use crate::infoset::InfoSet;
use crate::init::InitialConfig;
use crate::kernel::{bit_get, read_color, KernelEnv, NONE};
use crate::run::RunOutcome;
use a2a_fsm::Genome;
use a2a_grid::{Dir, Pos};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of buffer-allocating sliced-world constructions:
/// one per [`SlicedWorld::from_env`] plus one per [`SlicedWorld::load`]
/// that had to grow a buffer. The batch layer's steady state (chunked
/// reuse with a stable workload shape) must not move this counter —
/// asserted by `crates/sim/tests/allocation_sliced.rs`.
static SLICED_BUFFER_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Sentinel for "no agent" in the per-run occupant map (`u16`: agent
/// ids are bounded by the engines' shared `u16::MAX` limit).
const NO_AGENT: u16 = u16::MAX;

/// Words per streamed merge tile along the token axis: 512 B spans
/// keep the per-pair source and destination rows of very wide infosets
/// (`k` up to ~1024) inside L1 while the pair list is re-walked.
const TILE_WORDS: usize = 64;

/// Working-set budget per sliced chunk, matching the run-major
/// engine's [`CHUNK_BUDGET_BYTES`](crate::multi) discipline.
const SLICED_CHUNK_BUDGET_BYTES: usize = 256 * 1024;

/// Runs per sliced chunk for `env` with configurations of `k` agents:
/// whole lanes of 64, as many as fit [`SLICED_CHUNK_BUDGET_BYTES`],
/// clamped to `[1, 16]` lanes (64–1024 runs).
pub(crate) fn preferred_sliced_chunk(env: &KernelEnv, k: usize) -> usize {
    let k = k.max(1);
    let n_cells = env.lattice.len();
    let per_lane = 128 * n_cells                                  // occupant maps (64 × u16)
        + 16 * n_cells                                            // solid + claimed planes
        + 8 * n_cells * env.n_color_planes as usize               // colour planes
        + 16 * k * k                                              // info + info_next
        + 512 * k;                                                // scalar agent state (64 runs)
    (SLICED_CHUNK_BUDGET_BYTES / per_lane).clamp(1, 16) * 64
}

/// The bit-sliced multi-run engine: same dynamics as
/// [`FastWorld`](crate::FastWorld), one word of state per 64 runs.
///
/// # Examples
///
/// ```
/// use a2a_sim::{InitialConfig, SlicedWorld, WorldConfig};
/// use a2a_fsm::best_t_agent;
/// use a2a_grid::GridKind;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), a2a_sim::SimError> {
/// let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let inits: Vec<InitialConfig> = (0..70)
///     .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng))
///     .collect::<Result<_, _>>()?;
/// let mut sliced = SlicedWorld::new(&cfg, best_t_agent())?;
/// sliced.load(&inits)?;
/// assert!(sliced.run(200).iter().all(|o| o.is_successful()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SlicedWorld {
    env: Arc<KernelEnv>,

    /// Uniform agents per run (the shared token-axis width).
    k: usize,
    /// Loaded runs (including retired ones).
    runs: usize,
    /// Lanes of 64 runs: `runs.div_ceil(64)`.
    lanes: usize,
    /// Valid-run bits per lane (partial last lane).
    lane_mask: Vec<u64>,
    /// Live (un-retired) run bits per lane.
    active: Vec<u64>,
    /// Informed agents per run (incremental counter).
    informed: Vec<u32>,
    /// Movement conflicts lost per run.
    conflicts: Vec<u64>,
    /// Recorded outcome per run slot, filled at retirement.
    outcomes: Vec<Option<RunOutcome>>,

    // Bit-sliced field planes, cell-major: word `[c * lanes + l]`,
    // bit `j` of a word belongs to run `l * 64 + j`.
    /// Occupancy ∪ obstacles per cell per run.
    solid: Vec<u64>,
    /// Arbitration scratch per cell per run; all-zero between steps
    /// (also the duplicate-placement scratch of [`SlicedWorld::load`]).
    claimed: Vec<u64>,
    /// Cell colours, plane-major then cell-major:
    /// `[(p * n_cells + c) * lanes + l]`.
    color_planes: Vec<u64>,
    /// Per-agent completion plane: word `[l * k + i]`.
    complete: Vec<u64>,

    // Scalar agent state, run-major `[r * k + i]`.
    pos: Vec<u32>,
    dir: Vec<u8>,
    state: Vec<u8>,
    /// Colour of each agent's own cell, mirrored out of
    /// `color_planes` (saves one plane gather per perception).
    own_color: Vec<u8>,
    /// Agent on each cell per run, `[r * n_cells + c]`
    /// ([`NO_AGENT`] when free) — the exchange's adjacency source.
    occ: Vec<u16>,

    /// Token-transposed communication vectors:
    /// `[(l * k + i) * k + o]`, bit `j` = "agent `i` knows token `o`
    /// in run `l * 64 + j`".
    info: Vec<u64>,
    info_next: Vec<u64>,

    /// Global lockstep time: every live run has taken exactly this
    /// many counted steps.
    time: u32,

    // Scratch reused across steps.
    /// Per-pair run masks for the current lane's merge: `adj[i * k + o]`
    /// holds the runs in which `o` neighbours `i`. All-zero between
    /// lanes (cleared through `touched`).
    adj: Vec<u64>,
    /// Pair indices with a non-zero `adj` entry this lane.
    touched: Vec<u32>,
    /// Cells claimed during the current run's act, for mask clearing.
    requests: Vec<u32>,
    /// Per agent: (flat compiled-row index, move target or [`NONE`]).
    decisions: Vec<(u32, u32)>,
}

impl SlicedWorld {
    /// An empty sliced world for a single-FSM behaviour; call
    /// [`SlicedWorld::load`] to place a batch.
    ///
    /// # Errors
    ///
    /// Exactly as [`crate::World::new`] for the environment checks.
    pub fn new(config: &WorldConfig, genome: Genome) -> Result<Self, SimError> {
        Self::with_behaviour(config, Behaviour::Single(genome))
    }

    /// Like [`SlicedWorld::new`] with a full [`Behaviour`].
    ///
    /// # Errors
    ///
    /// Exactly as [`crate::World::with_behaviour`].
    pub fn with_behaviour(config: &WorldConfig, behaviour: Behaviour) -> Result<Self, SimError> {
        Ok(Self::from_env(Arc::new(KernelEnv::new(config, &behaviour)?)))
    }

    /// An empty sliced world over a shared environment.
    pub(crate) fn from_env(env: Arc<KernelEnv>) -> Self {
        SLICED_BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
        Self {
            env,
            k: 0,
            runs: 0,
            lanes: 0,
            lane_mask: Vec::new(),
            active: Vec::new(),
            informed: Vec::new(),
            conflicts: Vec::new(),
            outcomes: Vec::new(),
            solid: Vec::new(),
            claimed: Vec::new(),
            color_planes: Vec::new(),
            complete: Vec::new(),
            pos: Vec::new(),
            dir: Vec::new(),
            state: Vec::new(),
            own_color: Vec::new(),
            occ: Vec::new(),
            info: Vec::new(),
            info_next: Vec::new(),
            time: 0,
            adj: Vec::new(),
            touched: Vec::new(),
            requests: Vec::new(),
            decisions: Vec::new(),
        }
    }

    /// Whether this world was compiled from exactly `env` (pointer
    /// identity) — the reuse precondition of [`SlicedWorld::load`].
    pub(crate) fn shares_env(&self, env: &Arc<KernelEnv>) -> bool {
        Arc::ptr_eq(&self.env, env)
    }

    /// Process-wide count of buffer-allocating constructions
    /// ([`SlicedWorld::from_env`] calls plus [`SlicedWorld::load`]
    /// calls that grew a buffer). A reuse-only steady state keeps this
    /// constant — the zero-allocation acceptance check of the chunked
    /// batch layer.
    #[must_use]
    pub fn allocation_count() -> u64 {
        SLICED_BUFFER_ALLOCS.load(Ordering::Relaxed)
    }

    /// Places a batch of initial configurations, one run slot each, and
    /// performs every run's uncounted `t = 0` exchange. All
    /// configurations must share one agent count (the bit-sliced token
    /// axis is common to the whole world). Reuses every buffer:
    /// reloading a workload of the same shape performs zero heap
    /// allocation. Each configuration is validated exactly as
    /// [`FastWorld::from_env`](crate::FastWorld) does, in batch order,
    /// so the first error matches a serial engine's — except that a
    /// non-uniform agent count surfaces as
    /// [`SimError::SpecMismatch`] before that run's obstacle check.
    ///
    /// # Errors
    ///
    /// The first per-configuration error, as above. On error the world
    /// is partially loaded and must be discarded or re-loaded before
    /// use.
    pub fn load(&mut self, inits: &[InitialConfig]) -> Result<(), SimError> {
        let env = Arc::clone(&self.env);
        let n_cells = env.lattice.len();
        let runs = inits.len();
        let lanes = runs.div_ceil(64);
        let k = inits.first().map_or(0, InitialConfig::agent_count);
        // Distinct neighbours of one agent across a lane are bounded by
        // both the other agents and 64 runs × n_dirs fronts.
        let touched_cap = k * (k.saturating_sub(1)).min(64 * env.n_dirs);

        if lanes > self.lane_mask.capacity()
            || lanes > self.active.capacity()
            || runs > self.informed.capacity()
            || runs > self.conflicts.capacity()
            || runs > self.outcomes.capacity()
            || n_cells * lanes > self.solid.capacity()
            || n_cells * lanes > self.claimed.capacity()
            || n_cells * lanes * env.n_color_planes as usize > self.color_planes.capacity()
            || lanes * k > self.complete.capacity()
            || runs * k > self.pos.capacity()
            || runs * k > self.dir.capacity()
            || runs * k > self.state.capacity()
            || runs * k > self.own_color.capacity()
            || runs * n_cells > self.occ.capacity()
            || lanes * k * k > self.info.capacity()
            || lanes * k * k > self.info_next.capacity()
            || k * k > self.adj.capacity()
            || touched_cap > self.touched.capacity()
            || k > self.requests.capacity()
            || k > self.decisions.capacity()
        {
            SLICED_BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }

        self.k = k;
        self.runs = runs;
        self.lanes = lanes;
        self.time = 0;
        self.lane_mask.clear();
        self.lane_mask.resize(lanes, 0);
        self.active.clear();
        self.active.resize(lanes, 0);
        self.informed.clear();
        self.informed.resize(runs, 0);
        self.conflicts.clear();
        self.conflicts.resize(runs, 0);
        self.outcomes.clear();
        self.outcomes.resize(runs, None);
        self.claimed.clear();
        self.claimed.resize(n_cells * lanes, 0);
        self.complete.clear();
        self.complete.resize(lanes * k, 0);
        self.pos.clear();
        self.pos.resize(runs * k, 0);
        self.dir.clear();
        self.dir.resize(runs * k, 0);
        self.state.clear();
        self.state.resize(runs * k, 0);
        self.own_color.clear();
        self.own_color.resize(runs * k, 0);
        self.occ.clear();
        self.occ.resize(runs * n_cells, NO_AGENT);
        self.adj.clear();
        self.adj.resize(k * k, 0);
        self.touched.clear();
        self.touched.reserve(touched_cap);
        self.requests.clear();
        self.requests.reserve(k);
        self.decisions.clear();
        self.decisions.resize(k, (0, NONE));

        // Environment baselines, broadcast across the lane words:
        // obstacles and initial colours are run-independent, so a set
        // bit becomes an all-ones word.
        self.solid.clear();
        self.solid.resize(n_cells * lanes, 0);
        for c in 0..n_cells {
            if bit_get(&env.obstacle_words, c) {
                self.solid[c * lanes..(c + 1) * lanes].fill(u64::MAX);
            }
        }
        self.color_planes.clear();
        self.color_planes.resize(n_cells * lanes * env.n_color_planes as usize, 0);
        for p in 0..env.n_color_planes as usize {
            for c in 0..n_cells {
                if bit_get(&env.color_planes_init[p * env.cell_words..], c) {
                    let w0 = (p * n_cells + c) * lanes;
                    self.color_planes[w0..w0 + lanes].fill(u64::MAX);
                }
            }
        }
        self.info.clear();
        self.info.resize(lanes * k * k, 0);
        self.info_next.clear();
        self.info_next.resize(lanes * k * k, 0);

        for (r, init) in inits.iter().enumerate() {
            // Pass 1 — validate without allocating, replicating
            // `InitialConfig::validate` check for check (error order
            // matters to callers). The run's bit of the claimed plane
            // doubles as the duplicate scratch: it is all-zero between
            // steps.
            if init.placements().is_empty() {
                return Err(SimError::NoAgents);
            }
            let l = r / 64;
            let bit = 1u64 << (r % 64);
            let mut marked = 0usize;
            let mut invalid = None;
            for &(pos, dir) in init.placements() {
                if !env.lattice.contains(pos) {
                    invalid = Some(SimError::OutsideField(pos));
                    break;
                }
                if !dir.is_valid_for(env.kind) {
                    invalid = Some(SimError::InvalidDirection {
                        index: dir.index(),
                        available: env.kind.dir_count(),
                    });
                    break;
                }
                let w = &mut self.claimed[env.lattice.index_of(pos) * lanes + l];
                if *w & bit != 0 {
                    invalid = Some(SimError::DuplicatePosition(pos));
                    break;
                }
                *w |= bit;
                marked += 1;
            }
            for &(pos, _) in &init.placements()[..marked] {
                self.claimed[env.lattice.index_of(pos) * lanes + l] &= !bit;
            }
            if let Some(e) = invalid {
                return Err(e);
            }
            let rk = init.agent_count();
            if rk > usize::from(u16::MAX) {
                return Err(SimError::TooManyAgents {
                    requested: rk,
                    limit: usize::from(u16::MAX),
                });
            }
            if rk != k {
                return Err(SimError::SpecMismatch(format!(
                    "sliced batches need one uniform agent count: run 0 has {k}, run {r} has {rk}"
                )));
            }

            // Pass 2 — place into the run's slot.
            let base = r * k;
            let f0 = r * n_cells;
            for (i, &(p, d)) in init.placements().iter().enumerate() {
                let idx = env.lattice.index_of(p);
                if bit_get(&env.obstacle_words, idx) {
                    return Err(SimError::OnObstacle(p));
                }
                self.occ[f0 + idx] = i as u16;
                self.solid[idx * lanes + l] |= bit;
                self.pos[base + i] = idx as u32;
                self.dir[base + i] = d.index();
                self.state[base + i] = env.init_states.state_for(i as u16, env.n_states);
                self.own_color[base + i] =
                    read_color(&env.color_planes_init, env.cell_words, env.n_color_planes, idx);
            }
            self.lane_mask[l] |= bit;
            self.active[l] |= bit;
        }

        // Identity bits: agent `i` knows its own token in every run.
        for l in 0..lanes {
            let m = self.lane_mask[l];
            for i in 0..k {
                self.info[(l * k + i) * k + i] = m;
            }
        }

        // The uncounted exchange right after placement, lane by lane.
        for l in 0..lanes {
            self.exchange_lane(&env, l, self.lane_mask[l]);
        }
        Ok(())
    }

    /// Runs every loaded configuration until it is solved or `t_max`
    /// counted steps have passed, clearing finished runs from the live
    /// lane masks as they complete. Returns one [`RunOutcome`] per
    /// loaded configuration, in load order — each bit-identical to
    /// what [`FastWorld::run`](crate::FastWorld::run) reports for that
    /// configuration.
    ///
    /// With metrics on, feeds the same per-run `kernel.*` series as
    /// the single-run engine plus the sliced-kernel extras
    /// (`kernel.sliced.runs` / `.steps` / `.retirements` counters and
    /// the `kernel.sliced.in_flight` gauge).
    ///
    /// # Panics
    ///
    /// Panics if nothing is loaded (zero configurations).
    pub fn run(&mut self, t_max: u32) -> Vec<RunOutcome> {
        assert!(!self.outcomes.is_empty(), "load a batch before running");
        let metrics = a2a_obs::metrics_enabled();
        let debug = a2a_obs::enabled(a2a_obs::Level::Debug);
        // At `Trace`, per-step phase attribution: act and exchange time
        // are accumulated across lanes within a step and recorded into
        // `kernel.sliced.act.ns` / `kernel.sliced.exchange.ns` once per
        // counted step, mirroring the single-run and multi kernels.
        let phase_hists = a2a_obs::enabled(a2a_obs::Level::Trace).then(|| {
            let reg = a2a_obs::global();
            (reg.histogram("kernel.sliced.act.ns"), reg.histogram("kernel.sliced.exchange.ns"))
        });
        let env = Arc::clone(&self.env);
        let mut run_steps: u64 = 0;
        let mut retired: u64 = 0;
        self.retire_solved(metrics, debug, &mut retired);
        while self.active.iter().any(|&m| m != 0) && self.time < t_max {
            let phase = &env.phases[self.time as usize % env.phases.len()];
            let mut act_ns: u64 = 0;
            let mut exchange_ns: u64 = 0;
            for l in 0..self.lanes {
                let m = self.active[l];
                if m == 0 {
                    continue;
                }
                // Act every live run of the lane scalar-wise while its
                // planes are cache-hot, then merge the whole lane's
                // infosets word-parallel.
                let t0 = phase_hists.is_some().then(std::time::Instant::now);
                let mut mm = m;
                while mm != 0 {
                    self.act_run(&env, phase, l, mm.trailing_zeros() as usize);
                    mm &= mm - 1;
                }
                let t1 = phase_hists.is_some().then(std::time::Instant::now);
                self.exchange_lane(&env, l, m);
                if let (Some(t0), Some(t1)) = (t0, t1) {
                    act_ns = act_ns.saturating_add(
                        t1.duration_since(t0).as_nanos().min(u128::from(u64::MAX)) as u64,
                    );
                    exchange_ns = exchange_ns
                        .saturating_add(t1.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                }
                run_steps += u64::from(m.count_ones());
            }
            if let Some((act_hist, exchange_hist)) = &phase_hists {
                act_hist.record(act_ns);
                exchange_hist.record(exchange_ns);
            }
            self.time += 1;
            self.retire_solved(metrics, debug, &mut retired);
        }
        // Horizon: whatever is still live is out of time.
        for l in 0..self.lanes {
            let mut mm = self.active[l];
            self.active[l] = 0;
            while mm != 0 {
                let r = l * 64 + mm.trailing_zeros() as usize;
                mm &= mm - 1;
                let outcome = RunOutcome {
                    t_comm: None,
                    informed: self.informed[r] as usize,
                    agents: self.k,
                    steps: self.time,
                };
                self.outcomes[r] = Some(outcome);
                if metrics {
                    self.record_run(outcome, r, debug);
                }
            }
        }
        if metrics {
            let reg = a2a_obs::global();
            reg.counter("kernel.sliced.runs").add(self.outcomes.len() as u64);
            reg.counter("kernel.sliced.steps").add(run_steps);
            reg.counter("kernel.sliced.retirements").add(retired);
            reg.gauge("kernel.sliced.in_flight").set(0);
        }
        self.outcomes
            .iter()
            .map(|o| o.expect("every run slot is retired by the loop above"))
            .collect()
    }

    /// Advances **every** loaded run by one counted time step — solved
    /// runs included, exactly like stepping each world individually
    /// (agents keep acting after completion). This is the lockstep
    /// differential-test path; the retiring throughput path is
    /// [`SlicedWorld::run`].
    pub fn step(&mut self) {
        let env = Arc::clone(&self.env);
        let phase = &env.phases[self.time as usize % env.phases.len()];
        for l in 0..self.lanes {
            let m = self.lane_mask[l];
            if m == 0 {
                continue;
            }
            let mut mm = m;
            while mm != 0 {
                self.act_run(&env, phase, l, mm.trailing_zeros() as usize);
                mm &= mm - 1;
            }
            self.exchange_lane(&env, l, m);
        }
        self.time += 1;
    }

    /// Retires every live run whose agents are all informed, recording
    /// `t_comm = time`. Clearing the run's `active` bit is the whole
    /// retirement — no state moves, outcome slots stay put.
    fn retire_solved(&mut self, metrics: bool, debug: bool, retired: &mut u64) {
        let mut changed = false;
        for l in 0..self.lanes {
            let mut mm = self.active[l];
            while mm != 0 {
                let j = mm.trailing_zeros() as usize;
                mm &= mm - 1;
                let r = l * 64 + j;
                if self.informed[r] as usize == self.k {
                    let outcome = RunOutcome {
                        t_comm: Some(self.time),
                        informed: self.k,
                        agents: self.k,
                        steps: self.time,
                    };
                    self.outcomes[r] = Some(outcome);
                    self.active[l] &= !(1u64 << j);
                    *retired += 1;
                    changed = true;
                    if metrics {
                        self.record_run(outcome, r, debug);
                    }
                }
            }
        }
        if changed && metrics {
            let live: u64 = self.active.iter().map(|m| u64::from(m.count_ones())).sum();
            a2a_obs::global().gauge("kernel.sliced.in_flight").set(live as i64);
        }
    }

    /// Feeds one retired run's numbers into the global registry — the
    /// same series [`FastWorld::run`](crate::FastWorld::run) records,
    /// so downstream consumers are engine-agnostic — and, at `Debug`,
    /// emits the `kernel.run` summary with `engine: "sliced"`.
    fn record_run(&self, outcome: RunOutcome, r: usize, debug: bool) {
        let reg = a2a_obs::global();
        let conflicts = self.conflicts[r];
        reg.counter("kernel.runs").incr();
        reg.counter("kernel.steps").add(u64::from(outcome.steps));
        reg.counter("kernel.conflicts").add(conflicts);
        reg.histogram("kernel.run.conflicts").record(conflicts);
        match outcome.t_comm {
            Some(t) => reg.histogram("kernel.t_comm").record(u64::from(t)),
            None => reg.counter("kernel.unsuccessful").incr(),
        }
        if debug {
            a2a_obs::event!(a2a_obs::Level::Debug, "kernel.run",
                "engine" => "sliced",
                "grid" => self.env.kind.to_string(),
                "k" => outcome.agents,
                "steps" => outcome.steps,
                "t_comm" => outcome.t_comm.map_or(-1i64, i64::from),
                "informed" => outcome.informed,
                "conflicts" => conflicts);
        }
    }

    /// One run's act phase on the bit-sliced planes —
    /// [`FastWorld`](crate::FastWorld)'s table-driven perception,
    /// arbitration, colour writes and moves, decision for decision.
    /// Arbitration is first-claimant-wins on the run's bit of the
    /// `claimed` plane, with agents visited in ID-priority order
    /// (ascending for [`ConflictPolicy::LowestId`], descending for
    /// `HighestId`), which selects exactly the single-run kernel's
    /// min/max-ID winner; losers re-perceive with `blocked = 1`
    /// immediately (colours are untouched until the apply pass, so the
    /// re-perception still reads the pre-step field).
    fn act_run(&mut self, env: &KernelEnv, phase: &[crate::kernel::CompiledEntry], l: usize, j: usize) {
        let k = self.k;
        let lanes = self.lanes;
        let n_states = usize::from(env.n_states);
        let n_colors = usize::from(env.n_colors);
        let n_dirs = env.n_dirs;
        let n_cells = env.lattice.len();
        let plane_stride = n_cells * lanes;
        let n_planes = env.n_color_planes;
        let r = l * 64 + j;
        let bit = 1u64 << j;
        let base = r * k;
        let f0 = r * n_cells;

        let pos = &mut self.pos[base..base + k];
        let dir = &mut self.dir[base..base + k];
        let state = &mut self.state[base..base + k];
        let own_color = &mut self.own_color[base..base + k];
        let occ = &mut self.occ[f0..f0 + n_cells];
        let solid = &mut self.solid;
        let claimed = &mut self.claimed;
        let planes = &mut self.color_planes;
        let decisions = &mut self.decisions;
        let requests = &mut self.requests;
        let conflicts = &mut self.conflicts[r];
        requests.clear();

        // Perceive the pre-step configuration in ID-priority order and
        // arbitrate while scanning: the first claimant of a cell is the
        // winner the two-round engines would pick.
        let ascending = matches!(env.conflict, ConflictPolicy::LowestId);
        for n in 0..k {
            let i = if ascending { n } else { k - 1 - n };
            let here = pos[i] as usize;
            let front = env.fwd[here * n_dirs + usize::from(dir[i])];
            let hard_blocked = front == NONE || solid[front as usize * lanes + l] & bit != 0;
            let color = own_color[i];
            let front_color = if front == NONE {
                0
            } else {
                read_plane_color(planes, plane_stride, front as usize * lanes + l, n_planes, bit)
            };
            let x = usize::from(hard_blocked)
                + 2 * (usize::from(color) + n_colors * usize::from(front_color));
            let mut e = x * n_states + usize::from(state[i]);
            let mut target = NONE;
            if !hard_blocked && phase[e].mv {
                let w = &mut claimed[front as usize * lanes + l];
                if *w & bit == 0 {
                    *w |= bit;
                    requests.push(front);
                    target = front;
                } else {
                    // Lost the arbitration: re-perceive with
                    // blocked = 1 and stay put.
                    *conflicts += 1;
                    let x = 1 + 2 * (usize::from(color) + n_colors * usize::from(front_color));
                    e = x * n_states + usize::from(state[i]);
                }
            }
            decisions[i] = (e as u32, target);
        }
        for &cell in requests.iter() {
            claimed[cell as usize * lanes + l] &= !bit;
        }

        // Apply: colour writes, state/direction updates, moves. Move
        // targets are distinct pre-step-free cells, so nothing aliases
        // within the run; other runs live on other bits of the shared
        // words, untouched by the masked updates.
        let nd = n_dirs as u8;
        for i in 0..k {
            let (e, target) = decisions[i];
            let entry = phase[e as usize];
            let here = pos[i] as usize;
            state[i] = entry.next_state;
            // `delta < n_dirs`, so one conditional subtract replaces
            // the hardware division of a `%` reduction.
            let d = dir[i] + entry.delta;
            dir[i] = if d >= nd { d - nd } else { d };
            // `own_color[i]` is still the pre-step colour of `here`, so
            // an unchanged colour needs no plane read-modify-write.
            if entry.set_color != own_color[i] {
                write_plane_color(planes, plane_stride, here * lanes + l, n_planes, bit, entry.set_color);
            }
            if target == NONE {
                own_color[i] = entry.set_color;
            } else {
                let t = target as usize;
                // The target keeps its own colour; it was free at step
                // start, so no agent writes it this step.
                own_color[i] = read_plane_color(planes, plane_stride, t * lanes + l, n_planes, bit);
                solid[here * lanes + l] &= !bit;
                solid[t * lanes + l] |= bit;
                occ[here] = NO_AGENT;
                occ[t] = i as u16;
                pos[i] = target;
            }
        }
    }

    /// One lane's exchange: an adjacency sweep over the runs in `m`
    /// builds per-pair run masks, then every pair's infoset merge is a
    /// masked word-wise OR serving all 64 runs at once, streamed in
    /// [`TILE_WORDS`] tiles over the token axis. Completion is a
    /// word-parallel AND over each agent's token words with early
    /// exit. Vectors are monotone, so completed (run, agent) pairs
    /// need no freezing — their all-ones words absorb further ORs.
    fn exchange_lane(&mut self, env: &KernelEnv, l: usize, m: u64) {
        let k = self.k;
        if k == 0 || m == 0 {
            return;
        }
        let n_cells = env.lattice.len();
        let n_dirs = env.n_dirs;
        let blk = l * k * k;
        // Snapshot the lane block: merges read sources from here so the
        // exchange stays a single round (no transitive propagation
        // within one step), while destinations update in place — no
        // copy-back pass.
        self.info_next[blk..blk + k * k].copy_from_slice(&self.info[blk..blk + k * k]);

        // Adjacency: which agent pairs see each other, in which runs.
        // `touched` packs (i, o) as i<<16|o so the merge loop needs no
        // divisions to unpack pair indices.
        let adj = &mut self.adj;
        let touched = &mut self.touched;
        let mut mm = m;
        while mm != 0 {
            let j = mm.trailing_zeros() as usize;
            mm &= mm - 1;
            let bit = 1u64 << j;
            let r = l * 64 + j;
            let base = r * k;
            let f0 = r * n_cells;
            for i in 0..k {
                // A complete agent has nothing left to gather: its
                // merge would be masked to zero anyway, so skip the
                // neighbourhood scan (it still serves as a *source*
                // through its neighbours' own scans).
                if self.complete[l * k + i] & bit != 0 {
                    continue;
                }
                let here = self.pos[base + i] as usize;
                for &nc in &env.fwd[here * n_dirs..here * n_dirs + n_dirs] {
                    if nc == NONE {
                        continue;
                    }
                    let o = self.occ[f0 + nc as usize];
                    if o != NO_AGENT && usize::from(o) != i {
                        let pair = i * k + usize::from(o);
                        if adj[pair] == 0 {
                            touched.push(((i as u32) << 16) | o as u32);
                        }
                        adj[pair] |= bit;
                    }
                }
            }
        }

        // Merge: one masked OR per (pair, token word) covers the whole
        // lane. Runs whose destination agent is already complete are
        // masked out (their token words are all ones — the OR cannot
        // add anything), which retires whole pairs as a run converges;
        // zero source words skip the destination write entirely, which
        // is most words while infosets are still sparse. Tiling the
        // token axis keeps wide vectors (k > 64) streaming through L1
        // instead of thrashing whole rows.
        let mut b0 = 0;
        while b0 < k {
            let b1 = (b0 + TILE_WORDS).min(k);
            for &pair in touched.iter() {
                let (i, o) = ((pair >> 16) as usize, (pair & 0xFFFF) as usize);
                let mask = adj[i * k + o] & !self.complete[l * k + i];
                if mask == 0 {
                    continue;
                }
                let dst = blk + i * k;
                let src = blk + o * k;
                for b in b0..b1 {
                    let s = self.info_next[src + b] & mask;
                    if s != 0 {
                        self.info[dst + b] |= s;
                    }
                }
            }
            b0 = b1;
        }
        for &pair in touched.iter() {
            adj[((pair >> 16) as usize) * k + (pair & 0xFFFF) as usize] = 0;
        }
        touched.clear();

        // Completion: the AND over an agent's token words leaves
        // exactly the runs whose vector is full; early exit kills the
        // scan as soon as no candidate run survives.
        for i in 0..k {
            let mut all = m & !self.complete[l * k + i];
            if all == 0 {
                continue;
            }
            for &w in &self.info[blk + i * k..blk + i * k + k] {
                all &= w;
                if all == 0 {
                    break;
                }
            }
            if all != 0 {
                self.complete[l * k + i] |= all;
                let mut nn = all;
                while nn != 0 {
                    self.informed[l * 64 + nn.trailing_zeros() as usize] += 1;
                    nn &= nn - 1;
                }
            }
        }
    }

    /// Loaded configurations (including retired ones).
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs
    }

    /// Global lockstep steps executed so far.
    #[must_use]
    pub fn time(&self) -> u32 {
        self.time
    }

    /// Agents in run `r` (uniform across the batch).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.run_count()` (here and in every per-run
    /// accessor below).
    #[must_use]
    pub fn agent_count(&self, r: usize) -> usize {
        assert!(r < self.runs, "run {r} out of range for {} runs", self.runs);
        self.k
    }

    /// Informed agents in run `r`.
    #[must_use]
    pub fn informed_count(&self, r: usize) -> usize {
        self.informed[r] as usize
    }

    /// Movement conflicts lost so far in run `r`.
    #[must_use]
    pub fn conflict_losses(&self, r: usize) -> u64 {
        self.conflicts[r]
    }

    /// Run `r`'s agent positions in ID order.
    #[must_use]
    pub fn positions(&self, r: usize) -> Vec<Pos> {
        assert!(r < self.runs, "run {r} out of range for {} runs", self.runs);
        self.pos[r * self.k..(r + 1) * self.k]
            .iter()
            .map(|&c| self.env.lattice.pos_at(c as usize))
            .collect()
    }

    /// Run `r`'s agent directions in ID order.
    #[must_use]
    pub fn dirs(&self, r: usize) -> Vec<Dir> {
        assert!(r < self.runs, "run {r} out of range for {} runs", self.runs);
        self.dir[r * self.k..(r + 1) * self.k].iter().map(|&d| Dir::new(d)).collect()
    }

    /// Run `r`'s agent control states in ID order.
    #[must_use]
    pub fn states(&self, r: usize) -> Vec<u8> {
        assert!(r < self.runs, "run {r} out of range for {} runs", self.runs);
        self.state[r * self.k..(r + 1) * self.k].to_vec()
    }

    /// Run `r`'s row-major cell colours, gathered from the bit-sliced
    /// planes.
    #[must_use]
    pub fn colors(&self, r: usize) -> Vec<u8> {
        assert!(r < self.runs, "run {r} out of range for {} runs", self.runs);
        let n_cells = self.env.lattice.len();
        let (l, bit) = (r / 64, 1u64 << (r % 64));
        (0..n_cells)
            .map(|c| {
                read_plane_color(
                    &self.color_planes,
                    n_cells * self.lanes,
                    c * self.lanes + l,
                    self.env.n_color_planes,
                    bit,
                )
            })
            .collect()
    }

    /// Agent `i` of run `r`'s communication vector as an [`InfoSet`].
    ///
    /// # Panics
    ///
    /// Panics if `r` or `i` is out of range.
    #[must_use]
    pub fn agent_info(&self, r: usize, i: usize) -> InfoSet {
        assert!(r < self.runs, "run {r} out of range for {} runs", self.runs);
        assert!(i < self.k, "agent {i} out of range for {} agents in run {r}", self.k);
        let (l, bit) = (r / 64, 1u64 << (r % 64));
        let base = (l * self.k + i) * self.k;
        let mut set = InfoSet::empty(self.k);
        for o in 0..self.k {
            if self.info[base + o] & bit != 0 {
                set.insert(o);
            }
        }
        set
    }
}

/// Gathers one run's colour at a cell from the bit-sliced planes:
/// `planes[p * plane_stride + cw]`, the run selected by `bit`.
fn read_plane_color(planes: &[u64], plane_stride: usize, cw: usize, n_planes: u32, bit: u64) -> u8 {
    let mut color = 0u8;
    for p in 0..n_planes as usize {
        if planes[p * plane_stride + cw] & bit != 0 {
            color |= 1 << p;
        }
    }
    color
}

/// Writes one run's colour at a cell into the bit-sliced planes — a
/// masked read-modify-write per plane, other runs' bits untouched.
fn write_plane_color(
    planes: &mut [u64],
    plane_stride: usize,
    cw: usize,
    n_planes: u32,
    bit: u64,
    color: u8,
) {
    for p in 0..n_planes as usize {
        let w = &mut planes[p * plane_stride + cw];
        if (color >> p) & 1 == 1 {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRunner;
    use a2a_fsm::{best_s_agent, best_t_agent};
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg(kind: GridKind) -> WorldConfig {
        WorldConfig::paper(kind, 16)
    }

    fn random_batch(config: &WorldConfig, k: usize, runs: usize, seed: u64) -> Vec<InitialConfig> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..runs)
            .map(|_| {
                InitialConfig::random(config.lattice, config.kind, k, &[], &mut rng).unwrap()
            })
            .collect()
    }

    #[test]
    fn outcomes_match_single_run_kernel_exactly() {
        for (kind, genome) in
            [(GridKind::Square, best_s_agent()), (GridKind::Triangulate, best_t_agent())]
        {
            let config = cfg(kind);
            // 70 runs span two lanes with a partial second lane (6 of
            // 64 bits valid), exercising the lane masks.
            let inits = random_batch(&config, 16, 70, 7);
            let runner = BatchRunner::from_genome(&config, genome.clone(), 300).unwrap();
            let expected: Vec<RunOutcome> =
                inits.iter().map(|i| runner.outcome_for(i).unwrap()).collect();
            let mut sliced = SlicedWorld::new(&config, genome).unwrap();
            sliced.load(&inits).unwrap();
            assert_eq!(sliced.run(300), expected, "{kind}");
        }
    }

    #[test]
    fn wide_infosets_match_single_run_kernel() {
        // k = 70 token words per agent: the tiled merge runs over more
        // than one [`TILE_WORDS`]-free span and the completion AND
        // covers 70 words.
        let config = cfg(GridKind::Triangulate);
        let inits = random_batch(&config, 70, 12, 9);
        let runner = BatchRunner::from_genome(&config, best_t_agent(), 300).unwrap();
        let expected: Vec<RunOutcome> =
            inits.iter().map(|i| runner.outcome_for(i).unwrap()).collect();
        let mut sliced = SlicedWorld::new(&config, best_t_agent()).unwrap();
        sliced.load(&inits).unwrap();
        assert_eq!(sliced.run(300), expected);
    }

    #[test]
    fn lockstep_step_matches_fast_world_per_run() {
        let config = cfg(GridKind::Triangulate);
        let inits = random_batch(&config, 12, 70, 11);
        let mut fasts: Vec<crate::FastWorld> = inits
            .iter()
            .map(|i| crate::FastWorld::new(&config, best_t_agent(), i).unwrap())
            .collect();
        let mut sliced = SlicedWorld::new(&config, best_t_agent()).unwrap();
        sliced.load(&inits).unwrap();
        for t in 0..30 {
            for (r, fast) in fasts.iter().enumerate() {
                assert_eq!(sliced.positions(r), fast.positions(), "run {r} t={t}");
                assert_eq!(sliced.dirs(r), fast.dirs(), "run {r} t={t}");
                assert_eq!(sliced.states(r), fast.states(), "run {r} t={t}");
                assert_eq!(sliced.colors(r), fast.colors(), "run {r} t={t}");
                assert_eq!(sliced.informed_count(r), fast.informed_count(), "run {r} t={t}");
                assert_eq!(sliced.conflict_losses(r), fast.conflict_losses(), "run {r} t={t}");
                for i in 0..fast.agent_count() {
                    assert_eq!(sliced.agent_info(r, i), fast.agent_info(i), "run {r} t={t}");
                }
            }
            sliced.step();
            for fast in &mut fasts {
                fast.step();
            }
        }
    }

    #[test]
    fn reload_reuses_buffers_and_matches_fresh() {
        let config = cfg(GridKind::Triangulate);
        let mut sliced = SlicedWorld::new(&config, best_t_agent()).unwrap();
        sliced.load(&random_batch(&config, 16, 70, 1)).unwrap();
        let _ = sliced.run(200);
        for seed in 2..6 {
            let inits = random_batch(&config, 16, 70, seed);
            sliced.load(&inits).unwrap();
            let got = sliced.run(200);
            let mut fresh = SlicedWorld::new(&config, best_t_agent()).unwrap();
            fresh.load(&inits).unwrap();
            assert_eq!(got, fresh.run(200), "seed {seed}");
        }
        // The zero-allocation guarantee of reuse is asserted in
        // crates/sim/tests/allocation_sliced.rs — the process-global
        // counter cannot be compared exactly here, where tests run
        // concurrently.
    }

    #[test]
    fn load_replicates_serial_error_order() {
        let config = cfg(GridKind::Square);
        let good = InitialConfig::new(vec![(Pos::new(1, 1), Dir::new(0))]);
        let dup = InitialConfig::new(vec![
            (Pos::new(2, 2), Dir::new(0)),
            (Pos::new(2, 2), Dir::new(1)),
        ]);
        let outside = InitialConfig::new(vec![(Pos::new(99, 0), Dir::new(0))]);
        let mut sliced = SlicedWorld::new(&config, best_s_agent()).unwrap();
        // First failing configuration wins, later ones are not reached
        // (the duplicate in run 1 fires before its agent-count check).
        assert!(matches!(
            sliced.load(&[good.clone(), dup.clone(), outside.clone()]),
            Err(SimError::DuplicatePosition(_))
        ));
        assert!(matches!(sliced.load(&[outside, dup]), Err(SimError::OutsideField(_))));
        // An empty batch loads fine (and holds zero runs).
        sliced.load(&[]).unwrap();
        assert_eq!(sliced.run_count(), 0);
        assert!(matches!(
            sliced.load(&[InitialConfig::new(Vec::new())]),
            Err(SimError::NoAgents)
        ));
        // A failed load leaves the world reloadable.
        sliced.load(std::slice::from_ref(&good)).unwrap();
        assert_eq!(sliced.run(50)[0].t_comm, Some(0));
    }

    #[test]
    fn ragged_batches_are_rejected() {
        let config = cfg(GridKind::Square);
        let one = InitialConfig::new(vec![(Pos::new(1, 1), Dir::new(0))]);
        let two = InitialConfig::new(vec![
            (Pos::new(2, 2), Dir::new(0)),
            (Pos::new(3, 3), Dir::new(1)),
        ]);
        let mut sliced = SlicedWorld::new(&config, best_s_agent()).unwrap();
        assert!(matches!(sliced.load(&[one, two]), Err(SimError::SpecMismatch(_))));
    }

    #[test]
    fn obstacle_placement_rejected_per_run() {
        let mut config = cfg(GridKind::Square);
        config.obstacles = vec![Pos::new(3, 3)];
        let on_obstacle = InitialConfig::new(vec![(Pos::new(3, 3), Dir::new(0))]);
        let good = InitialConfig::new(vec![(Pos::new(1, 1), Dir::new(0))]);
        let mut sliced = SlicedWorld::new(&config, best_s_agent()).unwrap();
        assert!(matches!(
            sliced.load(&[good, on_obstacle]),
            Err(SimError::OnObstacle(_))
        ));
    }

    #[test]
    fn preferred_sliced_chunk_is_whole_lanes_and_shrinks_with_footprint() {
        let small = cfg(GridKind::Triangulate);
        let env =
            Arc::new(KernelEnv::new(&small, &Behaviour::Single(best_t_agent())).unwrap());
        let c16 = preferred_sliced_chunk(&env, 16);
        assert_eq!(c16 % 64, 0, "chunks are whole lanes");
        assert!((64..=1024).contains(&c16));
        assert!(preferred_sliced_chunk(&env, 500) <= c16);
        assert!(preferred_sliced_chunk(&env, 0) >= 64);
    }
}

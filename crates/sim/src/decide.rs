//! A decision procedure for the all-to-all task.
//!
//! The CA is deterministic with a finite state space, so from any initial
//! configuration the run either solves the task or enters a limit cycle
//! that will never solve it. Detecting the first repeated global state
//! therefore *decides* solvability — stronger than the paper's horizon
//! heuristic ("we could not prove that these state machines will be
//! successful"): a detected cycle is a proof of failure, a solve is a
//! proof of success, and one of the two always happens.

use crate::world::World;
use serde::{Deserialize, Serialize};

/// The decided outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// All agents informed after this many counted steps.
    Solved(u32),
    /// The global state at step `entered` reappeared at step `repeated`
    /// without the task being solved: the system is in a limit cycle of
    /// period `repeated − entered` and will never solve.
    NeverSolves {
        /// First occurrence of the repeated state.
        entered: u32,
        /// Second occurrence (cycle closed here).
        repeated: u32,
    },
    /// The safety bound was hit before a repeat or a solve (only possible
    /// when `max_states` truncates the search; with an unbounded store
    /// this variant is unreachable).
    Undecided,
}

impl Decision {
    /// Whether the task was solved.
    #[must_use]
    pub fn is_solved(&self) -> bool {
        matches!(self, Decision::Solved(_))
    }

    /// Cycle period for `NeverSolves`, `None` otherwise.
    #[must_use]
    pub fn cycle_period(&self) -> Option<u32> {
        match self {
            Decision::NeverSolves { entered, repeated } => Some(repeated - entered),
            _ => None,
        }
    }
}

/// Serialises the complete dynamical state of the world: agent positions,
/// directions, control states, communication vectors and the colour
/// plane. Two worlds with equal keys evolve identically forever.
fn state_key(world: &World) -> Vec<u8> {
    let mut key = Vec::new();
    for agent in world.agents() {
        key.extend_from_slice(&agent.pos().x.to_le_bytes());
        key.extend_from_slice(&agent.pos().y.to_le_bytes());
        key.push(agent.dir().index());
        key.push(agent.state());
        let info = agent.info();
        for i in 0..info.len() {
            if i % 8 == 0 {
                key.push(0);
            }
            let last = key.len() - 1;
            key[last] = (key[last] << 1) | u8::from(info.contains(i));
        }
    }
    // Time-shuffled behaviours add the phase to the dynamical state.
    key.push((world.time() as usize % world.behaviour().phase_count()) as u8);
    key.extend_from_slice(world.colors());
    key
}

/// Decides whether `world` ever solves the task, by running until either
/// success or the first repeated global state (a limit cycle).
///
/// `max_states` bounds memory (each stored state is a few hundred bytes
/// on a 16×16 field); pass `usize::MAX` for a complete decision.
pub fn decide(world: &mut World, max_states: usize) -> Decision {
    use std::collections::HashMap;
    let mut seen: HashMap<Vec<u8>, u32> = HashMap::new();
    loop {
        if world.all_informed() {
            return Decision::Solved(world.time());
        }
        if seen.len() >= max_states {
            return Decision::Undecided;
        }
        if let Some(&entered) = seen.get(&state_key(world)) {
            return Decision::NeverSolves { entered, repeated: world.time() };
        }
        seen.insert(state_key(world), world.time());
        world.step();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InitStatePolicy, WorldConfig};
    use crate::init::InitialConfig;
    use a2a_fsm::{ballistic, best_agent, best_s_agent};
    use a2a_grid::{Dir, GridKind, Pos};

    #[test]
    fn solvable_configurations_are_decided_solved() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let init = InitialConfig::new(vec![
            (Pos::new(1, 1), Dir::new(0)),
            (Pos::new(10, 5), Dir::new(3)),
        ]);
        let mut world = World::new(&cfg, best_agent(GridKind::Triangulate), &init).unwrap();
        let decision = decide(&mut world, usize::MAX);
        assert!(decision.is_solved(), "{decision:?}");
    }

    #[test]
    fn parallel_ballistic_agents_provably_never_solve() {
        // Two ballistic walkers on parallel rows loop with period 16 and
        // never meet: the decision procedure proves it.
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let init = InitialConfig::new(vec![
            (Pos::new(0, 2), Dir::new(0)),
            (Pos::new(0, 9), Dir::new(0)),
        ]);
        let mut world = World::new(&cfg, ballistic(GridKind::Square), &init).unwrap();
        let decision = decide(&mut world, usize::MAX);
        assert_eq!(decision, Decision::NeverSolves { entered: 0, repeated: 16 });
        assert_eq!(decision.cycle_period(), Some(16));
        assert!(!decision.is_solved());
    }

    #[test]
    fn uniform_start_queue_failure_is_a_cycle_not_slowness() {
        // E13 found uniform initial states fail the manual queues; the
        // decision procedure shows those failures are limit cycles.
        let mut cfg = WorldConfig::paper(GridKind::Square, 16);
        cfg.init_states = InitStatePolicy::Uniform(0);
        let lattice = cfg.lattice;
        let init = InitialConfig::queue_west(lattice, GridKind::Square, 8).unwrap();
        let mut world = World::new(&cfg, best_s_agent(), &init).unwrap();
        match decide(&mut world, 500_000) {
            Decision::NeverSolves { .. } => {}
            Decision::Solved(t) => {
                // Some uniform queues do solve; accept but require the
                // paper policy to also solve (sanity below).
                assert!(t > 0);
            }
            Decision::Undecided => panic!("bound too small for a 16x16 queue"),
        }
        // The paper's ID mod 2 policy must solve the same configuration.
        let paper_cfg = WorldConfig::paper(GridKind::Square, 16);
        let mut paper_world = World::new(&paper_cfg, best_s_agent(), &init).unwrap();
        assert!(decide(&mut paper_world, usize::MAX).is_solved());
    }

    #[test]
    fn bounded_search_reports_undecided() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(8, 8), Dir::new(0)),
        ]);
        let mut world = World::new(&cfg, best_s_agent(), &init).unwrap();
        assert_eq!(decide(&mut world, 1), Decision::Undecided);
    }

    #[test]
    fn decision_agrees_with_plain_running() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..5 {
            let init =
                InitialConfig::random(cfg.lattice, cfg.kind, 4, &[], &mut rng).unwrap();
            let genome = best_agent(GridKind::Triangulate);
            let mut w1 = World::new(&cfg, genome.clone(), &init).unwrap();
            let mut w2 = World::new(&cfg, genome, &init).unwrap();
            let plain = crate::run::run_to_completion(&mut w1, 5000);
            match decide(&mut w2, usize::MAX) {
                Decision::Solved(t) => assert_eq!(plain.t_comm, Some(t)),
                Decision::NeverSolves { .. } => assert_eq!(plain.t_comm, None),
                Decision::Undecided => unreachable!("unbounded decision"),
            }
        }
    }
}

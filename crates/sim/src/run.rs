//! Running a world to completion and summarising the outcome.

use crate::behaviour::Behaviour;
use crate::error::SimError;
use crate::init::InitialConfig;
use crate::config::WorldConfig;
use crate::world::World;
use a2a_fsm::Genome;
use serde::{Deserialize, Serialize};

/// Result of running one initial configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Communication time: first counted step at which every agent is
    /// informed; `None` if the horizon was reached first.
    pub t_comm: Option<u32>,
    /// Number of informed agents when the run ended.
    pub informed: usize,
    /// Total number of agents.
    pub agents: usize,
    /// Steps actually executed.
    pub steps: u32,
}

impl RunOutcome {
    /// Whether the task was solved within the horizon ("successful" in the
    /// paper's terminology).
    #[must_use]
    pub fn is_successful(&self) -> bool {
        self.t_comm.is_some()
    }

    /// The paper's per-configuration fitness
    /// `F_i = W·(N_agents − a_i) + t_comm` with weight `W = 10⁴`
    /// (Sect. 4). For unsuccessful runs `t_comm` is the horizon.
    #[must_use]
    pub fn fitness(&self, weight: f64) -> f64 {
        let t = self.t_comm.unwrap_or(self.steps);
        weight * (self.agents - self.informed) as f64 + f64::from(t)
    }
}

/// Runs `world` until every agent is informed or `t_max` counted steps
/// have elapsed.
///
/// The world may already be complete at `t = 0` (e.g. two adjacent
/// agents); the outcome then reports `t_comm = Some(0)` without stepping.
///
/// When observability is on, the run feeds `world.*` metrics and a
/// `world.run` event carrying the same fields as the fast kernel's
/// `kernel.run`, so differential runs of both engines line up in one
/// event stream.
pub fn run_to_completion(world: &mut World, t_max: u32) -> RunOutcome {
    let t_start = world.time();
    while !world.all_informed() && world.time() < t_max {
        world.step();
    }
    let outcome = RunOutcome {
        t_comm: world.all_informed().then(|| world.time()),
        informed: world.informed_count(),
        agents: world.agents().len(),
        steps: world.time(),
    };
    record_world_run(world, outcome, t_start);
    outcome
}

/// Feeds one reference-engine run into the global registry and, at
/// `Debug`, the event stream (engine-comparable with
/// `FastWorld::run`'s `kernel.run`).
fn record_world_run(world: &World, outcome: RunOutcome, t_start: u32) {
    let steps = outcome.steps - t_start;
    if a2a_obs::metrics_enabled() {
        let reg = a2a_obs::global();
        reg.counter("world.runs").incr();
        reg.counter("world.steps").add(u64::from(steps));
        match outcome.t_comm {
            Some(t) => reg.histogram("world.t_comm").record(u64::from(t)),
            None => reg.counter("world.unsuccessful").incr(),
        }
    }
    a2a_obs::event!(a2a_obs::Level::Debug, "world.run",
        "engine" => "world",
        "grid" => world.kind().to_string(),
        "k" => outcome.agents,
        "steps" => steps,
        "t_comm" => outcome.t_comm.map_or(-1i64, i64::from),
        "informed" => outcome.informed);
}

/// Runs `world` like [`run_to_completion`] while recording the informed
/// count after every step.
///
/// The returned profile has `steps + 1` entries: index 0 is the count
/// right after the uncounted placement exchange, index `t` the count
/// after counted step `t`. The profile of a successful run ends at the
/// agent count.
pub fn run_with_profile(world: &mut World, t_max: u32) -> (RunOutcome, Vec<usize>) {
    let t_start = world.time();
    let mut profile = vec![world.informed_count()];
    while !world.all_informed() && world.time() < t_max {
        world.step();
        profile.push(world.informed_count());
    }
    let outcome = RunOutcome {
        t_comm: world.all_informed().then(|| world.time()),
        informed: world.informed_count(),
        agents: world.agents().len(),
        steps: world.time(),
    };
    record_world_run(world, outcome, t_start);
    (outcome, profile)
}

/// Convenience: assembles a world and runs it to completion.
///
/// # Errors
///
/// Propagates [`World::new`] errors.
pub fn simulate(
    config: &WorldConfig,
    genome: Genome,
    init: &InitialConfig,
    t_max: u32,
) -> Result<RunOutcome, SimError> {
    simulate_behaviour(config, Genome::into(genome), init, t_max)
}

/// Like [`simulate`] but with a full [`Behaviour`] (e.g. a time-shuffled
/// pair of FSMs).
///
/// # Errors
///
/// Propagates [`World::with_behaviour`] errors.
pub fn simulate_behaviour(
    config: &WorldConfig,
    behaviour: Behaviour,
    init: &InitialConfig,
    t_max: u32,
) -> Result<RunOutcome, SimError> {
    let mut world = World::with_behaviour(config, behaviour, init)?;
    Ok(run_to_completion(&mut world, t_max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::{best_s_agent, best_t_agent};
    use a2a_grid::{Dir, GridKind, Pos};

    #[test]
    fn already_complete_reports_zero() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let init = InitialConfig::new(vec![
            (Pos::new(4, 4), Dir::new(0)),
            (Pos::new(5, 4), Dir::new(0)),
        ]);
        let out = simulate(&cfg, best_s_agent(), &init, 200).unwrap();
        assert_eq!(out.t_comm, Some(0));
        assert_eq!(out.steps, 0);
        assert!(out.is_successful());
        assert_eq!(out.fitness(1e4), 0.0);
    }

    #[test]
    fn horizon_caps_unsuccessful_runs() {
        // A horizon of 0 forbids any step; distant agents stay uninformed.
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(8, 8), Dir::new(0)),
        ]);
        let out = simulate(&cfg, best_s_agent(), &init, 0).unwrap();
        assert_eq!(out.t_comm, None);
        assert_eq!(out.informed, 0);
        assert_eq!(out.fitness(1e4), 2.0 * 1e4);
    }

    #[test]
    fn best_agents_solve_a_random_16x16_case() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for (kind, genome) in [
            (GridKind::Square, best_s_agent()),
            (GridKind::Triangulate, best_t_agent()),
        ] {
            let cfg = WorldConfig::paper(kind, 16);
            let mut rng = SmallRng::seed_from_u64(99);
            let init = InitialConfig::random(cfg.lattice, kind, 16, &[], &mut rng).unwrap();
            let out = simulate(&cfg, genome, &init, 1000).unwrap();
            assert!(out.is_successful(), "{kind}: {out:?}");
            assert!(out.t_comm.unwrap() > 0);
            assert_eq!(out.fitness(1e4), f64::from(out.t_comm.unwrap()));
        }
    }

    #[test]
    fn fitness_dominance_relation() {
        // One uninformed agent dominates any admissible time.
        let failed = RunOutcome { t_comm: None, informed: 7, agents: 8, steps: 200 };
        let slow = RunOutcome { t_comm: Some(199), informed: 8, agents: 8, steps: 199 };
        assert!(failed.fitness(1e4) > slow.fitness(1e4));
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use a2a_fsm::best_t_agent;
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn profile_is_monotone_and_ends_complete() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let mut rng = SmallRng::seed_from_u64(31);
        let init = InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng).unwrap();
        let mut world = World::new(&cfg, best_t_agent(), &init).unwrap();
        let (outcome, profile) = run_with_profile(&mut world, 2000);
        assert!(outcome.is_successful());
        assert_eq!(profile.len() as u32, outcome.steps + 1);
        for w in profile.windows(2) {
            assert!(w[1] >= w[0], "informed count is monotone");
        }
        assert_eq!(*profile.last().unwrap(), 16);
    }

    #[test]
    fn profile_of_complete_placement_is_single_entry() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let init = InitialConfig::new(vec![
            (a2a_grid::Pos::new(0, 0), a2a_grid::Dir::new(0)),
            (a2a_grid::Pos::new(1, 0), a2a_grid::Dir::new(0)),
        ]);
        let mut world = World::new(&cfg, a2a_fsm::best_s_agent(), &init).unwrap();
        let (outcome, profile) = run_with_profile(&mut world, 100);
        assert_eq!(outcome.t_comm, Some(0));
        assert_eq!(profile, vec![2]);
    }
}

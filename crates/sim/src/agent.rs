//! Agents: the moving entities of the multi-agent system.
//!
//! The paper's agent state is the quadruple
//! `{IDentifier, Direction, ControlState, CommunicationVector}` (Sect. 3).

use crate::infoset::InfoSet;
use a2a_grid::{Dir, Pos};
use serde::{Deserialize, Serialize};

/// One agent of the multi-agent system.
///
/// Fields are read-only outside the simulator; the [`crate::World`] is the
/// sole mutator so CA invariants (one agent per cell, synchronous updates)
/// cannot be broken from outside.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Agent {
    pub(crate) id: u16,
    pub(crate) pos: Pos,
    pub(crate) dir: Dir,
    pub(crate) state: u8,
    pub(crate) info: InfoSet,
}

impl Agent {
    /// The identifier `ID ∈ {0 … N_agents − 1}`; also the conflict
    /// priority (lowest ID wins under the paper's resolution strategy).
    #[must_use]
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Current cell.
    #[must_use]
    pub fn pos(&self) -> Pos {
        self.pos
    }

    /// Current moving direction.
    #[must_use]
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// Current control state of the embedded FSM.
    #[must_use]
    pub fn state(&self) -> u8 {
        self.state
    }

    /// The communication vector gathered so far.
    #[must_use]
    pub fn info(&self) -> &InfoSet {
        &self.info
    }

    /// Whether this agent has gathered the complete information
    /// (is *informed* in the paper's terminology).
    #[must_use]
    pub fn is_informed(&self) -> bool {
        self.info.is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_expose_state() {
        let a = Agent {
            id: 3,
            pos: Pos::new(1, 2),
            dir: Dir::new(5),
            state: 2,
            info: InfoSet::singleton(3, 8),
        };
        assert_eq!(a.id(), 3);
        assert_eq!(a.pos(), Pos::new(1, 2));
        assert_eq!(a.dir(), Dir::new(5));
        assert_eq!(a.state(), 2);
        assert!(a.info().contains(3));
        assert!(!a.is_informed());
    }
}

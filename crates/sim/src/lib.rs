//! Synchronous CA multi-agent simulator reproducing the model of
//! Hoffmann & Désérable, *CA Agents for All-to-All Communication Are
//! Faster in the Triangulate Grid* (PaCT 2013), Sect. 3.
//!
//! `k` FSM-controlled agents move on a cyclic square or triangulate field,
//! leave 1-bit colour traces ("pheromones"), resolve movement conflicts by
//! ID priority, and OR their communication vectors with all agents in
//! their von-Neumann neighbourhood each step. The task is solved when
//! every agent holds the all-ones vector; the counted step at which that
//! happens is the communication time `t_comm`.
//!
//! * [`World`] — the CA state and its synchronous `step`;
//! * [`WorldConfig`] — environment and policy knobs
//!   ([`ConflictPolicy`], [`InitStatePolicy`], [`ColorInit`], obstacles,
//!   borders);
//! * [`InitialConfig`] / [`paper_config_set`] — seeded random fields plus
//!   the paper's three manual hard cases (Sect. 4);
//! * [`run_to_completion`] / [`simulate`] — driving a run and summarising
//!   it as a [`RunOutcome`] with the paper's fitness;
//! * [`render_snapshot`] — Fig. 6/7-style ASCII views (agents, colours,
//!   visited streets).
//!
//! # Examples
//!
//! Measuring the communication time of the published best T-agent on one
//! random 16×16 configuration:
//!
//! ```
//! use a2a_sim::{simulate, InitialConfig, WorldConfig};
//! use a2a_fsm::best_t_agent;
//! use a2a_grid::GridKind;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! # fn main() -> Result<(), a2a_sim::SimError> {
//! let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
//! let mut rng = SmallRng::seed_from_u64(2013);
//! let init = InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng)?;
//! let outcome = simulate(&cfg, best_t_agent(), &init, 1000)?;
//! assert!(outcome.is_successful());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod agent;
mod batch;
mod behaviour;
mod config;
mod decide;
mod dispatch;
mod error;
mod infoset;
mod init;
mod kernel;
mod multi;
mod recorder;
mod render;
mod run;
mod sliced;
mod world;

pub use agent::Agent;
pub use batch::BatchRunner;
pub use behaviour::Behaviour;
pub use config::{ColorInit, ConflictPolicy, InitStatePolicy, WorldConfig};
pub use decide::{decide, Decision};
pub use dispatch::{Dispatch, DispatchJob, SerialDispatch};
pub use error::SimError;
pub use infoset::InfoSet;
pub use init::{paper_config_set, InitialConfig};
pub use kernel::FastWorld;
pub use multi::MultiWorld;
pub use recorder::{record_trajectory, AgentSnapshot, Frame, TimedEvent, Trajectory};
pub use render::{render_agents, render_colors, render_snapshot, render_visited};
pub use run::{run_to_completion, run_with_profile, simulate, simulate_behaviour, RunOutcome};
pub use sliced::SlicedWorld;
pub use world::World;

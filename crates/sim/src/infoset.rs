//! The communication vector (Sect. 3, "Communication Method"): a `k`-bit
//! vector per agent, initialised mutually exclusively (`bit(i) = 1` for
//! agent `i`) and combined by OR when agents meet.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of agents whose bits fit in the inline representation.
const INLINE_BITS: usize = 256;
const INLINE_WORDS: usize = INLINE_BITS / 64;

#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Words {
    /// Up to 256 agents (covers every experiment of the paper) without
    /// heap allocation.
    Inline([u64; INLINE_WORDS]),
    /// Arbitrarily many agents (e.g. a fully packed 33×33 field).
    Heap(Box<[u64]>),
}

/// A `k`-bit communication vector.
///
/// The all-to-all task is solved when every agent's vector is all ones
/// ([`InfoSet::is_complete`]).
///
/// # Examples
///
/// ```
/// use a2a_sim::InfoSet;
///
/// let mut a = InfoSet::singleton(0, 3);
/// let b = InfoSet::singleton(2, 3);
/// a.merge(&b);
/// assert_eq!(a.count(), 2);
/// assert!(!a.is_complete());
/// a.merge(&InfoSet::singleton(1, 3));
/// assert!(a.is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InfoSet {
    bits: usize,
    words: Words,
}

impl InfoSet {
    /// An empty vector for `k` agents.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn empty(k: usize) -> Self {
        assert!(k > 0, "communication vectors need at least one bit");
        let words = if k <= INLINE_BITS {
            Words::Inline([0; INLINE_WORDS])
        } else {
            Words::Heap(vec![0; k.div_ceil(64)].into_boxed_slice())
        };
        Self { bits: k, words }
    }

    /// The initial vector of agent `i`: only `bit(i)` set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k` or `k == 0`.
    #[must_use]
    pub fn singleton(i: usize, k: usize) -> Self {
        let mut s = Self::empty(k);
        s.insert(i);
        s
    }

    /// Number of bits (`k`, the agent count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether no bit is set (never the case for an agent's own vector).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(a) => a,
            Words::Heap(b) => b,
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline(a) => a,
            Words::Heap(b) => b,
        }
    }

    /// Sets bit `i` (agent `i`'s exclusive information part).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.bits, "bit {i} out of range for {} agents", self.bits);
        self.words_mut()[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} out of range for {} agents", self.bits);
        self.words()[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// ORs `other` into `self` — the paper's information exchange.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bits, other.bits, "mismatched communication vectors");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// Number of information parts gathered.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the vector is all ones — the agent is *informed*.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        let full_words = self.bits / 64;
        let tail = self.bits % 64;
        let w = self.words();
        w[..full_words].iter().all(|&x| x == u64::MAX)
            && (tail == 0 || w[full_words] == (1u64 << tail) - 1)
    }
}

impl fmt::Display for InfoSet {
    /// Renders as a bit string, most significant agent last, e.g. `101`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.bits {
            write!(f, "{}", u8::from(self.contains(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_has_exactly_one_bit() {
        for k in [1usize, 2, 16, 64, 65, 256, 300, 1089] {
            for i in [0, k / 2, k - 1] {
                let s = InfoSet::singleton(i, k);
                assert_eq!(s.count(), 1, "k={k} i={i}");
                assert!(s.contains(i));
                assert_eq!(s.is_complete(), k == 1);
            }
        }
    }

    #[test]
    fn merge_is_union() {
        let mut a = InfoSet::singleton(0, 16);
        a.merge(&InfoSet::singleton(5, 16));
        a.merge(&InfoSet::singleton(15, 16));
        assert_eq!(a.count(), 3);
        assert!(a.contains(0) && a.contains(5) && a.contains(15));
        assert!(!a.contains(1));
    }

    #[test]
    fn complete_detection_at_word_boundaries() {
        for k in [1usize, 63, 64, 65, 128, 256, 257, 1089] {
            let mut s = InfoSet::empty(k);
            for i in 0..k - 1 {
                s.insert(i);
            }
            assert!(!s.is_complete(), "k={k} missing last bit");
            s.insert(k - 1);
            assert!(s.is_complete(), "k={k}");
            assert_eq!(s.count(), k);
        }
    }

    #[test]
    fn heap_spill_beyond_256() {
        let s = InfoSet::singleton(1000, 1089);
        assert_eq!(s.len(), 1089);
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = InfoSet::singleton(3, 40);
        let mut b = InfoSet::singleton(7, 40);
        let (a0, b0) = (a.clone(), b.clone());
        a.merge(&b0);
        b.merge(&a0);
        assert_eq!(a, b);
        let snapshot = a.clone();
        a.merge(&b);
        assert_eq!(a, snapshot, "idempotent");
    }

    #[test]
    fn display_is_bit_string() {
        let mut s = InfoSet::singleton(0, 4);
        s.insert(2);
        assert_eq!(s.to_string(), "1010");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = InfoSet::empty(8);
        s.insert(8);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn merge_length_mismatch_panics() {
        let mut a = InfoSet::empty(8);
        a.merge(&InfoSet::empty(9));
    }
}

//! The dispatch seam: a sim-visible trait for running a batch of
//! independent jobs, possibly in parallel.
//!
//! The persistent worker pool lives in `a2a-ga` (`ga::pool::WorkerPool`),
//! which already depends on this crate — so the batch layer cannot name
//! it directly without a dependency cycle. [`Dispatch`] inverts the
//! seam: `a2a-ga` implements the trait for its pool and hands it to
//! [`BatchRunner::with_dispatch`](crate::BatchRunner::with_dispatch),
//! and the batch layer shards chunk-blocks across whatever executor it
//! was given. [`SerialDispatch`] is the dependency-free default: it
//! runs every job inline on the caller, which is also the reference
//! behaviour the parallel paths must be bit-identical to.

use std::fmt::Debug;
use std::sync::Arc;

/// A boxed unit of work handed to a [`Dispatch`] executor.
pub type DispatchJob = Box<dyn FnOnce() + Send + 'static>;

/// An executor for batches of independent jobs.
///
/// The contract the batch layer relies on:
///
/// - **Completion**: `run_jobs` returns only after every job has been
///   given a chance to run. Jobs an implementation fails to run (e.g.
///   a worker died) may be dropped unexecuted — callers detect the
///   hole and re-run the job inline — but `run_jobs` must not return
///   while any job is still executing.
/// - **Independence**: jobs never depend on each other; any execution
///   order and any assignment of jobs to threads is correct. All
///   determinism lives in the *caller*, which commits results in
///   submission order regardless of completion order.
pub trait Dispatch: Send + Sync + Debug {
    /// Runs every job to completion, in any order, on any threads.
    fn run_jobs(&self, jobs: Vec<DispatchJob>);

    /// Worker threads this executor can occupy at once (`1` means the
    /// caller's thread only). Purely informational — used for chunk
    /// shaping and the `kernel.dispatch.workers` gauge.
    fn workers(&self) -> usize;
}

/// The inline executor: runs each job on the calling thread, in
/// submission order. This is the reference semantics parallel
/// dispatchers are differential-tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialDispatch;

impl Dispatch for SerialDispatch {
    fn run_jobs(&self, jobs: Vec<DispatchJob>) {
        for job in jobs {
            job();
        }
    }

    fn workers(&self) -> usize {
        1
    }
}

impl<D: Dispatch + ?Sized> Dispatch for Arc<D> {
    fn run_jobs(&self, jobs: Vec<DispatchJob>) {
        (**self).run_jobs(jobs);
    }

    fn workers(&self) -> usize {
        (**self).workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn serial_dispatch_runs_everything_in_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<DispatchJob> = (0..5)
            .map(|i| {
                let seen = Arc::clone(&seen);
                Box::new(move || seen.lock().unwrap().push(i)) as DispatchJob
            })
            .collect();
        SerialDispatch.run_jobs(jobs);
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(SerialDispatch.workers(), 1);
    }

    #[test]
    fn arc_dispatch_delegates() {
        let executor: Arc<dyn Dispatch> = Arc::new(SerialDispatch);
        let count = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<DispatchJob> = (0..3)
            .map(|_| {
                let count = Arc::clone(&count);
                Box::new(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                }) as DispatchJob
            })
            .collect();
        executor.run_jobs(jobs);
        assert_eq!(count.load(Ordering::Relaxed), 3);
        assert_eq!(executor.workers(), 1);
    }
}

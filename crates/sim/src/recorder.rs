//! Trajectory recording: full per-step agent snapshots for replay,
//! mobility analysis and visualisation beyond the live ASCII renderer.

use crate::run::RunOutcome;
use crate::world::World;
use a2a_grid::{Dir, Pos};
use serde::{Deserialize, Serialize};

/// One agent's state at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentSnapshot {
    /// Cell the agent stands on.
    pub pos: Pos,
    /// Moving direction.
    pub dir: Dir,
    /// FSM control state.
    pub state: u8,
    /// Information parts gathered so far.
    pub info_count: usize,
}

/// The system state after one step (or at placement for `time == 0`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Counted time (0 = right after the free placement exchange).
    pub time: u32,
    /// Agents in ID order.
    pub agents: Vec<AgentSnapshot>,
    /// Informed agents at this instant.
    pub informed: usize,
}

/// A named marker on a [`Trajectory`]'s frame time axis — e.g. the
/// counted step on which the informed count grew. Markers share the
/// `time` values of the frames they annotate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Counted time of the frame this marker belongs to.
    pub time: u32,
    /// Dot-separated marker name (the [`a2a_obs`] naming convention).
    pub name: String,
    /// Scalar payload; its meaning depends on `name`.
    pub value: i64,
}

/// A recorded run: one [`Frame`] per instant from placement to the end,
/// plus an optional channel of [`TimedEvent`] markers on the same time
/// axis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trajectory {
    frames: Vec<Frame>,
    events: Vec<TimedEvent>,
}

impl Trajectory {
    /// All frames, placement first.
    #[must_use]
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Appends a marker to the event channel. Markers keep insertion
    /// order; `time` should name a recorded frame.
    pub fn push_event(&mut self, time: u32, name: impl Into<String>, value: i64) {
        self.events.push(TimedEvent { time, name: name.into(), value });
    }

    /// The event channel, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// The markers attached to frame `time`.
    pub fn events_at(&self, time: u32) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter().filter(move |e| e.time == time)
    }

    /// Serialises the trajectory as JSONL: a header line
    /// (`schema = "a2a-sim/trajectory/v1"`), one line per frame
    /// (`{"time", "informed", "agents": [{"x","y","dir","state","info"}]}`)
    /// and one line per event-channel marker
    /// (`{"time", "mark", "value"}`). Every line is an auxiliary
    /// document under the [`a2a_obs::schema`] rules, so a trajectory
    /// file passes `validate_events` as-is.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        use a2a_obs::json::Json;
        let mut out = String::new();
        let mut push = |line: Json| {
            out.push_str(&line.to_string());
            out.push('\n');
        };
        push(
            Json::object()
                .with("schema", "a2a-sim/trajectory/v1")
                .with("frames", self.frames.len())
                .with("events", self.events.len())
                .with("agents", self.frames[0].agents.len()),
        );
        for f in &self.frames {
            let agents: Vec<Json> = f
                .agents
                .iter()
                .map(|a| {
                    Json::object()
                        .with("x", u64::from(a.pos.x))
                        .with("y", u64::from(a.pos.y))
                        .with("dir", u64::from(a.dir.index()))
                        .with("state", u64::from(a.state))
                        .with("info", a.info_count)
                })
                .collect();
            push(
                Json::object()
                    .with("time", f.time)
                    .with("informed", f.informed)
                    .with("agents", Json::Arr(agents)),
            );
        }
        for e in &self.events {
            push(
                Json::object()
                    .with("time", e.time)
                    .with("mark", e.name.as_str())
                    .with("value", e.value),
            );
        }
        out
    }

    /// Number of recorded instants (`steps + 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// A trajectory always contains the placement frame.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The positions agent `id` visited, in time order (consecutive
    /// duplicates mean the agent waited).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn path_of(&self, id: usize) -> Vec<Pos> {
        self.frames.iter().map(|f| f.agents[id].pos).collect()
    }

    /// Number of steps in which agent `id` actually moved.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn moves_of(&self, id: usize) -> usize {
        self.path_of(id).windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Mean fraction of steps spent moving, over all agents — the
    /// system's "mobility". Dense systems are mostly blocked; the fully
    /// packed field has mobility 0.
    #[must_use]
    pub fn mobility(&self) -> f64 {
        let steps = self.frames.len() - 1;
        if steps == 0 {
            return 0.0;
        }
        let k = self.frames[0].agents.len();
        let total_moves: usize = (0..k).map(|id| self.moves_of(id)).sum();
        total_moves as f64 / (steps * k) as f64
    }
}

/// Runs `world` to completion (or `t_max`), recording every instant.
/// The event channel receives an `informed` marker on every counted
/// step where the informed count grew (value = new count).
pub fn record_trajectory(world: &mut World, t_max: u32) -> (RunOutcome, Trajectory) {
    let snapshot = |w: &World| Frame {
        time: w.time(),
        agents: w
            .agents()
            .iter()
            .map(|a| AgentSnapshot {
                pos: a.pos(),
                dir: a.dir(),
                state: a.state(),
                info_count: a.info().count(),
            })
            .collect(),
        informed: w.informed_count(),
    };
    let mut frames = vec![snapshot(world)];
    let mut events = Vec::new();
    while !world.all_informed() && world.time() < t_max {
        let before = world.informed_count();
        world.step();
        frames.push(snapshot(world));
        if world.informed_count() > before {
            events.push(TimedEvent {
                time: world.time(),
                name: "informed".to_string(),
                value: world.informed_count() as i64,
            });
        }
    }
    let outcome = RunOutcome {
        t_comm: world.all_informed().then(|| world.time()),
        informed: world.informed_count(),
        agents: world.agents().len(),
        steps: world.time(),
    };
    (outcome, Trajectory { frames, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::init::InitialConfig;
    use a2a_fsm::{best_agent, best_t_agent};
    use a2a_grid::{GridKind, Lattice};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn recorded(kind: GridKind, k: usize, seed: u64) -> (RunOutcome, Trajectory) {
        let cfg = WorldConfig::paper(kind, 16);
        let mut rng = SmallRng::seed_from_u64(seed);
        let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap();
        let mut world = World::new(&cfg, best_agent(kind), &init).unwrap();
        record_trajectory(&mut world, 2000)
    }

    #[test]
    fn frame_count_matches_steps() {
        let (outcome, traj) = recorded(GridKind::Triangulate, 8, 3);
        assert!(outcome.is_successful());
        assert_eq!(traj.len() as u32, outcome.steps + 1);
        assert_eq!(traj.frames()[0].time, 0);
        assert_eq!(traj.frames().last().unwrap().informed, 8);
    }

    #[test]
    fn paths_are_single_hop_and_info_monotone() {
        let (_, traj) = recorded(GridKind::Square, 4, 9);
        let lattice = Lattice::torus(16, 16);
        for id in 0..4 {
            let path = traj.path_of(id);
            for w in path.windows(2) {
                let d = a2a_grid::torus_distance(lattice, GridKind::Square, w[0], w[1]);
                assert!(d <= 1);
            }
            let counts: Vec<usize> =
                traj.frames().iter().map(|f| f.agents[id].info_count).collect();
            for w in counts.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn fully_packed_has_zero_mobility() {
        let lattice = Lattice::torus(16, 16);
        let placements: Vec<_> =
            lattice.positions().map(|p| (p, a2a_grid::Dir::new(0))).collect();
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let mut world =
            World::new(&cfg, best_t_agent(), &InitialConfig::new(placements)).unwrap();
        let (_, traj) = record_trajectory(&mut world, 100);
        assert_eq!(traj.mobility(), 0.0);
    }

    #[test]
    fn sparse_agents_are_mostly_mobile() {
        let (_, traj) = recorded(GridKind::Triangulate, 2, 5);
        assert!(traj.mobility() > 0.5, "mobility {}", traj.mobility());
        assert!(traj.moves_of(0) + traj.moves_of(1) > 0);
    }

    #[test]
    fn event_channel_tracks_informed_growth() {
        let (outcome, mut traj) = recorded(GridKind::Triangulate, 8, 3);
        let marks: Vec<&TimedEvent> =
            traj.events().iter().filter(|e| e.name == "informed").collect();
        assert!(!marks.is_empty(), "a successful multi-agent run has informed growth");
        for w in marks.windows(2) {
            assert!(w[1].time > w[0].time, "markers follow the frame time axis");
            assert!(w[1].value > w[0].value, "informed count is monotone");
        }
        let last = marks.last().unwrap();
        assert_eq!(last.time, outcome.t_comm.unwrap());
        assert_eq!(last.value, 8);
        assert_eq!(traj.events_at(last.time).count(), 1);

        traj.push_event(0, "custom.mark", 42);
        assert_eq!(traj.events().last().unwrap().value, 42);
        assert_eq!(traj.events_at(0).count(), 1);
    }

    #[test]
    fn jsonl_export_is_schema_valid_and_complete() {
        let (outcome, traj) = recorded(GridKind::Square, 4, 9);
        let text = traj.to_jsonl();
        // Every line is an auxiliary document under the obs schema.
        assert_eq!(a2a_obs::schema::validate_events(&text).unwrap().events, 0);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + traj.len() + traj.events().len());
        let header = a2a_obs::json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("schema").and_then(a2a_obs::json::Json::as_str),
            Some("a2a-sim/trajectory/v1")
        );
        assert_eq!(
            header.get("frames").and_then(a2a_obs::json::Json::as_f64),
            Some(traj.len() as f64)
        );
        let last_frame = a2a_obs::json::parse(lines[traj.len()]).unwrap();
        assert_eq!(
            last_frame.get("informed").and_then(a2a_obs::json::Json::as_f64),
            Some(outcome.informed as f64)
        );
        assert_eq!(
            last_frame.get("agents").and_then(a2a_obs::json::Json::as_arr).unwrap().len(),
            4
        );
    }
}

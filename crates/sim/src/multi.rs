//! The lockstep multi-run kernel: R configurations of one compiled
//! environment simulated simultaneously in a single fused
//! structure-of-arrays object.
//!
//! [`MultiWorld`] lays every run's state out run-major in contiguous
//! arrays (agent fields behind per-run base offsets, field-sized
//! buffers at fixed per-run strides) and advances all live runs with
//! one `act`/`exchange` sweep per global step. A run that solves the
//! task or exhausts the horizon is *retired*: its slot is swap-removed
//! from the live list (`active`), so the tail of slow configurations
//! never drags dead iterations through the sweeps. The long fused
//! loops amortise phase-table and neighbour-table loads across runs
//! and keep branch predictors warm; the common `k ≤ 64` case gets a
//! specialised one-word exchange.
//!
//! Outcomes are **bit-identical per configuration** to running each
//! one through [`FastWorld`](crate::FastWorld): runs are fully
//! independent (no state is shared between them except the immutable
//! environment), and the per-run `act`/`exchange` bodies replicate the
//! single-run kernel decision for decision. The differential suite in
//! `tests/differential.rs` drives all three engines in lockstep.

use crate::behaviour::Behaviour;
use crate::config::{ConflictPolicy, WorldConfig};
use crate::error::SimError;
use crate::infoset::InfoSet;
use crate::init::InitialConfig;
use crate::kernel::{bit_get, read_color, words_complete, CompiledEntry, KernelEnv, NONE};
use crate::run::RunOutcome;
use a2a_fsm::Genome;
use a2a_grid::{Dir, Pos};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of buffer-allocating multi-world constructions:
/// one per [`MultiWorld::from_env`] plus one per [`MultiWorld::load`]
/// that had to grow a buffer. The batch layer's steady state (chunked
/// reuse with a stable workload shape) must not move this counter —
/// asserted by `crates/sim/tests/allocation.rs`.
static MULTI_BUFFER_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Working-set budget per lockstep chunk. Small enough that one
/// chunk's mutable state stays cache-resident across consecutive
/// global steps, large enough that the fused sweeps amortise their
/// per-step overhead over many runs.
const CHUNK_BUDGET_BYTES: usize = 256 * 1024;

/// Runs per lockstep chunk for `env` with configurations of roughly
/// `k` agents: as many as fit [`CHUNK_BUDGET_BYTES`], clamped to
/// `[4, 64]`.
pub(crate) fn preferred_chunk(env: &KernelEnv, k: usize) -> usize {
    let k = k.max(1);
    let stride = k.div_ceil(64);
    let per_run = 17 * env.lattice.len()                                 // occupant + claims + cell_info + meta
        + 12 * k                                                         // pos/dir/state/complete/frontier
        + 16 * k * stride;                                               // info + info_next
    (CHUNK_BUDGET_BYTES / per_run).clamp(4, 64)
}

/// The fused multi-run engine: same dynamics as
/// [`FastWorld`](crate::FastWorld), one object simulating a whole
/// batch of initial configurations in lockstep.
///
/// # Examples
///
/// ```
/// use a2a_sim::{InitialConfig, MultiWorld, WorldConfig};
/// use a2a_fsm::best_t_agent;
/// use a2a_grid::GridKind;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), a2a_sim::SimError> {
/// let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let inits: Vec<InitialConfig> = (0..8)
///     .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng))
///     .collect::<Result<_, _>>()?;
/// let mut multi = MultiWorld::new(&cfg, best_t_agent())?;
/// multi.load(&inits)?;
/// assert!(multi.run(200).iter().all(|o| o.is_successful()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiWorld {
    env: Arc<KernelEnv>,

    // Per-run metadata, indexed by run slot `0..run_count()`.
    /// Start of each run's block in the agent arrays.
    agent_base: Vec<usize>,
    /// Start of each run's block in the info word arrays.
    info_base: Vec<usize>,
    /// Agents per run.
    k: Vec<u32>,
    /// Info words per agent per run: `k.div_ceil(64)`.
    stride: Vec<u32>,
    /// Mask of valid bits in each run's last info word.
    tail_mask: Vec<u64>,
    /// Informed agents per run (incremental counter).
    informed: Vec<u32>,
    /// Movement conflicts lost per run.
    conflicts: Vec<u64>,
    /// Recorded outcome per run slot, filled at retirement.
    outcomes: Vec<Option<RunOutcome>>,

    // Field state, run-major at fixed per-run strides.
    /// `run_count() * n_cells`; agent on each cell (local id) or `NONE`.
    /// Read only by the multi-word (`k > 64`) exchange gather; runs with
    /// one-word infosets skip its maintenance during `act`, so their
    /// regions go stale after the first move (rebuilt by every `load`).
    occupant: Vec<u32>,
    /// `run_count() * n_cells`; arbitration scratch, all-`NONE` between steps.
    claims: Vec<u32>,
    /// `run_count() * n_cells`; one byte of cell state per cell — bit 0
    /// is the solid bit (occupancy ∪ obstacles), bits 1.. the cell's
    /// colour. One byte load serves a neighbour's whole perception
    /// (blocked test and front colour) where the single-run engine's
    /// separate bitsets take two word-gathers, and colour writes and
    /// moves become plain byte stores instead of masked word
    /// read-modify-writes.
    meta: Vec<u8>,
    /// `n_cells`; the empty-field `meta` image (obstacles + initial
    /// colours), copied per run at every [`MultiWorld::load`].
    meta_init: Vec<u8>,
    /// `run_count() * n_cells`; used by runs with one-word infosets
    /// (`k ≤ 64`) only: each occupied cell holds its agent's info word,
    /// empty cells hold 0. Cell-indexing makes the exchange gather a
    /// plain `w |= cell_info[neighbour]` — no occupant indirection, no
    /// branches, and empty neighbours OR in a no-op 0 — at the price of
    /// moving one word per agent move in the apply pass.
    cell_info: Vec<u64>,

    // Agent state, flat behind `agent_base` / `info_base` offsets.
    pos: Vec<u32>,
    dir: Vec<u8>,
    state: Vec<u8>,
    /// Colour of each agent's own cell, mirrored out of `color_planes`
    /// (the invariant: `own_color[i] == read_color(.., pos[i])` between
    /// phases). Perception reads it directly, saving one bit-plane
    /// gather per agent per round.
    own_color: Vec<u8>,
    complete: Vec<bool>,
    /// Per-run activity frontier, flat behind `agent_base` offsets:
    /// each run's `k` entries are a permutation of its local agent IDs
    /// whose first [`MultiWorld::frontier_len`] entries are exactly the
    /// agents with unsaturated infosets. Retirement is an O(1) swap
    /// with the prefix's last entry, so the saturation tail drops out
    /// of the exchange sweep instead of being skipped agent by agent.
    /// Stale in dense mode ([`MultiWorld::set_dense`] rebuilds it on
    /// re-entry to frontier mode).
    frontier: Vec<u32>,
    /// Live prefix length of each run's [`MultiWorld::frontier`] block.
    frontier_len: Vec<u32>,
    info: Vec<u64>,
    info_next: Vec<u64>,

    /// Live run slots; retirement swap-removes (order is irrelevant —
    /// runs are independent, outcomes are reported by slot).
    active: Vec<u32>,
    /// Global lockstep time: every live run has taken exactly this
    /// many counted steps.
    time: u32,
    /// Dense-scan compatibility mode: `true` replays the pre-frontier
    /// full-`k` exchange sweep (the in-process baseline the kernel
    /// bench measures `frontier_speedup` against); `false` (the
    /// default) walks the activity frontier.
    dense: bool,

    // Scratch reused across steps.
    requests: Vec<(u32, u32)>,
    decisions: Vec<(CompiledEntry, u32)>,
    /// `(info word base, stride, tail mask)` of agents that completed
    /// during the current exchange sweep; back-filled after the swap.
    /// Multi-word (`k > 64`) runs only — the one-word path needs no
    /// double buffer.
    newly: Vec<(usize, usize, u64)>,
    /// Per-run staging of gathered one-word infosets: the whole run is
    /// gathered from [`MultiWorld::cell_info`] into here, then committed
    /// back, so same-sweep peers read pre-exchange values. Dense mode
    /// only; the frontier path stages into [`MultiWorld::wpairs`].
    wbuf: Vec<u64>,
    /// Frontier-mode staging of gathered one-word infosets as
    /// `(cell, word)` pairs — only active agents are staged, so both
    /// the gather and the commit loop are proportional to the live
    /// frontier, not `k`.
    wpairs: Vec<(u32, u64)>,
}

impl MultiWorld {
    /// An empty multi-world for a single-FSM behaviour; call
    /// [`MultiWorld::load`] to place a batch.
    ///
    /// # Errors
    ///
    /// Exactly as [`crate::World::new`] for the environment checks.
    pub fn new(config: &WorldConfig, genome: Genome) -> Result<Self, SimError> {
        Self::with_behaviour(config, Behaviour::Single(genome))
    }

    /// Like [`MultiWorld::new`] with a full [`Behaviour`].
    ///
    /// # Errors
    ///
    /// Exactly as [`crate::World::with_behaviour`].
    pub fn with_behaviour(config: &WorldConfig, behaviour: Behaviour) -> Result<Self, SimError> {
        Ok(Self::from_env(Arc::new(KernelEnv::new(config, &behaviour)?)))
    }

    /// An empty multi-world over a shared environment.
    pub(crate) fn from_env(env: Arc<KernelEnv>) -> Self {
        MULTI_BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
        // The empty-field byte image every load stamps per run:
        // obstacle bit plus the initial colour of each cell.
        let meta_init = (0..env.lattice.len())
            .map(|c| {
                let color =
                    read_color(&env.color_planes_init, env.cell_words, env.n_color_planes, c);
                u8::from(bit_get(&env.obstacle_words, c)) | (color << 1)
            })
            .collect();
        Self {
            env,
            agent_base: Vec::new(),
            info_base: Vec::new(),
            k: Vec::new(),
            stride: Vec::new(),
            tail_mask: Vec::new(),
            informed: Vec::new(),
            conflicts: Vec::new(),
            outcomes: Vec::new(),
            occupant: Vec::new(),
            claims: Vec::new(),
            meta: Vec::new(),
            meta_init,
            cell_info: Vec::new(),
            pos: Vec::new(),
            dir: Vec::new(),
            state: Vec::new(),
            own_color: Vec::new(),
            complete: Vec::new(),
            frontier: Vec::new(),
            frontier_len: Vec::new(),
            info: Vec::new(),
            info_next: Vec::new(),
            active: Vec::new(),
            time: 0,
            dense: false,
            requests: Vec::new(),
            decisions: Vec::new(),
            newly: Vec::new(),
            wbuf: Vec::new(),
            wpairs: Vec::new(),
        }
    }

    /// Whether this world was compiled from exactly `env` (pointer
    /// identity) — the reuse precondition of [`MultiWorld::load`].
    pub(crate) fn shares_env(&self, env: &Arc<KernelEnv>) -> bool {
        Arc::ptr_eq(&self.env, env)
    }

    /// Process-wide count of buffer-allocating constructions
    /// ([`MultiWorld::from_env`] calls plus [`MultiWorld::load`] calls
    /// that grew a buffer). A reuse-only steady state keeps this
    /// constant — the zero-allocation acceptance check of the chunked
    /// batch layer.
    #[must_use]
    pub fn allocation_count() -> u64 {
        MULTI_BUFFER_ALLOCS.load(Ordering::Relaxed)
    }

    /// Places a batch of initial configurations, one run slot each, and
    /// performs every run's uncounted `t = 0` exchange. Reuses every
    /// buffer: reloading a workload of the same shape performs zero
    /// heap allocation. Each configuration is validated and placed
    /// exactly as [`FastWorld::from_env`](crate::FastWorld) does, in
    /// batch order, so the first error matches a serial engine's.
    ///
    /// # Errors
    ///
    /// The first per-configuration error, exactly as a serial
    /// [`FastWorld`](crate::FastWorld) construction loop would report
    /// it. On error the world is partially loaded and must be
    /// discarded or re-loaded before use.
    pub fn load(&mut self, inits: &[InitialConfig]) -> Result<(), SimError> {
        let env = Arc::clone(&self.env);
        let n_cells = env.lattice.len();
        let runs = inits.len();

        // Sizing pass (agent counts only; validation happens per run
        // below, in batch order).
        let mut agent_total = 0usize;
        let mut info_total = 0usize;
        let mut max_k = 0usize;
        for init in inits {
            let k = init.agent_count();
            agent_total += k;
            info_total += k * k.div_ceil(64);
            max_k = max_k.max(k);
        }
        if runs > self.agent_base.capacity()
            || runs > self.info_base.capacity()
            || runs > self.k.capacity()
            || runs > self.stride.capacity()
            || runs > self.tail_mask.capacity()
            || runs > self.informed.capacity()
            || runs > self.conflicts.capacity()
            || runs > self.outcomes.capacity()
            || runs > self.active.capacity()
            || runs * n_cells > self.occupant.capacity()
            || runs * n_cells > self.claims.capacity()
            || runs * n_cells > self.cell_info.capacity()
            || max_k > self.wbuf.capacity()
            || max_k > self.wpairs.capacity()
            || runs > self.frontier_len.capacity()
            || agent_total > self.frontier.capacity()
            || runs * n_cells > self.meta.capacity()
            || agent_total > self.pos.capacity()
            || agent_total > self.dir.capacity()
            || agent_total > self.state.capacity()
            || agent_total > self.own_color.capacity()
            || agent_total > self.complete.capacity()
            || agent_total > self.newly.capacity()
            || info_total > self.info.capacity()
            || info_total > self.info_next.capacity()
            || max_k > self.requests.capacity()
            || max_k > self.decisions.capacity()
        {
            MULTI_BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }

        self.agent_base.clear();
        self.info_base.clear();
        self.k.clear();
        self.stride.clear();
        self.tail_mask.clear();
        self.informed.clear();
        self.conflicts.clear();
        self.outcomes.clear();
        self.active.clear();
        self.pos.clear();
        self.dir.clear();
        self.state.clear();
        self.own_color.clear();
        self.complete.clear();
        self.info.clear();
        self.requests.clear();
        self.requests.reserve(max_k);
        self.decisions.clear();
        self.decisions.reserve(max_k);
        self.newly.clear();
        self.newly.reserve(agent_total);
        self.time = 0;
        self.occupant.clear();
        self.occupant.resize(runs * n_cells, NONE);
        self.claims.clear();
        self.claims.resize(runs * n_cells, NONE);
        self.cell_info.clear();
        self.cell_info.resize(runs * n_cells, 0);
        self.wbuf.clear();
        self.wbuf.reserve(max_k);
        self.wpairs.clear();
        self.wpairs.reserve(max_k);
        self.frontier.clear();
        self.frontier_len.clear();
        self.meta.clear();
        for _ in 0..runs {
            self.meta.extend_from_slice(&self.meta_init);
        }

        for (r, init) in inits.iter().enumerate() {
            // Pass 1 — validate without allocating, replicating
            // `InitialConfig::validate` check for check (error order
            // matters to callers). The run's claims region doubles as
            // the duplicate scratch: it is all-NONE between steps.
            if init.placements().is_empty() {
                return Err(SimError::NoAgents);
            }
            let f0 = r * n_cells;
            let mut marked = 0usize;
            let mut invalid = None;
            for &(pos, dir) in init.placements() {
                if !env.lattice.contains(pos) {
                    invalid = Some(SimError::OutsideField(pos));
                    break;
                }
                if !dir.is_valid_for(env.kind) {
                    invalid = Some(SimError::InvalidDirection {
                        index: dir.index(),
                        available: env.kind.dir_count(),
                    });
                    break;
                }
                let idx = env.lattice.index_of(pos);
                if self.claims[f0 + idx] != NONE {
                    invalid = Some(SimError::DuplicatePosition(pos));
                    break;
                }
                self.claims[f0 + idx] = 0;
                marked += 1;
            }
            for &(pos, _) in &init.placements()[..marked] {
                self.claims[f0 + env.lattice.index_of(pos)] = NONE;
            }
            if let Some(e) = invalid {
                return Err(e);
            }
            let k = init.agent_count();
            if k > usize::from(u16::MAX) {
                return Err(SimError::TooManyAgents {
                    requested: k,
                    limit: usize::from(u16::MAX),
                });
            }

            // Pass 2 — place into the run's slot.
            let a0 = self.pos.len();
            let i0 = self.info.len();
            for (i, &(p, d)) in init.placements().iter().enumerate() {
                let idx = env.lattice.index_of(p);
                if bit_get(&env.obstacle_words, idx) {
                    return Err(SimError::OnObstacle(p));
                }
                self.occupant[f0 + idx] = i as u32;
                self.meta[f0 + idx] |= 1;
                self.pos.push(idx as u32);
                self.dir.push(d.index());
                self.state.push(env.init_states.state_for(i as u16, env.n_states));
                self.own_color.push(self.meta[f0 + idx] >> 1);
            }
            let stride = k.div_ceil(64);
            self.complete.resize(a0 + k, false);
            self.info.resize(i0 + k * stride, 0);
            for i in 0..k {
                self.info[i0 + i * stride + i / 64] |= 1u64 << (i % 64);
            }
            if stride == 1 {
                // One-word runs keep their live vectors cell-indexed;
                // the `info` copy above only seeds `info_next`'s layout.
                for (i, &(p, _)) in init.placements().iter().enumerate() {
                    self.cell_info[f0 + env.lattice.index_of(p)] = 1u64 << i;
                }
            }
            let tail = k % 64;
            self.agent_base.push(a0);
            self.info_base.push(i0);
            self.k.push(k as u32);
            self.stride.push(stride as u32);
            self.tail_mask.push(if tail == 0 { u64::MAX } else { (1u64 << tail) - 1 });
            self.informed.push(0);
            self.conflicts.push(0);
            self.outcomes.push(None);
            self.active.push(r as u32);
            // Every agent starts unsaturated (k = 1 resolves at the
            // t = 0 exchange below, like everything else).
            self.frontier.extend(0..k as u32);
            self.frontier_len.push(k as u32);
        }
        self.info_next.clear();
        self.info_next.extend_from_slice(&self.info);

        // The uncounted exchange right after placement, every run in
        // one sweep.
        let active = std::mem::take(&mut self.active);
        for &r in &active {
            self.exchange_one(&env, r as usize);
        }
        self.active = active;
        self.finish_exchange();
        Ok(())
    }

    /// Runs every loaded configuration until it is solved or `t_max`
    /// counted steps have passed, retiring finished runs from the live
    /// list as they complete. Returns one [`RunOutcome`] per loaded
    /// configuration, in load order — each bit-identical to what
    /// [`FastWorld::run`](crate::FastWorld::run) reports for that
    /// configuration.
    ///
    /// With metrics on, feeds the same per-run `kernel.*` series as
    /// the single-run engine plus the multi-kernel extras
    /// (`kernel.multi.runs` / `.steps` / `.compactions` counters and
    /// the `kernel.multi.in_flight` gauge).
    ///
    /// # Panics
    ///
    /// Panics if nothing is loaded (zero configurations).
    pub fn run(&mut self, t_max: u32) -> Vec<RunOutcome> {
        assert!(!self.outcomes.is_empty(), "load a batch before running");
        let metrics = a2a_obs::metrics_enabled();
        let debug = a2a_obs::enabled(a2a_obs::Level::Debug);
        // At `Trace`, per-step phase timing goes into
        // `kernel.multi.act.ns` / `kernel.multi.exchange.ns` for the
        // profiler's phase table. Timing forces the sweeps apart (act
        // over all runs, then exchange over all runs) — runs are
        // independent, so the split changes nothing observable, only
        // the cache behaviour of the traced run itself.
        let phase_hists = a2a_obs::enabled(a2a_obs::Level::Trace).then(|| {
            let reg = a2a_obs::global();
            (reg.histogram("kernel.multi.act.ns"), reg.histogram("kernel.multi.exchange.ns"))
        });
        let env = Arc::clone(&self.env);
        // `kernel.frontier.active` counts active agent-steps (the work
        // the frontier sweep actually performs); the `_pct` histogram
        // samples each global step's active fraction across live runs.
        // Both derive from `k - informed`, so they are exact in dense
        // mode too. Handles are interned once, outside the loop.
        let frontier_stats = metrics.then(|| {
            let reg = a2a_obs::global();
            (reg.counter("kernel.frontier.active"), reg.histogram("kernel.frontier.active_pct"))
        });
        let mut run_steps: u64 = 0;
        let mut compactions: u64 = 0;
        self.retire_solved(metrics, debug, &mut compactions);
        while !self.active.is_empty() && self.time < t_max {
            if let Some((active_total, active_pct)) = &frontier_stats {
                let mut act: u64 = 0;
                let mut tot: u64 = 0;
                for &r in &self.active {
                    let r = r as usize;
                    act += u64::from(self.k[r] - self.informed[r]);
                    tot += u64::from(self.k[r]);
                }
                active_total.add(act);
                active_pct.record(act * 100 / tot.max(1));
            }
            let phase = &env.phases[self.time as usize % env.phases.len()];
            let active = std::mem::take(&mut self.active);
            if let Some((act_ns, exchange_ns)) = &phase_hists {
                let t0 = std::time::Instant::now();
                for &r in &active {
                    self.act_one(&env, phase, r as usize);
                }
                let t1 = std::time::Instant::now();
                for &r in &active {
                    self.exchange_one(&env, r as usize);
                }
                exchange_ns.record(t1.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                act_ns
                    .record(t1.duration_since(t0).as_nanos().min(u128::from(u64::MAX)) as u64);
            } else {
                // Act and exchange back-to-back per run while its state
                // is cache-hot; runs are independent, so fusing the
                // sweeps changes nothing observable.
                for &r in &active {
                    self.act_one(&env, phase, r as usize);
                    self.exchange_one(&env, r as usize);
                }
            }
            run_steps += active.len() as u64;
            self.active = active;
            self.finish_exchange();
            self.time += 1;
            self.retire_solved(metrics, debug, &mut compactions);
        }
        // Horizon: whatever is still live is out of time.
        let horizon = std::mem::take(&mut self.active);
        for &r in &horizon {
            let r = r as usize;
            let outcome = RunOutcome {
                t_comm: None,
                informed: self.informed[r] as usize,
                agents: self.k[r] as usize,
                steps: self.time,
            };
            self.outcomes[r] = Some(outcome);
            if metrics {
                self.record_run(outcome, r, debug);
            }
        }
        // Hand the buffer back (emptied) so reloading a same-shape
        // batch stays allocation-free.
        self.active = horizon;
        self.active.clear();
        if metrics {
            let reg = a2a_obs::global();
            reg.counter("kernel.multi.runs").add(self.outcomes.len() as u64);
            reg.counter("kernel.multi.steps").add(run_steps);
            reg.counter("kernel.multi.compactions").add(compactions);
            reg.gauge("kernel.multi.in_flight").set(0);
        }
        self.outcomes
            .iter()
            .map(|o| o.expect("every run slot is retired by the loop above"))
            .collect()
    }

    /// Advances **every** loaded run by one counted time step — solved
    /// runs included, exactly like stepping each world individually
    /// (agents keep acting after completion). This is the lockstep
    /// differential-test path; the retiring throughput path is
    /// [`MultiWorld::run`].
    pub fn step(&mut self) {
        let env = Arc::clone(&self.env);
        let phase = &env.phases[self.time as usize % env.phases.len()];
        for r in 0..self.k.len() {
            self.act_one(&env, phase, r);
            self.exchange_one(&env, r);
        }
        self.finish_exchange();
        self.time += 1;
    }

    /// Retires every live run whose agents are all informed, recording
    /// `t_comm = time`. Swap-remove keeps the live list dense.
    fn retire_solved(&mut self, metrics: bool, debug: bool, compactions: &mut u64) {
        let mut retired = false;
        let mut idx = 0;
        while idx < self.active.len() {
            let r = self.active[idx] as usize;
            if self.informed[r] == self.k[r] {
                let k = self.k[r] as usize;
                let outcome = RunOutcome {
                    t_comm: Some(self.time),
                    informed: k,
                    agents: k,
                    steps: self.time,
                };
                self.outcomes[r] = Some(outcome);
                self.active.swap_remove(idx);
                *compactions += 1;
                retired = true;
                if metrics {
                    self.record_run(outcome, r, debug);
                }
            } else {
                idx += 1;
            }
        }
        if retired && metrics {
            a2a_obs::global().gauge("kernel.multi.in_flight").set(self.active.len() as i64);
        }
    }

    /// Feeds one retired run's numbers into the global registry —
    /// the same series [`FastWorld::run`](crate::FastWorld::run)
    /// records, so downstream consumers are engine-agnostic — and, at
    /// `Debug`, emits the `kernel.run` summary with `engine: "multi"`.
    fn record_run(&self, outcome: RunOutcome, r: usize, debug: bool) {
        let reg = a2a_obs::global();
        let conflicts = self.conflicts[r];
        reg.counter("kernel.runs").incr();
        reg.counter("kernel.steps").add(u64::from(outcome.steps));
        reg.counter("kernel.conflicts").add(conflicts);
        reg.histogram("kernel.run.conflicts").record(conflicts);
        match outcome.t_comm {
            Some(t) => reg.histogram("kernel.t_comm").record(u64::from(t)),
            None => reg.counter("kernel.unsuccessful").incr(),
        }
        if debug {
            a2a_obs::event!(a2a_obs::Level::Debug, "kernel.run",
                "engine" => "multi",
                "grid" => self.env.kind.to_string(),
                "k" => outcome.agents,
                "steps" => outcome.steps,
                "t_comm" => outcome.t_comm.map_or(-1i64, i64::from),
                "informed" => outcome.informed,
                "conflicts" => conflicts);
        }
    }

    /// One run's act phase — [`FastWorld`](crate::FastWorld)'s
    /// table-driven perception, two-round arbitration, colour writes
    /// and moves, decision for decision, on the run's slices.
    fn act_one(&mut self, env: &KernelEnv, phase: &[CompiledEntry], r: usize) {
        let n_states = usize::from(env.n_states);
        let n_colors = usize::from(env.n_colors);
        let n_dirs = env.n_dirs;
        let n_cells = env.lattice.len();
        let f0 = r * n_cells;
        let a0 = self.agent_base[r];
        let k = self.k[r] as usize;

        let pos = &mut self.pos[a0..a0 + k];
        let dir = &mut self.dir[a0..a0 + k];
        let state = &mut self.state[a0..a0 + k];
        let own_color = &mut self.own_color[a0..a0 + k];
        let occupant = &mut self.occupant[f0..f0 + n_cells];
        let claims = &mut self.claims[f0..f0 + n_cells];
        let cell_info = &mut self.cell_info[f0..f0 + n_cells];
        let one_word = self.stride[r] == 1;
        let meta = &mut self.meta[f0..f0 + n_cells];
        let conflicts = &mut self.conflicts[r];
        let requests = &mut self.requests;
        let decisions = &mut self.decisions;
        requests.clear();
        decisions.clear();

        // Round 1: perceive the pre-step configuration; collect and
        // arbitrate move requests while scanning.
        for i in 0..k {
            let here = pos[i] as usize;
            let front = env.fwd[here * n_dirs + usize::from(dir[i])];
            // One byte read covers the whole front perception: solid
            // bit and colour.
            let front_meta = if front == NONE { 1 } else { meta[front as usize] };
            let hard_blocked = front_meta & 1 != 0;
            let color = own_color[i];
            let front_color = if front == NONE { 0 } else { front_meta >> 1 };
            let x = usize::from(hard_blocked)
                + 2 * (usize::from(color) + n_colors * usize::from(front_color));
            let e = x * n_states + usize::from(state[i]);
            let entry = phase[e];
            let mut target = NONE;
            if !hard_blocked && entry.mv {
                target = front;
                requests.push((i as u32, front));
                let cur = claims[front as usize];
                let winner = match (cur, env.conflict) {
                    (NONE, _) => i as u32,
                    (c, ConflictPolicy::LowestId) => c.min(i as u32),
                    (c, ConflictPolicy::HighestId) => c.max(i as u32),
                };
                claims[front as usize] = winner;
            }
            decisions.push((entry, target));
        }

        // Round 2: losers re-perceive with blocked = 1 and stay put.
        for &(i, target) in requests.iter() {
            if claims[target as usize] != i {
                *conflicts += 1;
                let color = own_color[i as usize];
                let front_color = meta[target as usize] >> 1;
                let x = 1 + 2 * (usize::from(color) + n_colors * usize::from(front_color));
                let e = x * n_states + usize::from(state[i as usize]);
                decisions[i as usize] = (phase[e], NONE);
            }
        }
        for &(_, target) in requests.iter() {
            claims[target as usize] = NONE;
        }

        // Apply: colour writes, state/direction updates, moves.
        let nd = n_dirs as u8;
        for i in 0..k {
            let (entry, target) = decisions[i];
            let here = pos[i] as usize;
            state[i] = entry.next_state;
            // `delta < n_dirs`, so one conditional subtract replaces the
            // hardware division of a `%` reduction.
            let d = dir[i] + entry.delta;
            dir[i] = if d >= nd { d - nd } else { d };
            if target == NONE {
                // Still occupied: solid bit stays set, colour is the
                // FSM's write.
                meta[here] = 1 | (entry.set_color << 1);
                own_color[i] = entry.set_color;
            } else {
                let t = target as usize;
                // Vacated: colour written, solid bit dropped.
                meta[here] = entry.set_color << 1;
                // The target cell keeps its own colour; nobody else
                // writes it this step (it was free, so no agent's
                // `here` is `t`), so reading it back here is
                // pre-step-exact.
                let mt = meta[t] | 1;
                meta[t] = mt;
                own_color[i] = mt >> 1;
                if one_word {
                    // Move targets are distinct pre-step-free cells and
                    // sources are occupied ones, so the word moves never
                    // alias each other within a step. One-word runs
                    // never read `occupant`, so its stores are skipped.
                    cell_info[t] = cell_info[here];
                    cell_info[here] = 0;
                } else {
                    occupant[here] = NONE;
                    occupant[t] = i as u32;
                }
                pos[i] = target;
            }
        }
    }

    /// One run's exchange sweep, dispatched on the engine mode: the
    /// activity-frontier walk by default, the dense full-`k` scan under
    /// [`MultiWorld::set_dense`]. Both produce bit-identical state —
    /// a complete agent's exchange is a no-op by construction (its
    /// vector is the all-ones fixed point and neighbours keep reading
    /// it from the frozen stale buffer / `cell_info` word), so walking
    /// only unsaturated agents is exact, not approximate.
    #[inline]
    fn exchange_one(&mut self, env: &KernelEnv, r: usize) {
        if self.dense {
            self.exchange_one_dense(env, r);
        } else {
            self.exchange_one_frontier(env, r);
        }
    }

    /// One run's frontier exchange: walk the live frontier prefix only,
    /// swap-removing each agent that saturates in O(1). One-word runs
    /// stage `(cell, word)` pairs in [`MultiWorld::wpairs`] — staging
    /// and commit are both proportional to the frontier, and toroidal
    /// fields take a sentinel-free gather — so a run deep in its
    /// saturation tail costs almost nothing per step.
    fn exchange_one_frontier(&mut self, env: &KernelEnv, r: usize) {
        let n_dirs = env.n_dirs;
        let n_cells = env.lattice.len();
        let f0 = r * n_cells;
        let a0 = self.agent_base[r];
        let k = self.k[r] as usize;
        let len = self.frontier_len[r] as usize;
        if len == 0 {
            return;
        }
        let i0 = self.info_base[r];
        let stride = self.stride[r] as usize;
        let tail = self.tail_mask[r];
        let pos = &self.pos[a0..a0 + k];
        let complete = &mut self.complete[a0..a0 + k];
        let frontier = &mut self.frontier[a0..a0 + k];

        if stride == 1 {
            let cell_info = &mut self.cell_info[f0..f0 + n_cells];
            let wpairs = &mut self.wpairs;
            wpairs.clear();
            // Dispatch on the two real neighbourhood sizes (unrolled
            // OR loop) crossed with borderedness (toroidal `fwd` rows
            // contain no `NONE`, so the sentinel test vanishes).
            let live = match (n_dirs, env.has_border) {
                (6, false) => gather_frontier::<6, false>(
                    &env.fwd, cell_info, pos, complete, frontier, len, wpairs, tail,
                ),
                (6, true) => gather_frontier::<6, true>(
                    &env.fwd, cell_info, pos, complete, frontier, len, wpairs, tail,
                ),
                (4, false) => gather_frontier::<4, false>(
                    &env.fwd, cell_info, pos, complete, frontier, len, wpairs, tail,
                ),
                (4, true) => gather_frontier::<4, true>(
                    &env.fwd, cell_info, pos, complete, frontier, len, wpairs, tail,
                ),
                _ => gather_frontier_any(
                    n_dirs, &env.fwd, cell_info, pos, complete, frontier, len, wpairs, tail,
                ),
            };
            self.frontier_len[r] = live as u32;
            self.informed[r] += (len - live) as u32;
            // Commit the staged words; each active agent occupies a
            // distinct cell, so the stores never alias, and same-sweep
            // peers read only pre-exchange values.
            for &(c, w) in wpairs.iter() {
                cell_info[c as usize] = w;
            }
        } else {
            let occupant = &self.occupant[f0..f0 + n_cells];
            let info = &self.info[i0..i0 + k * stride];
            let info_next = &mut self.info_next[i0..i0 + k * stride];
            let newly = &mut self.newly;
            let mut live = len;
            let mut j = 0;
            while j < live {
                let i = frontier[j] as usize;
                let base = i * stride;
                info_next[base..base + stride].copy_from_slice(&info[base..base + stride]);
                let here = pos[i] as usize;
                let row = &env.fwd[here * n_dirs..here * n_dirs + n_dirs];
                for &nc in row {
                    if nc == NONE {
                        continue;
                    }
                    let occ = occupant[nc as usize];
                    if occ != NONE && occ as usize != i {
                        let ob = occ as usize * stride;
                        for w in 0..stride {
                            info_next[base + w] |= info[ob + w];
                        }
                    }
                }
                if words_complete(&info_next[base..base + stride], tail) {
                    complete[i] = true;
                    newly.push((i0 + base, stride, tail));
                    live -= 1;
                    frontier[j] = frontier[live];
                    frontier[live] = i as u32;
                } else {
                    j += 1;
                }
            }
            self.informed[r] += (len - live) as u32;
            self.frontier_len[r] = live as u32;
        }
    }

    /// One run's dense exchange sweep — the pre-frontier full-`k` scan,
    /// kept verbatim as the kernel bench's same-process baseline for
    /// `frontier_speedup`: word-wise ORs of the pre-phase vectors into
    /// `info_next`, with a one-word fast path for `k ≤ 64`. Complete
    /// agents are skipped one by one — both their buffers are frozen at
    /// all-ones by the post-swap back-fill in
    /// [`MultiWorld::finish_exchange`].
    fn exchange_one_dense(&mut self, env: &KernelEnv, r: usize) {
        let n_dirs = env.n_dirs;
        let n_cells = env.lattice.len();
        let f0 = r * n_cells;
        let a0 = self.agent_base[r];
        let k = self.k[r] as usize;
        let i0 = self.info_base[r];
        let stride = self.stride[r] as usize;
        let tail = self.tail_mask[r];
        let pos = &self.pos[a0..a0 + k];
        let occupant = &self.occupant[f0..f0 + n_cells];
        let complete = &mut self.complete[a0..a0 + k];
        let informed = &mut self.informed[r];
        let newly = &mut self.newly;

        if stride == 1 {
            // k ≤ 64: vectors live cell-indexed in `cell_info`, so the
            // gather is a branch-free `w |= cell_info[neighbour]` — an
            // empty neighbour ORs in 0, an occupied one its agent's
            // word, with no occupant lookup at all. The whole run is
            // staged in `wbuf` and committed afterwards, so same-sweep
            // peers read pre-exchange values (the double-buffer role).
            let cell_info = &mut self.cell_info[f0..f0 + n_cells];
            let wbuf = &mut self.wbuf;
            wbuf.clear();
            // Dispatch on the two real neighbourhood sizes so the
            // per-neighbour loop fully unrolls.
            *informed += match n_dirs {
                6 => gather_one_word::<6>(&env.fwd, cell_info, pos, complete, wbuf, tail),
                4 => gather_one_word::<4>(&env.fwd, cell_info, pos, complete, wbuf, tail),
                _ => gather_one_word_any(n_dirs, &env.fwd, cell_info, pos, complete, wbuf, tail),
            };
            for (&p, &w) in pos.iter().zip(wbuf.iter()) {
                cell_info[p as usize] = w;
            }
        } else {
            let info = &self.info[i0..i0 + k * stride];
            let info_next = &mut self.info_next[i0..i0 + k * stride];
            for i in 0..k {
                if complete[i] {
                    continue;
                }
                let base = i * stride;
                info_next[base..base + stride].copy_from_slice(&info[base..base + stride]);
                let here = pos[i] as usize;
                let row = &env.fwd[here * n_dirs..here * n_dirs + n_dirs];
                for &nc in row {
                    if nc == NONE {
                        continue;
                    }
                    let occ = occupant[nc as usize];
                    if occ != NONE && occ as usize != i {
                        let ob = occ as usize * stride;
                        for w in 0..stride {
                            info_next[base + w] |= info[ob + w];
                        }
                    }
                }
                if words_complete(&info_next[base..base + stride], tail) {
                    complete[i] = true;
                    *informed += 1;
                    newly.push((i0 + base, stride, tail));
                }
            }
        }
    }

    /// Ends a global exchange: swaps the double buffers and freezes the
    /// stale buffer of agents that completed this sweep at all-ones,
    /// so both buffers agree and later sweeps skip those agents. The
    /// back-fill value equals what a copy would have produced, so
    /// same-sweep peers saw the correct pre-phase words.
    fn finish_exchange(&mut self) {
        std::mem::swap(&mut self.info, &mut self.info_next);
        for &(base, stride, tail) in &self.newly {
            for w in &mut self.info_next[base..base + stride - 1] {
                *w = u64::MAX;
            }
            self.info_next[base + stride - 1] = tail;
        }
        self.newly.clear();
    }

    /// Loaded configurations (including retired ones).
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.k.len()
    }

    /// Global lockstep steps executed so far.
    #[must_use]
    pub fn time(&self) -> u32 {
        self.time
    }

    /// Agents in run `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.run_count()` (here and in every per-run
    /// accessor below).
    #[must_use]
    pub fn agent_count(&self, r: usize) -> usize {
        self.k[r] as usize
    }

    /// Informed agents in run `r`.
    #[must_use]
    pub fn informed_count(&self, r: usize) -> usize {
        self.informed[r] as usize
    }

    /// Movement conflicts lost so far in run `r`.
    #[must_use]
    pub fn conflict_losses(&self, r: usize) -> u64 {
        self.conflicts[r]
    }

    /// Whether the dense (pre-frontier) exchange sweep is in effect.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Selects the exchange sweep: `true` replays the dense full-`k`
    /// scan (the kernel bench's in-process baseline for
    /// `frontier_speedup`), `false` (the default) walks the activity
    /// frontier. Both produce bit-identical trajectories. Switching
    /// back to frontier mode rebuilds every run's frontier permutation
    /// from its completion flags, so the toggle is safe mid-batch.
    pub fn set_dense(&mut self, dense: bool) {
        if self.dense && !dense {
            for r in 0..self.k.len() {
                let a0 = self.agent_base[r];
                let k = self.k[r] as usize;
                let mut live = 0usize;
                for i in 0..k {
                    if !self.complete[a0 + i] {
                        self.frontier[a0 + live] = i as u32;
                        live += 1;
                    }
                }
                let mut t = live;
                for i in 0..k {
                    if self.complete[a0 + i] {
                        self.frontier[a0 + t] = i as u32;
                        t += 1;
                    }
                }
                self.frontier_len[r] = live as u32;
            }
        }
        self.dense = dense;
    }

    /// Run `r`'s active agent IDs — exactly the agents whose infoset is
    /// not yet saturated — in unspecified order.
    #[must_use]
    pub fn active_agents(&self, r: usize) -> Vec<u32> {
        let a0 = self.agent_base[r];
        let k = self.k[r] as usize;
        if self.dense {
            (0..k as u32).filter(|&i| !self.complete[a0 + i as usize]).collect()
        } else {
            self.frontier[a0..a0 + self.frontier_len[r] as usize].to_vec()
        }
    }

    /// Run `r`'s agent positions in ID order.
    #[must_use]
    pub fn positions(&self, r: usize) -> Vec<Pos> {
        let a0 = self.agent_base[r];
        let k = self.k[r] as usize;
        self.pos[a0..a0 + k]
            .iter()
            .map(|&c| self.env.lattice.pos_at(c as usize))
            .collect()
    }

    /// Run `r`'s agent directions in ID order.
    #[must_use]
    pub fn dirs(&self, r: usize) -> Vec<Dir> {
        let a0 = self.agent_base[r];
        let k = self.k[r] as usize;
        self.dir[a0..a0 + k].iter().map(|&d| Dir::new(d)).collect()
    }

    /// Run `r`'s agent control states in ID order.
    #[must_use]
    pub fn states(&self, r: usize) -> Vec<u8> {
        let a0 = self.agent_base[r];
        let k = self.k[r] as usize;
        self.state[a0..a0 + k].to_vec()
    }

    /// Run `r`'s row-major cell colours, unpacked from its cell bytes.
    #[must_use]
    pub fn colors(&self, r: usize) -> Vec<u8> {
        let n_cells = self.env.lattice.len();
        assert!(r < self.k.len(), "run {r} out of range for {} runs", self.k.len());
        self.meta[r * n_cells..(r + 1) * n_cells].iter().map(|m| m >> 1).collect()
    }

    /// Agent `i` of run `r`'s communication vector as an [`InfoSet`].
    ///
    /// # Panics
    ///
    /// Panics if `r` or `i` is out of range.
    #[must_use]
    pub fn agent_info(&self, r: usize, i: usize) -> InfoSet {
        let k = self.k[r] as usize;
        assert!(i < k, "agent {i} out of range for {k} agents in run {r}");
        let stride = self.stride[r] as usize;
        let mut set = InfoSet::empty(k);
        if stride == 1 {
            // One-word runs keep their live vectors cell-indexed.
            let cell = self.pos[self.agent_base[r] + i] as usize;
            let word = self.cell_info[r * self.env.lattice.len() + cell];
            for b in 0..k {
                if word & (1u64 << b) != 0 {
                    set.insert(b);
                }
            }
            return set;
        }
        let base = self.info_base[r] + i * stride;
        for b in 0..k {
            if self.info[base + b / 64] & (1u64 << (b % 64)) != 0 {
                set.insert(b);
            }
        }
        set
    }
}

/// The one-word gather sweep with the neighbourhood size `D` fixed at
/// compile time, so the per-neighbour OR loop fully unrolls (the `fwd`
/// row is copied into a `[u32; D]` to make the trip count a constant).
/// Pushes one gathered word per agent into `wbuf` and returns how many
/// agents became complete.
fn gather_one_word<const D: usize>(
    fwd: &[u32],
    cell_info: &[u64],
    pos: &[u32],
    complete: &mut [bool],
    wbuf: &mut Vec<u64>,
    tail: u64,
) -> u32 {
    let mut newly = 0;
    for i in 0..pos.len() {
        let here = pos[i] as usize;
        if complete[i] {
            // Identity re-commit: the cell word is already the frozen
            // all-ones vector.
            wbuf.push(cell_info[here]);
            continue;
        }
        let mut w = cell_info[here];
        let row: [u32; D] = fwd[here * D..here * D + D].try_into().expect("row length is D");
        for nc in row {
            if nc != NONE {
                w |= cell_info[nc as usize];
            }
        }
        wbuf.push(w);
        if w == tail {
            complete[i] = true;
            newly += 1;
        }
    }
    newly
}

/// Runtime-`n_dirs` fallback of [`gather_one_word`], for neighbourhood
/// sizes without a dedicated instantiation.
fn gather_one_word_any(
    n_dirs: usize,
    fwd: &[u32],
    cell_info: &[u64],
    pos: &[u32],
    complete: &mut [bool],
    wbuf: &mut Vec<u64>,
    tail: u64,
) -> u32 {
    let mut newly = 0;
    for i in 0..pos.len() {
        let here = pos[i] as usize;
        if complete[i] {
            wbuf.push(cell_info[here]);
            continue;
        }
        let mut w = cell_info[here];
        for &nc in &fwd[here * n_dirs..here * n_dirs + n_dirs] {
            if nc != NONE {
                w |= cell_info[nc as usize];
            }
        }
        wbuf.push(w);
        if w == tail {
            complete[i] = true;
            newly += 1;
        }
    }
    newly
}

/// The frontier one-word gather: walks the run's live frontier prefix,
/// staging `(cell, gathered word)` pairs for exactly the active agents
/// and swap-removing each agent that saturates. `D` fixes the
/// neighbourhood size at compile time so the OR loop fully unrolls;
/// `BORDERED = false` (toroidal fields — no `NONE` entries anywhere in
/// `fwd`) removes the per-neighbour sentinel test from the inner loop
/// entirely. Returns the new live length; the caller derives the newly
/// informed count as `len - returned`.
#[allow(clippy::too_many_arguments)]
fn gather_frontier<const D: usize, const BORDERED: bool>(
    fwd: &[u32],
    cell_info: &[u64],
    pos: &[u32],
    complete: &mut [bool],
    frontier: &mut [u32],
    mut len: usize,
    wpairs: &mut Vec<(u32, u64)>,
    tail: u64,
) -> usize {
    let mut j = 0;
    while j < len {
        let i = frontier[j] as usize;
        let here = pos[i] as usize;
        let mut w = cell_info[here];
        let row: [u32; D] = fwd[here * D..here * D + D].try_into().expect("row length is D");
        for nc in row {
            if !BORDERED || nc != NONE {
                w |= cell_info[nc as usize];
            }
        }
        wpairs.push((here as u32, w));
        if w == tail {
            complete[i] = true;
            len -= 1;
            frontier[j] = frontier[len];
            frontier[len] = i as u32;
        } else {
            j += 1;
        }
    }
    len
}

/// Runtime-`n_dirs` fallback of [`gather_frontier`], for neighbourhood
/// sizes without a dedicated instantiation.
#[allow(clippy::too_many_arguments)]
fn gather_frontier_any(
    n_dirs: usize,
    fwd: &[u32],
    cell_info: &[u64],
    pos: &[u32],
    complete: &mut [bool],
    frontier: &mut [u32],
    mut len: usize,
    wpairs: &mut Vec<(u32, u64)>,
    tail: u64,
) -> usize {
    let mut j = 0;
    while j < len {
        let i = frontier[j] as usize;
        let here = pos[i] as usize;
        let mut w = cell_info[here];
        for &nc in &fwd[here * n_dirs..here * n_dirs + n_dirs] {
            if nc != NONE {
                w |= cell_info[nc as usize];
            }
        }
        wpairs.push((here as u32, w));
        if w == tail {
            complete[i] = true;
            len -= 1;
            frontier[j] = frontier[len];
            frontier[len] = i as u32;
        } else {
            j += 1;
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRunner;
    use a2a_fsm::{best_s_agent, best_t_agent};
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg(kind: GridKind) -> WorldConfig {
        WorldConfig::paper(kind, 16)
    }

    fn random_batch(config: &WorldConfig, ks: &[usize], seed: u64) -> Vec<InitialConfig> {
        let mut rng = SmallRng::seed_from_u64(seed);
        ks.iter()
            .map(|&k| {
                InitialConfig::random(config.lattice, config.kind, k, &[], &mut rng).unwrap()
            })
            .collect()
    }

    #[test]
    fn outcomes_match_single_run_kernel_exactly() {
        for (kind, genome) in
            [(GridKind::Square, best_s_agent()), (GridKind::Triangulate, best_t_agent())]
        {
            let config = cfg(kind);
            // Ragged agent counts in one batch, including a k > 64 run
            // (multi-word infosets) and a k = 1 run (solved at t = 0).
            let inits = random_batch(&config, &[16, 1, 70, 4, 16, 33], 7);
            let runner = BatchRunner::from_genome(&config, genome.clone(), 300).unwrap();
            let expected: Vec<RunOutcome> =
                inits.iter().map(|i| runner.outcome_for(i).unwrap()).collect();
            let mut multi = MultiWorld::new(&config, genome).unwrap();
            multi.load(&inits).unwrap();
            assert_eq!(multi.run(300), expected, "{kind}");
        }
    }

    #[test]
    fn lockstep_step_matches_fast_world_per_run() {
        let config = cfg(GridKind::Triangulate);
        let inits = random_batch(&config, &[12, 5, 12], 11);
        let mut fasts: Vec<crate::FastWorld> = inits
            .iter()
            .map(|i| crate::FastWorld::new(&config, best_t_agent(), i).unwrap())
            .collect();
        let mut multi = MultiWorld::new(&config, best_t_agent()).unwrap();
        multi.load(&inits).unwrap();
        for t in 0..40 {
            for (r, fast) in fasts.iter().enumerate() {
                assert_eq!(multi.positions(r), fast.positions(), "run {r} t={t}");
                assert_eq!(multi.states(r), fast.states(), "run {r} t={t}");
                assert_eq!(multi.colors(r), fast.colors(), "run {r} t={t}");
                assert_eq!(multi.informed_count(r), fast.informed_count(), "run {r} t={t}");
                assert_eq!(multi.conflict_losses(r), fast.conflict_losses(), "run {r} t={t}");
                for i in 0..fast.agent_count() {
                    assert_eq!(multi.agent_info(r, i), fast.agent_info(i), "run {r} t={t}");
                }
            }
            multi.step();
            for fast in &mut fasts {
                fast.step();
            }
        }
    }

    #[test]
    fn reload_reuses_buffers_and_matches_fresh() {
        let config = cfg(GridKind::Triangulate);
        let mut multi = MultiWorld::new(&config, best_t_agent()).unwrap();
        multi.load(&random_batch(&config, &[16; 8], 1)).unwrap();
        let _ = multi.run(200);
        for seed in 2..6 {
            let inits = random_batch(&config, &[16; 8], seed);
            multi.load(&inits).unwrap();
            let got = multi.run(200);
            let mut fresh = MultiWorld::new(&config, best_t_agent()).unwrap();
            fresh.load(&inits).unwrap();
            assert_eq!(got, fresh.run(200), "seed {seed}");
        }
        // The zero-allocation guarantee of reuse is asserted in
        // tests/allocation.rs — the process-global counter cannot be
        // compared exactly here, where tests run concurrently.
    }

    #[test]
    fn load_replicates_serial_error_order() {
        let config = cfg(GridKind::Square);
        let good = InitialConfig::new(vec![(Pos::new(1, 1), Dir::new(0))]);
        let dup = InitialConfig::new(vec![
            (Pos::new(2, 2), Dir::new(0)),
            (Pos::new(2, 2), Dir::new(1)),
        ]);
        let outside = InitialConfig::new(vec![(Pos::new(99, 0), Dir::new(0))]);
        let mut multi = MultiWorld::new(&config, best_s_agent()).unwrap();
        // First failing configuration wins, later ones are not reached.
        assert!(matches!(
            multi.load(&[good.clone(), dup.clone(), outside.clone()]),
            Err(SimError::DuplicatePosition(_))
        ));
        assert!(matches!(multi.load(&[outside, dup]), Err(SimError::OutsideField(_))));
        // An empty batch loads fine (and holds zero runs).
        multi.load(&[]).unwrap();
        assert_eq!(multi.run_count(), 0);
        assert!(matches!(
            multi.load(&[InitialConfig::new(Vec::new())]),
            Err(SimError::NoAgents)
        ));
        // A failed load leaves the world reloadable.
        multi.load(&[good]).unwrap();
        assert_eq!(multi.run(50)[0].t_comm, Some(0));
    }

    #[test]
    fn obstacle_placement_rejected_per_run() {
        let mut config = cfg(GridKind::Square);
        config.obstacles = vec![Pos::new(3, 3)];
        let on_obstacle = InitialConfig::new(vec![(Pos::new(3, 3), Dir::new(0))]);
        let good = InitialConfig::new(vec![(Pos::new(1, 1), Dir::new(0))]);
        let mut multi = MultiWorld::new(&config, best_s_agent()).unwrap();
        assert!(matches!(
            multi.load(&[good, on_obstacle]),
            Err(SimError::OnObstacle(_))
        ));
    }

    #[test]
    fn preferred_chunk_is_clamped_and_shrinks_with_footprint() {
        let small = cfg(GridKind::Triangulate);
        let env = Arc::new(
            KernelEnv::new(&small, &Behaviour::Single(best_t_agent())).unwrap(),
        );
        let c16 = preferred_chunk(&env, 16);
        assert!((4..=64).contains(&c16));
        assert!(preferred_chunk(&env, 1000) <= c16);
        assert!(preferred_chunk(&env, 0) >= 4);
    }
}

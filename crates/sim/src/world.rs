//! The synchronous CA world: agents, colours, conflict arbitration and the
//! information exchange (Sect. 3 of the paper).
//!
//! # Step semantics
//!
//! One counted time step is *act → exchange*:
//!
//! 1. **Act.** Every agent perceives *(blocked, color, frontcolor)* on the
//!    pre-step configuration and looks up its FSM row. An agent whose
//!    front cell is occupied (or an obstacle/border) is hard-blocked.
//!    Otherwise, if its unblocked row requests `move = 1`, it becomes a
//!    *requester* of the front cell; among requesters of the same cell the
//!    conflict policy picks one winner (lowest ID in the paper), the
//!    losers re-evaluate with `blocked = 1`. Each agent then writes its
//!    `setcolor` output to the cell it is on, adopts its next control
//!    state, turns, and — if it won an unblocked move — steps into its
//!    front cell.
//! 2. **Exchange.** Every agent ORs the communication vectors of all
//!    agents on its 4 (S) / 6 (T) nearest neighbour cells into its own,
//!    synchronously (reads see the pre-exchange vectors).
//!
//! A free exchange happens at `t = 0` right after placement; the paper
//! does not count it ("the communication after the initial placement is
//! not counted"), which reproduces `t_comm = D − 1` for the fully packed
//! field (Table 1: 15 in S, 9 in T on 16×16).

use crate::agent::Agent;
use crate::behaviour::Behaviour;
use crate::config::{ColorInit, ConflictPolicy, WorldConfig};
use crate::error::SimError;
use crate::infoset::InfoSet;
use crate::init::InitialConfig;
use a2a_fsm::{Entry, Genome, Percept};
use a2a_grid::{GridKind, Lattice, Pos};

/// Sentinel for an unoccupied cell in the occupancy index.
const EMPTY: u16 = u16::MAX;

/// A per-agent action decision within one step.
#[derive(Debug, Clone, Copy)]
struct Decision {
    entry: Entry,
    /// Flat genome index of the row that produced `entry` (Fig. 3's `i`).
    entry_idx: usize,
    /// Target cell index when the agent actually moves.
    target: Option<usize>,
}

/// The complete state of the multi-agent CA system.
///
/// # Examples
///
/// ```
/// use a2a_sim::{InitialConfig, World, WorldConfig};
/// use a2a_fsm::best_t_agent;
/// use a2a_grid::GridKind;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), a2a_sim::SimError> {
/// let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let init = InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng)?;
/// let mut world = World::new(&cfg, best_t_agent(), &init)?;
/// while !world.all_informed() && world.time() < 200 {
///     world.step();
/// }
/// assert!(world.all_informed());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct World {
    kind: GridKind,
    lattice: Lattice,
    behaviour: Behaviour,
    conflict: ConflictPolicy,
    colors: Vec<u8>,
    occupant: Vec<u16>,
    obstacle: Vec<bool>,
    agents: Vec<Agent>,
    visited: Vec<u32>,
    time: u32,
    informed: usize,
    // Scratch buffers reused across steps.
    claims: Vec<u16>,
    requests: Vec<(u16, usize)>,
    decisions: Vec<Decision>,
    info_next: Vec<InfoSet>,
    usage: Option<Vec<u64>>,
}

impl World {
    /// Assembles a world from an environment, a behaviour and an initial
    /// configuration, and performs the uncounted `t = 0` exchange.
    ///
    /// # Errors
    ///
    /// * [`SimError::SpecMismatch`] — the genome was built for the other
    ///   grid kind, or the initial colouring uses colours the FSM cannot
    ///   perceive;
    /// * [`SimError::NoAgents`], [`SimError::TooManyAgents`],
    ///   [`SimError::DuplicatePosition`], [`SimError::OutsideField`],
    ///   [`SimError::OnObstacle`], [`SimError::InvalidDirection`] — invalid
    ///   placements.
    pub fn new(
        config: &WorldConfig,
        genome: Genome,
        init: &InitialConfig,
    ) -> Result<Self, SimError> {
        Self::with_behaviour(config, Behaviour::Single(genome), init)
    }

    /// Like [`World::new`] but accepts a [`Behaviour`] (e.g. a
    /// time-shuffled pair of FSMs, the extension of the authors' earlier
    /// work).
    ///
    /// # Errors
    ///
    /// As [`World::new`]; additionally rejects inconsistent behaviours
    /// (empty shuffle list or mixed specs).
    pub fn with_behaviour(
        config: &WorldConfig,
        behaviour: Behaviour,
        init: &InitialConfig,
    ) -> Result<Self, SimError> {
        if !behaviour.is_consistent() {
            return Err(SimError::SpecMismatch(
                "time-shuffled behaviours need at least one FSM and a common spec".into(),
            ));
        }
        let spec = behaviour.spec();
        if spec.kind() != config.kind {
            return Err(SimError::SpecMismatch(format!(
                "genome drives {} agents but the world is {}",
                spec.kind(),
                config.kind
            )));
        }
        let lattice = config.lattice;
        init.validate(lattice, config.kind)?;

        let mut obstacle = vec![false; lattice.len()];
        for &p in &config.obstacles {
            if !lattice.contains(p) {
                return Err(SimError::OutsideField(p));
            }
            obstacle[lattice.index_of(p)] = true;
        }

        let colors = match &config.colors {
            ColorInit::AllZero => vec![0u8; lattice.len()],
            ColorInit::Pattern(pattern) => {
                if pattern.len() != lattice.len() {
                    return Err(SimError::SpecMismatch(format!(
                        "colour pattern has {} cells, field has {}",
                        pattern.len(),
                        lattice.len()
                    )));
                }
                pattern.clone()
            }
        };
        if let Some(&c) = colors.iter().find(|&&c| c >= spec.n_colors) {
            return Err(SimError::SpecMismatch(format!(
                "initial colour {c} exceeds the FSM's {} colours",
                spec.n_colors
            )));
        }

        let k = init.agent_count();
        if k > usize::from(EMPTY) {
            return Err(SimError::TooManyAgents { requested: k, limit: usize::from(EMPTY) });
        }
        let mut occupant = vec![EMPTY; lattice.len()];
        let mut visited = vec![0u32; lattice.len()];
        let mut agents = Vec::with_capacity(k);
        for (i, &(pos, dir)) in init.placements().iter().enumerate() {
            let idx = lattice.index_of(pos);
            if obstacle[idx] {
                return Err(SimError::OnObstacle(pos));
            }
            occupant[idx] = i as u16;
            visited[idx] = 1;
            agents.push(Agent {
                id: i as u16,
                pos,
                dir,
                state: config.init_states.state_for(i as u16, spec.n_states),
                info: InfoSet::singleton(i, k),
            });
        }

        let info_next = agents.iter().map(|a| a.info.clone()).collect();
        let mut world = Self {
            kind: config.kind,
            lattice,
            behaviour,
            conflict: config.conflict,
            colors,
            occupant,
            obstacle,
            agents,
            visited,
            time: 0,
            informed: 0,
            claims: vec![EMPTY; lattice.len()],
            requests: Vec::with_capacity(k),
            decisions: Vec::with_capacity(k),
            info_next,
            usage: None,
        };
        // The uncounted exchange right after placement.
        world.exchange();
        world.informed = world.count_informed();
        Ok(world)
    }

    /// Advances the system by one counted time step (act, then exchange).
    pub fn step(&mut self) {
        self.act();
        self.exchange();
        self.informed = self.count_informed();
        self.time += 1;
    }

    /// The act phase: perception, arbitration, colour writes and moves.
    fn act(&mut self) {
        self.decisions.clear();
        self.requests.clear();

        let genome = self.behaviour.genome_at(self.time);

        // Round 1: perceive on the pre-step configuration; collect move
        // requests from agents that are not hard-blocked.
        for (i, agent) in self.agents.iter().enumerate() {
            let here = self.lattice.index_of(agent.pos);
            let front = self
                .lattice
                .neighbor(agent.pos, self.kind, agent.dir)
                .map(|p| self.lattice.index_of(p));
            let hard_blocked = match front {
                None => true,
                Some(f) => self.obstacle[f] || self.occupant[f] != EMPTY,
            };
            let percept = Percept::new(
                hard_blocked,
                self.colors[here],
                front.map_or(0, |f| self.colors[f]),
            );
            let entry_idx = spec_entry_index(genome, percept, agent.state);
            let entry = genome.entry(entry_idx);
            if !hard_blocked && entry.action.mv {
                let target = front.expect("unblocked agents have a front cell");
                self.requests.push((i as u16, target));
                // Arbitrate while scanning: keep the preferred claimant.
                let cur = self.claims[target];
                let winner = match (cur, self.conflict) {
                    (EMPTY, _) => i as u16,
                    (c, ConflictPolicy::LowestId) => c.min(i as u16),
                    (c, ConflictPolicy::HighestId) => c.max(i as u16),
                };
                self.claims[target] = winner;
            }
            // Provisional decision; losers are corrected below.
            self.decisions.push(Decision {
                entry,
                entry_idx,
                target: (!hard_blocked && entry.action.mv).then_some(front.unwrap_or(0)),
            });
        }

        // Round 2: losers of a conflict perceive blocked = 1 and re-select
        // their FSM row; they do not move.
        for &(i, target) in &self.requests {
            if self.claims[target] != i {
                let agent = &self.agents[usize::from(i)];
                let here = self.lattice.index_of(agent.pos);
                let percept = Percept::new(true, self.colors[here], self.colors[target]);
                let entry_idx = spec_entry_index(genome, percept, agent.state);
                self.decisions[usize::from(i)] = Decision {
                    entry: genome.entry(entry_idx),
                    entry_idx,
                    target: None,
                };
            }
        }
        // Reset claims for the next step (only touched cells).
        for &(_, target) in &self.requests {
            self.claims[target] = EMPTY;
        }

        // Record which genome rows actually fired (if tracking is on).
        if let Some(usage) = &mut self.usage {
            for d in &self.decisions {
                usage[d.entry_idx] += 1;
            }
        }

        // Apply: colour writes, state/direction updates, moves.
        let turn_set = self.behaviour.spec().turn_set;
        for (i, agent) in self.agents.iter_mut().enumerate() {
            let d = self.decisions[i];
            let here = self.lattice.index_of(agent.pos);
            self.colors[here] = d.entry.action.set_color;
            agent.state = d.entry.next_state;
            agent.dir = agent.dir.turned(self.kind, turn_set.delta(d.entry.action.turn));
            if let Some(target) = d.target {
                // Targets were unoccupied at step start and are claimed by
                // exactly one winner, so sequential application is safe.
                self.occupant[here] = EMPTY;
                self.occupant[target] = i as u16;
                agent.pos = self.lattice.pos_at(target);
                self.visited[target] += 1;
            }
        }
    }

    /// The synchronous information exchange: every agent ORs the pre-phase
    /// vectors of the agents on its nearest-neighbour cells.
    fn exchange(&mut self) {
        for (i, agent) in self.agents.iter().enumerate() {
            self.info_next[i].clone_from(&agent.info);
            for p in self.lattice.neighbors(agent.pos, self.kind) {
                let occ = self.occupant[self.lattice.index_of(p)];
                if occ != EMPTY && occ != i as u16 {
                    self.info_next[i].merge(&self.agents[usize::from(occ)].info);
                }
            }
        }
        for (agent, next) in self.agents.iter_mut().zip(&mut self.info_next) {
            std::mem::swap(&mut agent.info, next);
        }
    }

    fn count_informed(&self) -> usize {
        self.agents.iter().filter(|a| a.info.is_complete()).count()
    }

    /// Steps executed so far (the uncounted placement exchange is not a
    /// step).
    #[must_use]
    pub fn time(&self) -> u32 {
        self.time
    }

    /// Grid family of this world.
    #[must_use]
    pub fn kind(&self) -> GridKind {
        self.kind
    }

    /// The cell field.
    #[must_use]
    pub fn lattice(&self) -> Lattice {
        self.lattice
    }

    /// The FSM driving the *next* step (for `Single` behaviours, the one
    /// and only genome).
    #[must_use]
    pub fn genome(&self) -> &Genome {
        self.behaviour.genome_at(self.time)
    }

    /// The full behaviour (single or time-shuffled).
    #[must_use]
    pub fn behaviour(&self) -> &Behaviour {
        &self.behaviour
    }

    /// All agents in ID order.
    #[must_use]
    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    /// Number of *informed* agents (complete communication vector).
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed
    }

    /// Whether the all-to-all task is solved.
    #[must_use]
    pub fn all_informed(&self) -> bool {
        self.informed == self.agents.len()
    }

    /// Colour of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the field.
    #[must_use]
    pub fn color_at(&self, pos: Pos) -> u8 {
        self.colors[self.lattice.index_of(pos)]
    }

    /// Row-major colour plane (the middle layer of Fig. 6/7).
    #[must_use]
    pub fn colors(&self) -> &[u8] {
        &self.colors
    }

    /// Row-major visit counts, including the initial placement (the
    /// "visited" layer of Fig. 6/7 showing the agents' streets).
    #[must_use]
    pub fn visited(&self) -> &[u32] {
        &self.visited
    }

    /// The agent on `pos`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the field.
    #[must_use]
    pub fn agent_at(&self, pos: Pos) -> Option<&Agent> {
        let occ = self.occupant[self.lattice.index_of(pos)];
        (occ != EMPTY).then(|| &self.agents[usize::from(occ)])
    }

    /// Whether `pos` is an obstacle cell.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the field.
    #[must_use]
    pub fn is_obstacle(&self, pos: Pos) -> bool {
        self.obstacle[self.lattice.index_of(pos)]
    }

    /// Enables per-entry usage tracking: after stepping, [`World::usage`]
    /// reports how often each flat genome index (Fig. 3's `i`) selected
    /// an agent's action. Used by the dead-entry analysis.
    pub fn enable_usage_tracking(&mut self) {
        let len = self.behaviour.spec().entry_count();
        self.usage = Some(vec![0; len]);
    }

    /// Per-entry usage counts, if tracking was enabled.
    #[must_use]
    pub fn usage(&self) -> Option<&[u64]> {
        self.usage.as_deref()
    }

    /// Internal consistency check used by tests and property suites:
    /// occupancy index and agent positions agree, and no two agents share
    /// a cell.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut count = 0usize;
        for (idx, &occ) in self.occupant.iter().enumerate() {
            if occ != EMPTY {
                count += 1;
                let a = &self.agents[usize::from(occ)];
                if self.lattice.index_of(a.pos) != idx || self.obstacle[idx] {
                    return false;
                }
            }
        }
        count == self.agents.len()
            && self
                .agents
                .iter()
                .enumerate()
                .all(|(i, a)| {
                    self.occupant[self.lattice.index_of(a.pos)] == i as u16
                        && a.info.contains(usize::from(a.id))
                        && a.state < self.behaviour.spec().n_states
                })
    }
}

/// Flat genome index of the row a percept/state pair selects.
fn spec_entry_index(genome: &Genome, percept: Percept, state: u8) -> usize {
    let spec = genome.spec();
    spec.entry_index(percept.encode(spec.n_colors), state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitStatePolicy;
    use a2a_fsm::{best_s_agent, best_t_agent, FsmSpec, TableRow};
    use a2a_grid::Dir;

    fn cfg(kind: GridKind) -> WorldConfig {
        WorldConfig::paper(kind, 16)
    }

    /// A behaviour that always moves straight ahead without colouring:
    /// useful for deterministic movement tests.
    fn always_straight(kind: GridKind) -> Genome {
        let spec = FsmSpec::paper(kind);
        let rows: Vec<TableRow> = (0..8)
            .map(|_| TableRow::from_digits("0000", "0000", "1111", "0000"))
            .collect();
        Genome::from_rows(spec, &rows)
    }

    #[test]
    fn single_agent_is_informed_immediately() {
        let init = InitialConfig::new(vec![(Pos::new(4, 4), Dir::new(0))]);
        let w = World::new(&cfg(GridKind::Square), best_s_agent(), &init).unwrap();
        assert!(w.all_informed());
        assert_eq!(w.time(), 0);
    }

    #[test]
    fn adjacent_agents_exchange_at_placement() {
        let init = InitialConfig::new(vec![
            (Pos::new(4, 4), Dir::new(0)),
            (Pos::new(5, 4), Dir::new(0)),
        ]);
        let w = World::new(&cfg(GridKind::Square), best_s_agent(), &init).unwrap();
        assert!(w.all_informed(), "t = 0 exchange is free");
    }

    #[test]
    fn diagonal_agents_meet_in_t_but_not_s() {
        let placements = vec![
            (Pos::new(4, 4), Dir::new(0)),
            (Pos::new(5, 5), Dir::new(0)),
        ];
        let t = World::new(
            &cfg(GridKind::Triangulate),
            best_t_agent(),
            &InitialConfig::new(placements.clone()),
        )
        .unwrap();
        assert!(t.all_informed(), "NW–SE diagonal is a T-link");
        let s = World::new(&cfg(GridKind::Square), best_s_agent(), &InitialConfig::new(placements))
            .unwrap();
        assert!(!s.all_informed(), "no diagonal link in S");
    }

    #[test]
    fn straight_mover_advances_and_wraps() {
        let init = InitialConfig::new(vec![(Pos::new(15, 3), Dir::new(0))]);
        let mut w = World::new(&cfg(GridKind::Square), always_straight(GridKind::Square), &init)
            .unwrap();
        w.step();
        assert_eq!(w.agents()[0].pos(), Pos::new(0, 3), "torus wrap");
        assert!(w.check_invariants());
    }

    #[test]
    fn agent_in_front_hard_blocks() {
        // Two agents in a row, both heading east; the rear one is blocked
        // by the front one's *current* cell even though it vacates.
        // Wait: the front one is unblocked and moves; the rear one stays.
        let init = InitialConfig::new(vec![
            (Pos::new(4, 4), Dir::new(0)),
            (Pos::new(3, 4), Dir::new(0)),
        ]);
        let mut w =
            World::new(&cfg(GridKind::Square), always_straight(GridKind::Square), &init).unwrap();
        w.step();
        assert_eq!(w.agents()[0].pos(), Pos::new(5, 4), "front agent moves");
        assert_eq!(w.agents()[1].pos(), Pos::new(3, 4), "rear agent blocked (no train-following)");
        assert!(w.check_invariants());
    }

    #[test]
    fn head_on_agents_block_each_other() {
        let init = InitialConfig::new(vec![
            (Pos::new(4, 4), Dir::new(0)),
            (Pos::new(5, 4), Dir::new(2)),
        ]);
        let mut w =
            World::new(&cfg(GridKind::Square), always_straight(GridKind::Square), &init).unwrap();
        w.step();
        assert_eq!(w.agents()[0].pos(), Pos::new(4, 4), "no swap");
        assert_eq!(w.agents()[1].pos(), Pos::new(5, 4));
    }

    #[test]
    fn conflict_lowest_id_wins() {
        // Agents north and south of (5,5), both turning towards it.
        let init = InitialConfig::new(vec![
            (Pos::new(5, 4), Dir::new(1)), // south-heading, id 0
            (Pos::new(5, 6), Dir::new(3)), // north-heading, id 1
        ]);
        let mut w =
            World::new(&cfg(GridKind::Square), always_straight(GridKind::Square), &init).unwrap();
        w.step();
        assert_eq!(w.agents()[0].pos(), Pos::new(5, 5), "id 0 wins the cell");
        assert_eq!(w.agents()[1].pos(), Pos::new(5, 6), "id 1 loses and waits");
        assert!(w.check_invariants());
    }

    #[test]
    fn conflict_highest_id_policy() {
        let mut config = cfg(GridKind::Square);
        config.conflict = ConflictPolicy::HighestId;
        let init = InitialConfig::new(vec![
            (Pos::new(5, 4), Dir::new(1)),
            (Pos::new(5, 6), Dir::new(3)),
        ]);
        let mut w = World::new(&config, always_straight(GridKind::Square), &init).unwrap();
        w.step();
        assert_eq!(w.agents()[0].pos(), Pos::new(5, 4));
        assert_eq!(w.agents()[1].pos(), Pos::new(5, 5), "id 1 wins under HighestId");
    }

    #[test]
    fn obstacles_block_and_reject_placement() {
        let mut config = cfg(GridKind::Square);
        config.obstacles = vec![Pos::new(5, 4)];
        let onto = InitialConfig::new(vec![(Pos::new(5, 4), Dir::new(0))]);
        assert!(matches!(
            World::new(&config, best_s_agent(), &onto),
            Err(SimError::OnObstacle(_))
        ));
        let init = InitialConfig::new(vec![(Pos::new(4, 4), Dir::new(0))]);
        let mut w = World::new(&config, always_straight(GridKind::Square), &init).unwrap();
        w.step();
        assert_eq!(w.agents()[0].pos(), Pos::new(4, 4), "obstacle hard-blocks");
    }

    #[test]
    fn border_blocks_departure() {
        let mut config = cfg(GridKind::Square);
        config.lattice = Lattice::bordered(16, 16);
        let init = InitialConfig::new(vec![(Pos::new(15, 3), Dir::new(0))]);
        let mut w = World::new(&config, always_straight(GridKind::Square), &init).unwrap();
        w.step();
        assert_eq!(w.agents()[0].pos(), Pos::new(15, 3));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let init = InitialConfig::new(vec![(Pos::new(0, 0), Dir::new(0))]);
        let err = World::new(&cfg(GridKind::Square), best_t_agent(), &init).unwrap_err();
        assert!(matches!(err, SimError::SpecMismatch(_)));
    }

    #[test]
    fn colors_are_written_by_fsm_output() {
        // best_s_agent, x = 0 (free, colourless), state 0 sets colour 1.
        let init = InitialConfig::new(vec![(Pos::new(4, 4), Dir::new(0))]);
        let mut config = cfg(GridKind::Square);
        config.init_states = InitStatePolicy::Uniform(0);
        let mut w = World::new(&config, best_s_agent(), &init).unwrap();
        w.step();
        assert_eq!(w.color_at(Pos::new(4, 4)), 1, "setcolor=1 on the departed cell");
    }

    #[test]
    fn initial_color_pattern_is_used_and_validated() {
        let mut config = cfg(GridKind::Square);
        config.colors = ColorInit::Pattern(vec![1u8; 256]);
        let init = InitialConfig::new(vec![(Pos::new(0, 0), Dir::new(0))]);
        let w = World::new(&config, best_s_agent(), &init).unwrap();
        assert_eq!(w.color_at(Pos::new(9, 9)), 1);

        config.colors = ColorInit::Pattern(vec![2u8; 256]);
        assert!(matches!(
            World::new(&config, best_s_agent(), &init),
            Err(SimError::SpecMismatch(_))
        ));
        config.colors = ColorInit::Pattern(vec![0u8; 17]);
        assert!(matches!(
            World::new(&config, best_s_agent(), &init),
            Err(SimError::SpecMismatch(_))
        ));
    }

    #[test]
    fn id_parity_initial_states() {
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(8, 8), Dir::new(0)),
            (Pos::new(12, 3), Dir::new(0)),
        ]);
        let w = World::new(&cfg(GridKind::Square), best_s_agent(), &init).unwrap();
        let states: Vec<u8> = w.agents().iter().map(Agent::state).collect();
        assert_eq!(states, vec![0, 1, 0]);
    }

    #[test]
    fn info_only_grows_and_invariants_hold_under_best_agents() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let genome = a2a_fsm::best_agent(kind);
            let init = crate::init::paper_config_set(Lattice::torus(16, 16), kind, 8, 3, 7)
                .unwrap()
                .remove(0);
            let mut w = World::new(&cfg(kind), genome, &init).unwrap();
            let mut counts: Vec<usize> =
                w.agents().iter().map(|a| a.info().count()).collect();
            for _ in 0..100 {
                w.step();
                assert!(w.check_invariants(), "{kind}");
                for (i, a) in w.agents().iter().enumerate() {
                    let c = a.info().count();
                    assert!(c >= counts[i], "information is monotone");
                    counts[i] = c;
                }
            }
        }
    }

    #[test]
    fn fully_packed_cannot_move_and_takes_diameter_steps() {
        // Table 1, k = 256: everything blocked, t_comm = D − 1 counted
        // steps after the free placement exchange (S: 15, T: 9).
        for (kind, expected) in [(GridKind::Square, 15), (GridKind::Triangulate, 9)] {
            let lattice = Lattice::torus(16, 16);
            let placements: Vec<(Pos, Dir)> =
                lattice.positions().map(|p| (p, Dir::new(0))).collect();
            let genome = a2a_fsm::best_agent(kind);
            let mut w =
                World::new(&cfg(kind), genome, &InitialConfig::new(placements)).unwrap();
            let mut t = 0u32;
            while !w.all_informed() {
                w.step();
                t += 1;
                assert!(t < 100, "must converge");
            }
            assert_eq!(t, expected, "{kind}");
            // Nobody can ever move in a fully packed field.
            for (agent, pos) in w.agents().iter().zip(lattice.positions()) {
                assert_eq!(agent.pos(), pos);
            }
        }
    }
}

#[cfg(test)]
mod usage_tests {
    use super::*;
    use a2a_fsm::best_t_agent;
    use a2a_grid::Dir;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn usage_counts_sum_to_agents_times_steps() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let mut rng = SmallRng::seed_from_u64(12);
        let init = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
        let mut w = World::new(&cfg, best_t_agent(), &init).unwrap();
        w.enable_usage_tracking();
        for _ in 0..25 {
            w.step();
        }
        let usage = w.usage().unwrap();
        assert_eq!(usage.len(), 32);
        assert_eq!(usage.iter().sum::<u64>(), 8 * 25, "one row per agent per step");
    }

    #[test]
    fn tracking_off_by_default_and_does_not_change_dynamics() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let init = InitialConfig::new(vec![
            (Pos::new(2, 2), Dir::new(0)),
            (Pos::new(9, 9), Dir::new(1)),
        ]);
        let mut a = World::new(&cfg, a2a_fsm::best_s_agent(), &init).unwrap();
        let mut b = a.clone();
        assert!(a.usage().is_none());
        b.enable_usage_tracking();
        for _ in 0..40 {
            a.step();
            b.step();
        }
        assert_eq!(a.agents(), b.agents());
    }
}

//! ASCII rendering of world snapshots in the style of Fig. 6/7: an agent
//! layer (direction glyph + ID), a colour layer and a visited layer.

use crate::world::World;
use a2a_grid::{dir_glyph, Pos};

/// Renders the agent layer: each cell shows the direction glyph and the
/// agent ID (mod 10) as in the paper's `>0`, `<1`, `^0` markers, or `· `
/// for empty cells and `##` for obstacles.
#[must_use]
pub fn render_agents(world: &World) -> String {
    render_layer(world, |w, p| {
        if w.is_obstacle(p) {
            "##".to_string()
        } else if let Some(a) = w.agent_at(p) {
            format!("{}{}", dir_glyph(w.kind(), a.dir()), a.id() % 10)
        } else {
            " .".to_string()
        }
    })
}

/// Renders the colour layer: `.` for colour 0, the digit otherwise
/// (the middle layer of Fig. 6/7).
#[must_use]
pub fn render_colors(world: &World) -> String {
    render_layer(world, |w, p| {
        let c = w.color_at(p);
        if c == 0 {
            " .".to_string()
        } else {
            format!(" {c}")
        }
    })
}

/// Renders the visited layer: visit counts capped at 9 (the bottom layer
/// of Fig. 6/7 showing the "streets" and "honeycombs").
#[must_use]
pub fn render_visited(world: &World) -> String {
    let lattice = world.lattice();
    render_layer(world, |w, p| {
        let v = w.visited()[lattice.index_of(p)];
        if v == 0 {
            " .".to_string()
        } else {
            format!(" {}", v.min(9))
        }
    })
}

/// A full Fig. 6/7-style snapshot: the three layers with headings.
#[must_use]
pub fn render_snapshot(world: &World) -> String {
    format!(
        "{}GRID FSM t={}\n{}\ncolors\n{}\nvisited\n{}",
        world.kind().label(),
        world.time(),
        render_agents(world),
        render_colors(world),
        render_visited(world),
    )
}

fn render_layer(world: &World, cell: impl Fn(&World, Pos) -> String) -> String {
    let lattice = world.lattice();
    let mut out = String::with_capacity(lattice.len() * 3);
    for y in 0..lattice.height() {
        for x in 0..lattice.width() {
            let s = cell(world, Pos::new(x, y));
            out.push_str(&s);
            out.push(' ');
        }
        // Trim the trailing space of each row.
        out.pop();
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::init::InitialConfig;
    use a2a_fsm::best_s_agent;
    use a2a_grid::{Dir, GridKind};

    fn small_world() -> World {
        let cfg = WorldConfig::paper(GridKind::Square, 4);
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(2, 1), Dir::new(3)),
        ]);
        World::new(&cfg, best_s_agent(), &init).unwrap()
    }

    #[test]
    fn agent_layer_shows_glyph_and_id() {
        let w = small_world();
        let layer = render_agents(&w);
        let rows: Vec<&str> = layer.lines().collect();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].starts_with(">0"), "{}", rows[0]);
        assert!(rows[1].contains("^1"), "{}", rows[1]);
    }

    #[test]
    fn color_layer_starts_blank() {
        let w = small_world();
        assert!(!render_colors(&w).contains('1'));
    }

    #[test]
    fn visited_layer_marks_initial_cells() {
        let w = small_world();
        let v = render_visited(&w);
        assert_eq!(v.matches('1').count(), 2, "{v}");
    }

    #[test]
    fn snapshot_contains_all_layers() {
        let w = small_world();
        let snap = render_snapshot(&w);
        assert!(snap.contains("SGRID"));
        assert!(snap.contains("t=0"));
        assert!(snap.contains("colors"));
        assert!(snap.contains("visited"));
    }

    #[test]
    fn obstacles_render_as_hashes() {
        let mut cfg = WorldConfig::paper(GridKind::Square, 4);
        cfg.obstacles = vec![Pos::new(3, 3)];
        let init = InitialConfig::new(vec![(Pos::new(0, 0), Dir::new(0))]);
        let w = World::new(&cfg, best_s_agent(), &init).unwrap();
        assert!(render_agents(&w).contains("##"));
    }
}

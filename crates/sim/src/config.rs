//! World configuration: environment parameters and the policies the paper
//! either fixes or lists as reliability options (Sect. 3–4).

use a2a_grid::{GridKind, Lattice, Pos};
use serde::{Deserialize, Serialize};

/// Conflict-resolution strategy when several agents request the same front
/// cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ConflictPolicy {
    /// "The agent with the lowest ID has priority" — the paper's choice.
    #[default]
    LowestId,
    /// Highest ID wins (design-choice ablation).
    HighestId,
}

/// How agents' initial control states are assigned.
///
/// The paper could not find reliable uniform agents starting all in state
/// 0 or 3, and settled on "initial state = 0/1 for agents with even/odd
/// ID" (Sect. 4, reliability option 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InitStatePolicy {
    /// Every agent starts in the same control state.
    Uniform(u8),
    /// Agent `i` starts in state `i mod 2` — the paper's reliable setting.
    #[default]
    IdParity,
    /// Agent `i` starts in state `i mod n` (generalised symmetry breaking).
    IdModulo(u8),
}

impl InitStatePolicy {
    /// The initial control state of agent `id` for an FSM with `n_states`
    /// states.
    ///
    /// # Panics
    ///
    /// Panics if the policy references a state `≥ n_states` or
    /// `IdModulo(0)`.
    #[must_use]
    pub fn state_for(self, id: u16, n_states: u8) -> u8 {
        let s = match self {
            InitStatePolicy::Uniform(s) => s,
            InitStatePolicy::IdParity => (id % 2) as u8,
            InitStatePolicy::IdModulo(n) => {
                assert!(n > 0, "IdModulo needs a positive modulus");
                (id % u16::from(n)) as u8
            }
        };
        assert!(s < n_states, "initial state {s} out of range ({n_states} states)");
        s
    }
}

/// Initial colouring of the field.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ColorInit {
    /// All cells start with colour 0 (the paper's setting; Fig. 6/7 show
    /// blank colour layers at `t = 0`).
    #[default]
    AllZero,
    /// A fixed explicit pattern, row-major (reliability option 2:
    /// "random-like pattern of initial colors").
    Pattern(Vec<u8>),
}

/// Full environment description for a simulation world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Grid family: square "S" or triangulate "T".
    pub kind: GridKind,
    /// The cell field (extent and edge rule).
    pub lattice: Lattice,
    /// Obstacle cells (reliability option 5; empty in the paper's runs).
    pub obstacles: Vec<Pos>,
    /// Initial colouring.
    pub colors: ColorInit,
    /// Conflict arbitration.
    pub conflict: ConflictPolicy,
    /// Initial control-state assignment.
    pub init_states: InitStatePolicy,
}

impl WorldConfig {
    /// The paper's evaluation environment: a cyclic `m × m` field with no
    /// obstacles, zero colours, lowest-ID arbitration and `ID mod 2`
    /// initial states.
    ///
    /// ```
    /// use a2a_sim::WorldConfig;
    /// use a2a_grid::GridKind;
    ///
    /// let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
    /// assert_eq!(cfg.lattice.len(), 256);
    /// assert!(cfg.lattice.is_torus());
    /// ```
    #[must_use]
    pub fn paper(kind: GridKind, m: u16) -> Self {
        Self {
            kind,
            lattice: Lattice::torus(m, m),
            obstacles: Vec::new(),
            colors: ColorInit::AllZero,
            conflict: ConflictPolicy::LowestId,
            init_states: InitStatePolicy::IdParity,
        }
    }

    /// Same as [`WorldConfig::paper`] but with a custom lattice (e.g. a
    /// bordered field or a non-square extent).
    #[must_use]
    pub fn with_lattice(kind: GridKind, lattice: Lattice) -> Self {
        Self { lattice, ..Self::paper(kind, 1) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_parity_matches_paper() {
        let p = InitStatePolicy::IdParity;
        assert_eq!(p.state_for(0, 4), 0);
        assert_eq!(p.state_for(1, 4), 1);
        assert_eq!(p.state_for(2, 4), 0);
        assert_eq!(p.state_for(15, 4), 1);
    }

    #[test]
    fn id_modulo_generalises() {
        let p = InitStatePolicy::IdModulo(3);
        assert_eq!((0..6).map(|i| p.state_for(i, 4)).collect::<Vec<_>>(), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn uniform_state_validated() {
        let _ = InitStatePolicy::Uniform(4).state_for(0, 4);
    }

    #[test]
    fn paper_config_defaults() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        assert_eq!(cfg.conflict, ConflictPolicy::LowestId);
        assert_eq!(cfg.init_states, InitStatePolicy::IdParity);
        assert_eq!(cfg.colors, ColorInit::AllZero);
        assert!(cfg.obstacles.is_empty());
    }

    #[test]
    fn with_lattice_keeps_policies() {
        let cfg = WorldConfig::with_lattice(GridKind::Square, Lattice::bordered(33, 33));
        assert!(!cfg.lattice.is_torus());
        assert_eq!(cfg.conflict, ConflictPolicy::LowestId);
    }
}
